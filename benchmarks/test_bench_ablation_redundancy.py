"""Ablation A4 (§8 future work): redundancy-detection threshold sweep."""

from repro.experiments.ablations import run_redundancy_ablation


def test_bench_redundancy_ablation(benchmark, setup):
    result = benchmark(run_redundancy_ablation, setup)
    recalls = [result.by_threshold[t][1] for t in sorted(result.by_threshold)]
    assert recalls == sorted(recalls, reverse=True)
    precision, recall = result.by_threshold[0.5]
    assert precision > 0.75
    assert recall > 0.9
