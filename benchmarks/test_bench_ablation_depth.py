"""Ablation A2: partitioning-depth cap.

Capping the ontology descent below the annotation concept removes
partitions; coverage and completeness grow monotonically with depth."""

from repro.experiments.ablations import run_depth_ablation


def test_bench_depth_ablation(benchmark, setup):
    result = benchmark(run_depth_ablation, setup)
    series = result.completeness_series()
    assert series == sorted(series)
    assert result.by_depth["None"][0] == 1.0
