"""Bench: regenerating Table 1 (completeness histogram)."""

from repro.core.metrics import evaluate_module
from repro.experiments.table1 import run_table1


def test_bench_table1(benchmark, setup):
    result = benchmark(run_table1, setup)
    assert result.as_dict() == {1.0: 234, 0.75: 8, 0.625: 4, 0.6: 4, 0.5: 2}


def test_bench_evaluate_all_modules(benchmark, setup):
    """The evaluation pass feeding Tables 1 and 2: classify every example
    against ground truth and compute all metrics for all 252 modules."""

    def run():
        return [
            evaluate_module(setup.ctx, module, setup.reports[module.module_id].examples)
            for module in setup.catalog
        ]

    evaluations = benchmark(run)
    assert len(evaluations) == 252
