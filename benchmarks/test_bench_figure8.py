"""Bench: regenerating Figure 8 — matching all 72 decayed modules against
the 252 available ones, and repairing the broken repository."""

from repro.core.matching import find_matches
from repro.core.repair import WorkflowRepairer
from repro.experiments.figure8 import run_figure8


def test_bench_matching_all_decayed(benchmark, setup):
    def run():
        return {
            m.module_id: find_matches(
                setup.ctx, m, setup.decayed_examples[m.module_id], setup.catalog
            )
            for m in setup.decayed
        }

    matches = benchmark(run)
    assert len(matches) == 72


def test_bench_repair_campaign(benchmark, setup):
    broken = setup.broken()

    def run():
        repairer = WorkflowRepairer(
            setup.ctx, setup.modules_by_id, setup.matches, setup.pool
        )
        return repairer.repair_all(broken, setup.historical_traces)

    results = benchmark(run)
    assert len(results) == len(broken)


def test_bench_figure8_report(benchmark, setup):
    result = benchmark(run_figure8, setup)
    assert result.n_equivalent == 16
    assert result.n_repaired_total == 334
