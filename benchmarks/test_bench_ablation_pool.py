"""Ablation A3: instance-pool size sensitivity.

Subsampling the pool removes realizations of some partitions; the number
of unrealized input partitions shrinks monotonically as the pool grows."""

from repro.experiments.ablations import run_pool_ablation


def test_bench_pool_ablation(benchmark, setup):
    result = benchmark(run_pool_ablation, setup)
    counts = [result.by_fraction[f] for f in (0.25, 0.5, 1.0)]
    assert counts == sorted(counts, reverse=True)
    assert counts[-1] == 0
