"""Bench: data-example-guided composition (§8 future work)."""

from repro.core.composition import CompositionAdvisor


def test_bench_suggest_successors(benchmark, setup):
    advisor = CompositionAdvisor(setup.ctx, setup.catalog, setup.pool)
    producer = next(
        m for m in setup.catalog if m.module_id == "ret.get_uniprot_record"
    )
    examples = setup.reports[producer.module_id].examples

    suggestions = benchmark(advisor.suggest_successors, producer, examples)
    assert suggestions


def test_bench_consumers_of_value(benchmark, setup):
    advisor = CompositionAdvisor(setup.ctx, setup.catalog, setup.pool)
    value = setup.pool.get_instance("UniProtAccession")

    consumers = benchmark(advisor.consumers_of_value, value)
    assert len(consumers) >= 10
