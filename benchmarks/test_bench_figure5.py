"""Bench: regenerating Figure 5 (the two-phase understanding study)."""

from repro.experiments.figure5 import run_figure5


def test_bench_figure5(benchmark, setup):
    result = benchmark(run_figure5, setup)
    series = result.series()
    assert series[0] == ("user1", 47, 169)
    assert len(series) == 3
