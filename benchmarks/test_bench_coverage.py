"""Bench: regenerating the §4.3 coverage result (233/252, 19 exceptions)."""

from repro.experiments.coverage import run_coverage


def test_bench_coverage(benchmark, setup):
    result = benchmark(run_coverage, setup)
    assert result.n_full_input_coverage == 252
    assert result.n_output_shortfall == 19
