"""Bench: §4 pipeline cost as a function of universe size.

Metrics are invariant (asserted); wall-clock grows with database size
because homology searches and cross-reference scans touch every entity.
"""

import pytest

from repro.experiments.scaling import measure_at_scale


@pytest.mark.parametrize("n_proteins", [30, 120, 480])
def test_bench_pipeline_at_scale(benchmark, n_proteins):
    point = benchmark.pedantic(
        measure_at_scale, args=(n_proteins,), rounds=2, iterations=1
    )
    assert point.completeness_hist[1.0] == 234
