#!/usr/bin/env python
"""Serving-layer benchmark: capacity and deliberate saturation.

``make bench-serve`` runs two phases against in-process servers and
writes the measured numbers to ``BENCH_serve.json``:

* **capacity** — at least 1000 concurrent clients against a generously
  provisioned, memoized server.  Acceptance: **zero 5xx**, zero
  transport errors, every request answered.
* **saturation** — a deliberately tiny admission envelope (2 inflight,
  8 queued) with injected provider latency and memoization off, so the
  offered load far exceeds capacity.  Acceptance: the overflow is shed
  with **429 + Retry-After** (never unbounded queueing, never a 5xx),
  while admitted requests still complete.
* **fleet** — the capacity load again, against a real 2-replica
  ``SO_REUSEPORT`` fleet (``ServeSupervisor`` spawning replica
  processes sharing one port and one state journal).  Acceptance: zero
  5xx, zero transport errors, and a graceful full-fleet drain.

The report carries p50/p95/p99 latency, throughput, and shed rate per
phase, plus the acceptance verdicts, so regressions in the admission
path show up as numbers — not anecdotes.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.modules.catalog import default_catalog
from repro.serve import (
    AnnotationServer,
    AnnotationService,
    FleetConfig,
    LoadProfile,
    ServeConfig,
    ServeSupervisor,
    run_loadgen,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def phase_capacity(module_ids) -> dict:
    """>= 1000 concurrent clients, generous envelope, zero 5xx."""
    service = AnnotationService(memoize=True, watchdog_budget=10.0)
    config = ServeConfig(
        max_inflight=64,
        max_queue=4096,
        queue_timeout=30.0,
        rate=None,  # capacity is about admission, not tenant budgets
    )
    with AnnotationServer(service, config) as server:
        profile = LoadProfile(
            clients=1000,
            requests_per_client=5,
            mix={"generate": 0.5, "match": 0.2, "modules": 0.2, "healthz": 0.1},
            module_ids=module_ids,
            tenants=8,
            timeout=60.0,
        )
        report = run_loadgen(server.host, server.port, profile)
        snapshot = server.http_snapshot()
    result = report.to_dict()
    result["peak_inflight"] = snapshot["peak_inflight"]
    result["peak_queue_depth"] = snapshot["peak_queue_depth"]
    result["accepted"] = (
        report.n_5xx == 0
        and report.transport_errors == 0
        and report.missing_retry_after == 0
    )
    return result


def phase_saturation(module_ids) -> dict:
    """Tiny envelope + slow providers: overflow shed with 429."""
    service = AnnotationService(
        memoize=False, latency_ms=25.0, watchdog_budget=10.0
    )
    config = ServeConfig(
        max_inflight=2,
        max_queue=8,
        queue_timeout=0.05,
        retry_after=0.25,
        rate=None,
    )
    with AnnotationServer(service, config) as server:
        profile = LoadProfile(
            clients=200,
            requests_per_client=5,
            mix={"generate": 1.0},
            module_ids=module_ids,
            timeout=60.0,
        )
        report = run_loadgen(server.host, server.port, profile)
        snapshot = server.http_snapshot()
    result = report.to_dict()
    result["peak_inflight"] = snapshot["peak_inflight"]
    result["peak_queue_depth"] = snapshot["peak_queue_depth"]
    result["server_shed_total"] = snapshot["shed_total"]
    result["accepted"] = (
        report.n_5xx == 0
        and report.shed > 0
        and report.missing_retry_after == 0
        and snapshot["peak_queue_depth"] <= config.max_queue
    )
    return result


def phase_fleet(module_ids) -> dict:
    """The capacity load against a real 2-replica SO_REUSEPORT fleet."""
    db = os.path.join(tempfile.mkdtemp(prefix="bench-serve-"), "fleet.sqlite")
    config = ServeConfig(
        host="127.0.0.1",
        port=0,
        max_inflight=64,
        max_queue=4096,
        queue_timeout=30.0,
        rate=None,
        state_db=db,
    )
    fleet = FleetConfig(replicas=2, heartbeat_interval=0.2)
    supervisor = ServeSupervisor(
        config, fleet, service={"memoize": True, "watchdog_budget": 10.0}
    ).start()
    try:
        deadline = time.time() + 60
        while time.time() < deadline:
            supervisor.poll()
            if supervisor.healthy_replicas() == fleet.replicas:
                break
            time.sleep(0.1)
        else:
            raise RuntimeError("fleet replicas never became healthy")
        profile = LoadProfile(
            clients=1000,
            requests_per_client=5,
            mix={"generate": 0.5, "match": 0.2, "modules": 0.2, "healthz": 0.1},
            module_ids=module_ids,
            tenants=8,
            timeout=60.0,
        )
        report = run_loadgen(supervisor.host, supervisor.port, profile)
        per_replica = {
            str(row["replica"]): row["requests_total"]
            for row in supervisor.store.replicas()
        }
        drained = supervisor.drain()
    finally:
        supervisor.close()
    result = report.to_dict()
    result["replicas"] = fleet.replicas
    result["requests_by_replica"] = per_replica
    result["drained"] = drained
    result["accepted"] = (
        report.n_5xx == 0
        and report.transport_errors == 0
        and report.missing_retry_after == 0
        and drained
    )
    return result


def main() -> int:
    module_ids = tuple(m.module_id for m in default_catalog())[:6]
    print("bench-serve: capacity phase (1000 concurrent clients) ...")
    capacity = phase_capacity(module_ids)
    print(
        f"  {capacity['total_requests']} requests, "
        f"{capacity['throughput_rps']} req/s, "
        f"p95 {capacity['latency_ms']['p95']}ms, "
        f"5xx {capacity['n_5xx']}, accepted={capacity['accepted']}"
    )
    print("bench-serve: saturation phase (2 inflight / 8 queued) ...")
    saturation = phase_saturation(module_ids)
    print(
        f"  {saturation['total_requests']} requests, "
        f"shed {saturation['shed']} ({saturation['shed_rate']:.1%}), "
        f"5xx {saturation['n_5xx']}, accepted={saturation['accepted']}"
    )
    print("bench-serve: fleet phase (2 SO_REUSEPORT replicas) ...")
    fleet = phase_fleet(module_ids)
    print(
        f"  {fleet['total_requests']} requests across "
        f"{fleet['replicas']} replicas "
        f"({fleet['requests_by_replica']}), "
        f"{fleet['throughput_rps']} req/s, "
        f"5xx {fleet['n_5xx']}, drained={fleet['drained']}, "
        f"accepted={fleet['accepted']}"
    )
    payload = {
        "benchmark": "serve",
        "phases": {
            "capacity": capacity,
            "saturation": saturation,
            "fleet": fleet,
        },
        "accepted": (
            capacity["accepted"]
            and saturation["accepted"]
            and fleet["accepted"]
        ),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"bench-serve: wrote {OUTPUT}")
    if not payload["accepted"]:
        print("bench-serve: FAIL — acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
