#!/usr/bin/env python
"""Serving-layer benchmark: capacity and deliberate saturation.

``make bench-serve`` runs two phases against in-process servers and
writes the measured numbers to ``BENCH_serve.json``:

* **capacity** — at least 1000 concurrent clients against a generously
  provisioned, memoized server.  Acceptance: **zero 5xx**, zero
  transport errors, every request answered.
* **saturation** — a deliberately tiny admission envelope (2 inflight,
  8 queued) with injected provider latency and memoization off, so the
  offered load far exceeds capacity.  Acceptance: the overflow is shed
  with **429 + Retry-After** (never unbounded queueing, never a 5xx),
  while admitted requests still complete.

The report carries p50/p95/p99 latency, throughput, and shed rate per
phase, plus the acceptance verdicts, so regressions in the admission
path show up as numbers — not anecdotes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.modules.catalog import default_catalog
from repro.serve import (
    AnnotationServer,
    AnnotationService,
    LoadProfile,
    ServeConfig,
    run_loadgen,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def phase_capacity(module_ids) -> dict:
    """>= 1000 concurrent clients, generous envelope, zero 5xx."""
    service = AnnotationService(memoize=True, watchdog_budget=10.0)
    config = ServeConfig(
        max_inflight=64,
        max_queue=4096,
        queue_timeout=30.0,
        rate=None,  # capacity is about admission, not tenant budgets
    )
    with AnnotationServer(service, config) as server:
        profile = LoadProfile(
            clients=1000,
            requests_per_client=5,
            mix={"generate": 0.5, "match": 0.2, "modules": 0.2, "healthz": 0.1},
            module_ids=module_ids,
            tenants=8,
            timeout=60.0,
        )
        report = run_loadgen(server.host, server.port, profile)
        snapshot = server.http_snapshot()
    result = report.to_dict()
    result["peak_inflight"] = snapshot["peak_inflight"]
    result["peak_queue_depth"] = snapshot["peak_queue_depth"]
    result["accepted"] = (
        report.n_5xx == 0
        and report.transport_errors == 0
        and report.missing_retry_after == 0
    )
    return result


def phase_saturation(module_ids) -> dict:
    """Tiny envelope + slow providers: overflow shed with 429."""
    service = AnnotationService(
        memoize=False, latency_ms=25.0, watchdog_budget=10.0
    )
    config = ServeConfig(
        max_inflight=2,
        max_queue=8,
        queue_timeout=0.05,
        retry_after=0.25,
        rate=None,
    )
    with AnnotationServer(service, config) as server:
        profile = LoadProfile(
            clients=200,
            requests_per_client=5,
            mix={"generate": 1.0},
            module_ids=module_ids,
            timeout=60.0,
        )
        report = run_loadgen(server.host, server.port, profile)
        snapshot = server.http_snapshot()
    result = report.to_dict()
    result["peak_inflight"] = snapshot["peak_inflight"]
    result["peak_queue_depth"] = snapshot["peak_queue_depth"]
    result["server_shed_total"] = snapshot["shed_total"]
    result["accepted"] = (
        report.n_5xx == 0
        and report.shed > 0
        and report.missing_retry_after == 0
        and snapshot["peak_queue_depth"] <= config.max_queue
    )
    return result


def main() -> int:
    module_ids = tuple(m.module_id for m in default_catalog())[:6]
    print("bench-serve: capacity phase (1000 concurrent clients) ...")
    capacity = phase_capacity(module_ids)
    print(
        f"  {capacity['total_requests']} requests, "
        f"{capacity['throughput_rps']} req/s, "
        f"p95 {capacity['latency_ms']['p95']}ms, "
        f"5xx {capacity['n_5xx']}, accepted={capacity['accepted']}"
    )
    print("bench-serve: saturation phase (2 inflight / 8 queued) ...")
    saturation = phase_saturation(module_ids)
    print(
        f"  {saturation['total_requests']} requests, "
        f"shed {saturation['shed']} ({saturation['shed_rate']:.1%}), "
        f"5xx {saturation['n_5xx']}, accepted={saturation['accepted']}"
    )
    payload = {
        "benchmark": "serve",
        "phases": {"capacity": capacity, "saturation": saturation},
        "accepted": capacity["accepted"] and saturation["accepted"],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"bench-serve: wrote {OUTPUT}")
    if not payload["accepted"]:
        print("bench-serve: FAIL — acceptance criteria not met", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
