"""Bench: regenerating Table 3 (module-kind census)."""

from repro.experiments.table3 import PAPER_TABLE3, run_table3


def test_bench_table3(benchmark, setup):
    result = benchmark(run_table3, setup)
    assert result.counts == PAPER_TABLE3
