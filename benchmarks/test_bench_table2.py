"""Bench: regenerating Table 2 (conciseness histogram)."""

from repro.experiments.table2 import run_table2


def test_bench_table2(benchmark, setup):
    result = benchmark(run_table2, setup)
    assert result.as_dict() == {
        1.0: 192, 0.5: 32, 0.45: 7, 0.4: 4, 0.33: 4, 0.2: 8, 0.17: 4, 0.1: 1,
    }
