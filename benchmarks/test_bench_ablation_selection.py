"""Ablation A1: partition-based vs random example selection.

The paper's heuristic selects one realization per ontology partition; the
baseline draws the same number of values uniformly from the pool without
partition structure.  Partitioning dominates on completeness and input
coverage."""

from repro.experiments.ablations import run_selection_ablation


def test_bench_selection_ablation(benchmark, setup):
    result = benchmark(run_selection_ablation, setup)
    assert result.partition_completeness >= result.random_completeness
    assert result.partition_input_coverage == 1.0
    assert result.random_input_coverage < 1.0
