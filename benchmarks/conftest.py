"""Shared fixtures for the benchmark harness.

The expensive fixture (universe, catalog, pool, generation over all 252
modules, repository, matching) is built once per session; each bench then
measures the regeneration of one table/figure from it.
"""

import pytest

from repro.experiments.setup import default_setup

try:  # pytest-benchmark is optional; fall back to a single-shot runner.
    import pytest_benchmark  # noqa: F401

    _HAVE_BENCHMARK_PLUGIN = True
except ImportError:
    _HAVE_BENCHMARK_PLUGIN = False


@pytest.fixture(scope="session")
def setup():
    fixture = default_setup()
    # Force the lazy pieces so figure-8 benches measure steady-state work.
    fixture.matches
    fixture.repairs
    return fixture


if not _HAVE_BENCHMARK_PLUGIN:

    class _SingleShotBenchmark:
        """Minimal stand-in for the pytest-benchmark fixture: runs the
        callable once and returns its result, so `make bench` still
        exercises every benchmark path without the plugin."""

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None, **_options):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _SingleShotBenchmark()
