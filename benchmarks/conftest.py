"""Shared fixtures for the benchmark harness.

The expensive fixture (universe, catalog, pool, generation over all 252
modules, repository, matching) is built once per session; each bench then
measures the regeneration of one table/figure from it.
"""

import pytest

from repro.experiments.setup import default_setup


@pytest.fixture(scope="session")
def setup():
    fixture = default_setup()
    # Force the lazy pieces so figure-8 benches measure steady-state work.
    fixture.matches
    fixture.repairs
    return fixture
