"""Bench: the invocation engine — serial vs. cached vs. parallel.

Two regimes are measured over the default catalog:

* the *simulator* regime (calls cost microseconds): caching must still
  win, because a cache hit skips the whole supply-interface round trip
  (envelope building, JSON/XML serialization, behavior execution);
* the *network-bound* regime the paper's harvesting actually lives in
  (§4: 252 remote modules), modelled with seeded injected latency: here
  the thread-pool scheduler overlaps the waiting and must beat serial.

The speedup assertions are deliberately loose (>1.0 with slack) — they
document that the machinery helps, not a specific ratio on specific
hardware; the recorded factors land in the benchmark output.
"""

from __future__ import annotations

import time

from repro.core.generation import ExampleGenerator
from repro.engine import EngineConfig, FaultPlan, InvocationEngine

#: Injected one-way latency (ms) for the network-bound regime.  Small
#: enough to keep the suite quick, large enough to dwarf simulator cost.
NETWORK_LATENCY_MS = 2.0
PARALLELISM = 8


def _generator(ctx, pool, **config) -> ExampleGenerator:
    return ExampleGenerator(ctx, pool, engine=InvocationEngine(EngineConfig(**config)))


def test_bench_engine_serial(benchmark, setup):
    generator = _generator(setup.ctx, setup.pool)
    reports = benchmark(generator.generate_many, setup.catalog)
    assert len(reports) == 252


def test_bench_engine_cached(benchmark, setup):
    generator = _generator(setup.ctx, setup.pool, cache_size=8192)
    generator.generate_many(setup.catalog)  # warm

    reports = benchmark(generator.generate_many, setup.catalog)
    assert len(reports) == 252
    assert generator.engine.telemetry.counter("cache_hits") > 0


def test_bench_engine_parallel_with_latency(benchmark, setup):
    generator = _generator(
        setup.ctx,
        setup.pool,
        parallelism=PARALLELISM,
        fault_plan=FaultPlan(latency_ms=NETWORK_LATENCY_MS),
    )
    reports = benchmark(generator.generate_many, setup.catalog)
    assert len(reports) == 252


def test_engine_cached_speedup_with_identical_reports(setup):
    """The acceptance measurement: a warm cache beats re-invocation and
    produces byte-identical reports."""
    plain = _generator(setup.ctx, setup.pool)
    start = time.perf_counter()
    baseline_reports = plain.generate_many(setup.catalog)
    baseline = time.perf_counter() - start

    cached = _generator(setup.ctx, setup.pool, cache_size=8192)
    cached.generate_many(setup.catalog)  # warm
    start = time.perf_counter()
    cached_reports = cached.generate_many(setup.catalog)
    warm = time.perf_counter() - start

    assert cached_reports == baseline_reports
    hits = cached.engine.telemetry.counter("cache_hits")
    negative = cached.engine.telemetry.counter("cache_negative_hits")
    calls = sum(
        r.n_examples + r.invalid_combinations for r in baseline_reports.values()
    )
    assert hits + negative == calls  # the warm pass never touched the wire
    speedup = baseline / warm if warm else float("inf")
    print(
        f"\ncached generation speedup: {speedup:.1f}x "
        f"({baseline * 1000:.1f}ms cold vs {warm * 1000:.1f}ms warm, "
        f"{hits + negative}/{calls} served from cache)"
    )
    assert speedup > 1.2


def test_bench_engine_traced(benchmark, setup):
    generator = _generator(setup.ctx, setup.pool, tracing=True)
    reports = benchmark(generator.generate_many, setup.catalog)
    assert len(reports) == 252
    assert generator.engine.tracer.snapshot()["traces_kept"] > 0


def test_engine_tracing_zero_cost_when_disabled(setup):
    """Untraced engines build the exact pre-observability stack: no
    tracer, and no tracing wrapper anywhere in the invoker chain."""
    from repro.obs.tracing import TracingInvoker

    generator = _generator(setup.ctx, setup.pool)
    engine = generator.engine
    assert engine.tracer is None
    layer = engine.invoker
    while layer is not None:
        assert not isinstance(layer, TracingInvoker)
        layer = getattr(layer, "inner", None)


def test_engine_tracing_overhead_bounded(setup):
    """The acceptance measurement: tracing costs <5% wall-clock on the
    generation workload, and traced reports are byte-identical.

    The workload runs in ~100us per invocation, so the ~5% signal is
    far below this machine's noise floor (frequency scaling, co-tenant
    load: individual rounds swing by +-30%).  The estimator is built
    for that reality: rounds are paired back to back so drift hits both
    sides, the order within a pair alternates so whichever thermal or
    turbo state the first run leaves behind penalizes each variant
    equally, one estimate is the median paired *delta* over ten pairs
    (the median discards GC pauses and scheduler spikes), and the best
    of up to five independent estimates is asserted, sampling stopping
    early once one lands clearly under the bound — a noisy co-tenant
    burst lasts seconds and is waited out, while a genuinely >=5%
    overhead fails every sample.
    """
    sample = setup.catalog
    untraced = _generator(setup.ctx, setup.pool)
    traced = _generator(setup.ctx, setup.pool, tracing=True)

    untraced_reports = untraced.generate_many(sample)  # warm both paths
    traced_reports = traced.generate_many(sample)
    assert traced_reports == untraced_reports

    def timed(generator) -> float:
        start = time.perf_counter()
        generator.generate_many(sample)
        return time.perf_counter() - start

    def estimate() -> float:
        deltas, bases = [], []
        for pair in range(10):
            if pair % 2:
                cost, base = timed(traced), timed(untraced)
            else:
                base, cost = timed(untraced), timed(traced)
            deltas.append(cost - base)
            bases.append(base)
        deltas.sort()
        bases.sort()
        return deltas[len(deltas) // 2] / bases[len(bases) // 2]

    estimates: "list[float]" = []
    for _attempt in range(5):
        estimates.append(estimate())
        if min(estimates) < 0.04:
            break
        time.sleep(1.0)  # let a noisy-machine burst pass before resampling
    overhead = min(estimates)
    print(
        f"\ntracing overhead: {overhead:+.1%} "
        f"(best of {len(estimates)} ten-pair median estimates: "
        f"{', '.join(f'{e:+.1%}' for e in estimates)})"
    )
    assert overhead < 0.05


def test_engine_sampling_overhead_bounded(setup):
    """The longitudinal acceptance measurement: interval-gated sampling
    (a full engine snapshot — counters, histogram, health rollup, SLO
    evaluation — at a 20 Hz cadence, far denser than any real
    campaign's ``sample_interval``) costs <5% wall-clock, and sampled
    reports are byte-identical to unsampled ones.

    The gate is the one :class:`repro.campaign.runner.CampaignRunner`
    ships — a clock check per module, a snapshot only when the interval
    has elapsed — so the number measured here is the number campaigns
    pay.  Same estimator as :func:`test_engine_tracing_overhead_bounded`:
    alternating back-to-back pairs, median paired delta over median
    base, best of up to five independent estimates.
    """
    from repro.obs.slo import SLOEvaluator
    from repro.obs.timeseries import CampaignSampler

    sample = setup.catalog
    interval = 0.05
    plain = _generator(setup.ctx, setup.pool)
    sampled = _generator(setup.ctx, setup.pool)
    sampler = CampaignSampler(sampled.engine, evaluator=SLOEvaluator())
    n_planned = len(sample)

    def run_plain():
        return {m.module_id: plain.generate(m) for m in sample}

    def run_sampled():
        reports = {}
        last = time.perf_counter()
        for index, module in enumerate(sample):
            reports[module.module_id] = sampled.generate(module)
            now = time.perf_counter()
            if now - last >= interval:
                last = now
                sampler.sample(
                    {"n_planned": n_planned, "n_done": index + 1, "n_skipped": 0}
                )
        return reports

    assert run_sampled() == run_plain()  # warm both paths, same content
    assert len(sampler.ring) > 0

    def timed(run) -> float:
        start = time.perf_counter()
        run()
        return time.perf_counter() - start

    def estimate() -> float:
        deltas, bases = [], []
        for pair in range(10):
            if pair % 2:
                cost, base = timed(run_sampled), timed(run_plain)
            else:
                base, cost = timed(run_plain), timed(run_sampled)
            deltas.append(cost - base)
            bases.append(base)
        deltas.sort()
        bases.sort()
        return deltas[len(deltas) // 2] / bases[len(bases) // 2]

    estimates: "list[float]" = []
    for _attempt in range(5):
        estimates.append(estimate())
        if min(estimates) < 0.04:
            break
        time.sleep(1.0)  # let a noisy-machine burst pass before resampling
    overhead = min(estimates)
    print(
        f"\nsampling overhead: {overhead:+.1%} "
        f"(best of {len(estimates)} ten-pair median estimates: "
        f"{', '.join(f'{e:+.1%}' for e in estimates)})"
    )
    assert overhead < 0.05


def test_engine_profiler_overhead_bounded(setup):
    """The continuous-profiling acceptance measurement: a 50 Hz
    sampling profiler running over the generation workload costs <5%
    wall-clock, and the profiled reports are byte-identical.

    50 Hz is the rate ``REPRO_PROFILE_HZ=50`` arms fleet-wide, so the
    number measured here is the number replicas and shard workers pay.
    Same estimator as :func:`test_engine_tracing_overhead_bounded`:
    alternating back-to-back pairs, median paired delta over median
    base, best of up to five independent estimates.
    """
    from repro.obs.profiler import SamplingProfiler

    sample = setup.catalog
    generator = _generator(setup.ctx, setup.pool)
    baseline_reports = generator.generate_many(sample)  # warm

    def run_plain():
        return generator.generate_many(sample)

    def run_profiled():
        with SamplingProfiler(hz=50):
            return generator.generate_many(sample)

    assert run_profiled() == baseline_reports

    def timed(run) -> float:
        start = time.perf_counter()
        run()
        return time.perf_counter() - start

    def estimate() -> float:
        deltas, bases = [], []
        for pair in range(10):
            if pair % 2:
                cost, base = timed(run_profiled), timed(run_plain)
            else:
                base, cost = timed(run_plain), timed(run_profiled)
            deltas.append(cost - base)
            bases.append(base)
        deltas.sort()
        bases.sort()
        return deltas[len(deltas) // 2] / bases[len(bases) // 2]

    estimates: "list[float]" = []
    for _attempt in range(5):
        estimates.append(estimate())
        if min(estimates) < 0.04:
            break
        time.sleep(1.0)  # let a noisy-machine burst pass before resampling
    overhead = min(estimates)
    print(
        f"\nprofiler overhead at 50 Hz: {overhead:+.1%} "
        f"(best of {len(estimates)} ten-pair median estimates: "
        f"{', '.join(f'{e:+.1%}' for e in estimates)})"
    )
    assert overhead < 0.05


def test_engine_parallel_speedup_under_latency(setup):
    """In the network-bound regime the scheduler overlaps the waiting:
    identical reports, materially less wall-clock."""
    plan = FaultPlan(latency_ms=NETWORK_LATENCY_MS, latency_jitter=0.0)
    sample = setup.catalog[:96]

    serial = _generator(setup.ctx, setup.pool, fault_plan=plan)
    start = time.perf_counter()
    serial_reports = serial.generate_many(sample)
    serial_s = time.perf_counter() - start

    parallel = _generator(
        setup.ctx, setup.pool, parallelism=PARALLELISM, fault_plan=plan
    )
    start = time.perf_counter()
    parallel_reports = parallel.generate_many(sample)
    parallel_s = time.perf_counter() - start

    assert parallel_reports == serial_reports
    speedup = serial_s / parallel_s if parallel_s else float("inf")
    print(
        f"\nparallel (x{PARALLELISM}) speedup under {NETWORK_LATENCY_MS}ms "
        f"injected latency: {speedup:.1f}x "
        f"({serial_s * 1000:.0f}ms vs {parallel_s * 1000:.0f}ms)"
    )
    assert speedup > 1.5
