"""Bench: the core §3.2 heuristic over the full 252-module catalog.

This is the headline cost of the paper's pipeline — partitioning every
input domain, pulling pool realizations and invoking every combination
through the simulated supply interfaces.
"""

from repro.core.generation import ExampleGenerator


def test_bench_generate_all_modules(benchmark, setup):
    generator = ExampleGenerator(setup.ctx, setup.pool)

    def run():
        return generator.generate_many(setup.catalog)

    reports = benchmark(run)
    assert len(reports) == 252
    assert all(report.n_examples > 0 for report in reports.values())


def test_bench_generate_single_wide_module(benchmark, setup):
    """The widest module: `link` (20 partitions, 20 invocations)."""
    module = next(m for m in setup.catalog if m.module_id == "map.link")
    generator = ExampleGenerator(setup.ctx, setup.pool)

    report = benchmark(generator.generate, module)
    assert report.n_examples == 20
