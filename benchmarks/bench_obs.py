#!/usr/bin/env python
"""Observability-plane benchmark: what watching the fleet costs.

``make bench-obs`` measures the two prices the observability plane
charges and writes them to ``BENCH_obs.json``:

* **tracing / profiling overhead** — the whole-catalog generation
  workload three ways: untraced (the pre-observability stack), traced
  (span tree per invocation), and traced with a 50 Hz sampling profiler
  attached (the fleet-wide ``REPRO_PROFILE_HZ=50`` configuration).
  Overheads are estimated with alternating back-to-back pairs and the
  median paired delta over the median base, the same noise-robust
  estimator the benchmark tests use — single rounds on shared hardware
  swing far more than the ~5% signal.
* **fleet span assembly** — journaling one logical trace spread over a
  4-replica serve-state file plus two shard journals, then assembling
  and rendering the cross-process trace from the files alone, timed.

Acceptance: both overheads under 5%, traced reports byte-identical to
untraced ones, and the fleet trace assembled in under a second.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.campaign import build_world
from repro.core.generation import ExampleGenerator
from repro.engine import EngineConfig, InvocationEngine
from repro.obs.aggregate import (
    collect_fleet_spans,
    render_fleet_trace,
    spans_for_trace,
)
from repro.obs.profiler import SamplingProfiler
from repro.obs.propagation import TraceIdGenerator
from repro.obs.tracing import Tracer

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

PROFILE_HZ = 50.0
REPLICAS = 4
SPANS_PER_REPLICA = 250
PAIRS = 5
ESTIMATES = 3
OVERHEAD_BOUND = 0.05
ASSEMBLY_BOUND_S = 1.0


def _generator(ctx, pool, **config) -> ExampleGenerator:
    return ExampleGenerator(
        ctx, pool, engine=InvocationEngine(EngineConfig(**config))
    )


def _timed(run) -> float:
    started = time.perf_counter()
    run()
    return time.perf_counter() - started


def _overhead(base_run, cost_run) -> float:
    """Median paired delta over median base, best of a few estimates."""
    best = float("inf")
    for attempt in range(ESTIMATES):
        deltas, bases = [], []
        for pair in range(PAIRS):
            if pair % 2:
                cost, base = _timed(cost_run), _timed(base_run)
            else:
                base, cost = _timed(base_run), _timed(cost_run)
            deltas.append(cost - base)
            bases.append(base)
        deltas.sort()
        bases.sort()
        best = min(best, deltas[len(deltas) // 2] / bases[len(bases) // 2])
        if best < OVERHEAD_BOUND * 0.8:
            break
        time.sleep(0.5)
    return best


def measure_overheads() -> dict:
    ctx, catalog, pool = build_world(2014)
    untraced = _generator(ctx, pool)
    traced = _generator(ctx, pool, tracing=True)

    baseline = untraced.generate_many(catalog)  # warm both paths
    identical = traced.generate_many(catalog) == baseline

    def run_untraced():
        untraced.generate_many(catalog)

    def run_traced():
        traced.generate_many(catalog)

    def run_traced_profiled():
        with SamplingProfiler(hz=PROFILE_HZ):
            traced.generate_many(catalog)

    base_s = _timed(run_untraced)
    traced_s = _timed(run_traced)
    profiled_s = _timed(run_traced_profiled)
    print(
        f"  untraced {base_s * 1000:.0f}ms, traced {traced_s * 1000:.0f}ms, "
        f"traced+profiler {profiled_s * 1000:.0f}ms", file=sys.stderr,
    )
    tracing = _overhead(run_untraced, run_traced)
    profiling = _overhead(run_traced, run_traced_profiled)
    return {
        "byte_identical": identical,
        "untraced_wall_s": round(base_s, 4),
        "traced_wall_s": round(traced_s, 4),
        "traced_profiled_wall_s": round(profiled_s, 4),
        "tracing_overhead": round(tracing, 4),
        "profiler_overhead": round(profiling, 4),
        "profile_hz": PROFILE_HZ,
    }


def measure_assembly(tmp: Path) -> dict:
    """Journal one trace across four replicas, then time assembly."""
    from repro.serve.state import ServeStateStore

    generator = TraceIdGenerator()
    trace_id = generator.trace_id()
    store = ServeStateStore(tmp / "fleet.db")
    try:
        for replica in range(REPLICAS):
            for index in range(SPANS_PER_REPLICA):
                tracer = Tracer()
                token = tracer.open_root(
                    {
                        "trace_id": trace_id,
                        "process_role": "replica",
                        "process_id": replica,
                        "request": index,
                    }
                )
                tracer.close_root(f"module.{index % 16}", token, "ok")
                store.record_span(replica, tracer.traces()[-1].to_dict())
        n_spans = store.span_count()
    finally:
        store.close()

    started = time.perf_counter()
    spans = collect_fleet_spans(state_db=str(tmp / "fleet.db"))
    mine = spans_for_trace(trace_id, spans)
    rendered = render_fleet_trace(trace_id, mine, slowest=10)
    elapsed = time.perf_counter() - started
    assert rendered
    hops = {
        (s.attributes.get("process_role"), s.attributes.get("process_id"))
        for s in mine
    }
    return {
        "replicas": REPLICAS,
        "spans": n_spans,
        "process_hops": len(hops),
        "assembly_wall_s": round(elapsed, 4),
    }


def main() -> int:
    print("observability overheads (whole-catalog generation) ...",
          file=sys.stderr)
    overheads = measure_overheads()
    print(
        f"  tracing {overheads['tracing_overhead']:+.1%}, "
        f"profiler {overheads['profiler_overhead']:+.1%}", file=sys.stderr,
    )
    print(f"fleet span assembly ({REPLICAS} replicas) ...", file=sys.stderr)
    with TemporaryDirectory() as tmpdir:
        assembly = measure_assembly(Path(tmpdir))
    print(
        f"  {assembly['spans']} spans, {assembly['process_hops']} hops, "
        f"{assembly['assembly_wall_s']}s", file=sys.stderr,
    )

    accepted = (
        overheads["byte_identical"]
        and overheads["tracing_overhead"] < OVERHEAD_BOUND
        and overheads["profiler_overhead"] < OVERHEAD_BOUND
        and assembly["assembly_wall_s"] < ASSEMBLY_BOUND_S
        and assembly["process_hops"] == REPLICAS
    )
    payload = {
        "benchmark": "fleet-observability",
        "accepted": bool(accepted),
        "overhead_bound": OVERHEAD_BOUND,
        "assembly_bound_s": ASSEMBLY_BOUND_S,
        "generation": overheads,
        "assembly": assembly,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\naccepted: {accepted} -> {OUTPUT.name}", file=sys.stderr)
    return 0 if payload["accepted"] else 1


if __name__ == "__main__":
    sys.exit(main())
