#!/usr/bin/env python
"""Repository-scale matching benchmark: exact-vs-pruned accounting.

``make bench-match`` measures the signature index two ways and writes
``BENCH_match.json``:

* **paper** — the 252-module catalog with its 72 decayed modules: both
  the exhaustive §6 baseline and the index-pruned matcher are actually
  run, their invocation counts recorded, and their classification
  digests asserted **byte-identical** (the exactness guarantee of
  ``docs/MATCHING.md`` — pruning may only save work, never change an
  answer).
* **synthetic** — a generated catalog (``BENCH_MATCH_SYNTH`` modules,
  default 5000): index build and candidate-query wall-clock, then a
  full all-pairs pruned matching run.  The exhaustive baseline at this
  scale would take tens of millions of invocations, so its invocation
  count is computed analytically instead: modules are grouped by
  parameter-concept signature, :func:`map_parameters` is evaluated once
  per group pair, and every mapped query×candidate pair is charged the
  query's example count — exactly what
  :func:`repro.match.matcher.exhaustive_match_all` would spend.

Acceptance: identical paper digests, and the synthetic all-pairs run
must spend at least ``MIN_SPEEDUP``× (10×) fewer engine invocations
than the exhaustive estimate.
"""

from __future__ import annotations

import json
import os
import sys
import time
from collections import defaultdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.matching import map_parameters
from repro.experiments.setup import default_setup
from repro.match import (
    CandidateMatcher,
    SignatureIndex,
    build_synthetic_catalog,
    classification_digest,
    exhaustive_match_all,
)
from repro.match.synth import SyntheticCatalogConfig

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_match.json"

SYNTH_N = int(os.environ.get("BENCH_MATCH_SYNTH", "5000"))
MIN_SPEEDUP = 10.0


def bench_paper() -> dict:
    """Exact vs pruned over the real catalog — digests must agree."""
    print("paper catalog (252 modules, 72 decayed) ...", file=sys.stderr)
    setup = default_setup()
    setup.repository  # fire the §6 decay event

    started = time.perf_counter()
    index = SignatureIndex()
    for module in setup.catalog:
        index.add_module(module, setup.reports[module.module_id].examples)
    build_s = time.perf_counter() - started

    matcher = CandidateMatcher(
        setup.ctx, setup.modules_by_id, setup.decayed_examples, index
    )
    started = time.perf_counter()
    pruned = matcher.match_all([m.module_id for m in setup.decayed])
    pruned_s = time.perf_counter() - started

    started = time.perf_counter()
    exhaustive = exhaustive_match_all(
        setup.ctx, setup.decayed, setup.decayed_examples, setup.catalog
    )
    exhaustive_s = time.perf_counter() - started

    pruned_digest = classification_digest(pruned.matches)
    exhaustive_digest = classification_digest(exhaustive.matches)
    if pruned_digest != exhaustive_digest:
        raise AssertionError(
            "pruned matching changed a classification on the paper catalog: "
            f"{pruned_digest} != {exhaustive_digest}"
        )
    print(
        f"  identical digests; invocations "
        f"{exhaustive.accounting.invocations} exhaustive -> "
        f"{pruned.accounting.invocations} pruned",
        file=sys.stderr,
    )
    return {
        "n_catalog": len(setup.catalog),
        "n_decayed": len(setup.decayed),
        "index_build_s": round(build_s, 3),
        "classification_digest": pruned_digest,
        "digests_identical": True,
        "pruned": dict(pruned.accounting.as_dict(), wall_s=round(pruned_s, 3)),
        "exhaustive": dict(
            exhaustive.accounting.as_dict(), wall_s=round(exhaustive_s, 3)
        ),
        "invocation_reduction": round(
            exhaustive.accounting.invocations
            / max(1, pruned.accounting.invocations),
            2,
        ),
    }


def estimate_exhaustive_invocations(world) -> int:
    """What :func:`exhaustive_match_all` would spend over ``world``,
    without running it: group modules by parameter-concept signature,
    decide mapping viability once per group pair, and charge every
    mapped ordered pair the query's example count."""
    groups: "dict[tuple, list[str]]" = defaultdict(list)
    representative = {}
    for module in world.modules:
        key = (
            tuple((p.structural, p.concept) for p in module.inputs),
            tuple((p.structural, p.concept) for p in module.outputs),
        )
        groups[key].append(module.module_id)
        representative.setdefault(key, module)

    examples = world.config.examples_per_module
    total = 0
    for query_key, query_ids in groups.items():
        for candidate_key, candidate_ids in groups.items():
            mapping = map_parameters(
                world.ctx.ontology,
                representative[query_key],
                representative[candidate_key],
            )
            if mapping is None:
                continue
            pairs = len(query_ids) * len(candidate_ids)
            if query_key == candidate_key:
                pairs -= len(query_ids)  # no self-pairs
            total += pairs * examples
    return total


def bench_synthetic(n_modules: int) -> dict:
    print(f"synthetic catalog ({n_modules} modules) ...", file=sys.stderr)
    started = time.perf_counter()
    world = build_synthetic_catalog(
        SyntheticCatalogConfig(n_modules=n_modules)
    )
    generate_s = time.perf_counter() - started

    started = time.perf_counter()
    index = SignatureIndex()
    for module in world.modules:
        index.add_module(module, world.examples_by_id[module.module_id])
    build_s = time.perf_counter() - started

    started = time.perf_counter()
    for module_id in index.module_ids():
        index.candidates(module_id)
    query_s = time.perf_counter() - started

    matcher = CandidateMatcher(
        world.ctx, world.modules_by_id, world.examples_by_id, index
    )
    started = time.perf_counter()
    run = matcher.match_all()
    match_s = time.perf_counter() - started

    estimated = estimate_exhaustive_invocations(world)
    reduction = estimated / max(1, run.accounting.invocations)
    print(
        f"  index build {build_s:.2f}s, all-pairs match {match_s:.2f}s, "
        f"invocations {run.accounting.invocations} vs ~{estimated} "
        f"exhaustive ({reduction:.0f}x)",
        file=sys.stderr,
    )
    n_matched = sum(
        1 for reports in run.matches.values() for _ in reports
    )
    return {
        "n_modules": n_modules,
        "generate_s": round(generate_s, 3),
        "index_build_s": round(build_s, 3),
        "query_all_s": round(query_s, 3),
        "query_mean_ms": round(1000 * query_s / max(1, len(index)), 4),
        "match_all_s": round(match_s, 3),
        "n_match_reports": n_matched,
        "accounting": run.accounting.as_dict(),
        "exhaustive_invocations_estimate": estimated,
        "invocation_reduction": round(reduction, 2),
        "index_stats": index.stats().as_dict(),
    }


def main() -> int:
    paper = bench_paper()
    synthetic = bench_synthetic(SYNTH_N)
    accepted = (
        paper["digests_identical"]
        and synthetic["invocation_reduction"] >= MIN_SPEEDUP
    )
    payload = {
        "benchmark": "match-index",
        "accepted": bool(accepted),
        "min_invocation_reduction": MIN_SPEEDUP,
        "paper": paper,
        "synthetic": synthetic,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"\n{'ACCEPTED' if accepted else 'REJECTED'}: wrote {OUTPUT.name}",
        file=sys.stderr,
    )
    return 0 if accepted else 1


if __name__ == "__main__":
    raise SystemExit(main())
