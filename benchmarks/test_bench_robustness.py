"""Bench: full-world rebuild under a fresh seed (seed robustness)."""

from repro.experiments.robustness import run_for_seed, run_robustness


def test_bench_shape_check(benchmark, setup):
    result = benchmark(run_robustness, setup)
    assert result.same_shape_as_paper()


def test_bench_fresh_seed_world(benchmark):
    """Measures the end-to-end cost of the whole reproduction: universe,
    catalog, pool, generation, evaluation, decay, matching — from scratch."""
    result = benchmark.pedantic(run_for_seed, args=(313,), rounds=1, iterations=1)
    assert result.same_shape_as_paper()
