#!/usr/bin/env python
"""Sharded-campaign benchmark: serial vs multi-process wall-clock.

``make bench-campaign`` runs the same whole-catalog generation campaign
twice — once through the serial :class:`CampaignRunner`, once sharded
across worker processes under the :class:`CampaignSupervisor` — with
identical injected provider latency, and writes the measured numbers to
``BENCH_campaign.json``:

* **serial** — one process, one journal, wall-clock and invocation
  count.
* **sharded** — ``WORKERS`` spawned workers, per-shard wall-clock
  breakdown (modules, invocations, heartbeats) reconstructed from the
  journals.

Acceptance: the sharded report must be **byte-identical** to the serial
one (same ``CampaignResult.digest()``, same rendered report) — the
speedup is only admissible if the answer is exactly the same.

The injected latency models remote providers; without it the catalog
completes in well under a second and process spawn overhead would
drown the signal.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.campaign import (
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    CampaignSupervisor,
    build_world,
    render_campaign_report,
    worker_rows,
)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

WORKERS = 4
LATENCY_MS = 15.0


def run_serial(tmp, config) -> dict:
    ctx, catalog, pool = build_world(config.seed)
    journal = CampaignJournal(tmp / "serial.sqlite")
    started = time.perf_counter()
    try:
        runner = CampaignRunner(ctx, catalog, pool, journal, config)
        result = runner.run("bench")
    finally:
        journal.close()
    elapsed = time.perf_counter() - started
    return {
        "wall_s": round(elapsed, 3),
        "modules_done": len(result.reports),
        "modules_skipped": len(result.skipped),
        "result": result,
        "rendered": render_campaign_report(result),
    }


def run_sharded(tmp, config) -> dict:
    _ctx, catalog, _pool = build_world(config.seed)
    db = tmp / "sharded.sqlite"
    supervisor = CampaignSupervisor(
        db, [m.module_id for m in catalog], config
    )
    started = time.perf_counter()
    result = supervisor.run("bench")
    elapsed = time.perf_counter() - started
    shards = []
    for row in worker_rows(db, "bench"):
        shards.append(
            {
                "shard": row["shard"],
                "modules_done": row["n_done"],
                "modules_planned": row["n_planned"],
                "invocations": row["invocations"],
                "restarts": row["restarts"],
                "phase": row["phase"],
            }
        )
    return {
        "wall_s": round(elapsed, 3),
        "workers": config.workers,
        "modules_done": len(result.reports),
        "modules_skipped": len(result.skipped),
        "shards": shards,
        "result": result,
        "rendered": render_campaign_report(result),
    }


def main() -> int:
    base = dict(latency_ms=LATENCY_MS, heartbeat_interval=0.5)
    with TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        print(f"serial campaign (latency {LATENCY_MS:g}ms/call) ...",
              file=sys.stderr)
        serial = run_serial(tmp, CampaignConfig(**base))
        print(f"  {serial['wall_s']}s, {serial['modules_done']} modules",
              file=sys.stderr)
        print(f"sharded campaign ({WORKERS} workers) ...", file=sys.stderr)
        sharded = run_sharded(tmp, CampaignConfig(**base, workers=WORKERS))
        print(f"  {sharded['wall_s']}s, {sharded['modules_done']} modules",
              file=sys.stderr)

    byte_identical = (
        serial["result"].digest() == sharded["result"].digest()
        and serial["rendered"] == sharded["rendered"]
    )
    speedup = serial["wall_s"] / sharded["wall_s"] if sharded["wall_s"] else 0.0
    payload = {
        "benchmark": "campaign-sharding",
        "accepted": bool(byte_identical and speedup > 1.0),
        "byte_identical": byte_identical,
        "digest": serial["result"].digest(),
        "latency_ms_per_call": LATENCY_MS,
        "speedup": round(speedup, 2),
        "serial": {
            key: serial[key]
            for key in ("wall_s", "modules_done", "modules_skipped")
        },
        "sharded": {
            key: sharded[key]
            for key in (
                "wall_s", "workers", "modules_done", "modules_skipped",
                "shards",
            )
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(
        f"\nspeedup {speedup:.2f}x, byte-identical: {byte_identical} "
        f"-> {OUTPUT.name}",
        file=sys.stderr,
    )
    return 0 if payload["accepted"] else 1


if __name__ == "__main__":
    sys.exit(main())
