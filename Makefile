# Convenience targets for the reproduction.
#
# `make install` prefers the standard editable install and falls back to
# the legacy path on offline environments that lack the `wheel` package.

PYTHON ?= python

.PHONY: install test bench bench-engine report engine-stats examples all clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Plain invocation (no --benchmark-only): works with or without the
# optional pytest-benchmark plugin — benchmarks/conftest.py provides a
# single-shot `benchmark` fixture when the plugin is missing.
bench:
	$(PYTHON) -m pytest benchmarks/ -q

bench-engine:
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py -q -s

engine-stats:
	$(PYTHON) -m repro.cli engine-stats

report:
	$(PYTHON) -m repro.experiments.runner

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; done

all: test bench report

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache src/repro.egg-info
