# Convenience targets for the reproduction.
#
# `make install` prefers the standard editable install and falls back to
# the legacy path on offline environments that lack the `wheel` package.

PYTHON ?= python

.PHONY: install test test-faults test-hangs slo-smoke serve-smoke serve-chaos chaos-smoke bench bench-engine bench-serve bench-campaign bench-match bench-obs match-smoke serve report engine-stats campaign examples docs-check all clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The tier-1 suite under seeded transient-failure weather (the CI
# fault-matrix job): every deterministic report must survive unchanged.
test-faults:
	REPRO_FAULT_RATE=0.05 REPRO_FAULT_SEED=2014 $(PYTHON) -m pytest tests/ -x -q

# The tier-1 suite with every call stalled and the watchdog armed well
# above the stall (the CI hang-matrix job): every invocation crosses the
# watchdog's worker thread, nothing times out, nothing changes.
test-hangs:
	REPRO_FAULT_RATE=0.05 REPRO_FAULT_SEED=2014 \
	REPRO_STALL_MS=0.5 REPRO_WATCHDOG_BUDGET=10 \
		$(PYTHON) -m pytest tests/ -x -q

# Longitudinal acceptance smoke (the CI slo-smoke job): a faulted
# campaign with --trace and --sample armed fires availability and
# drift alerts, gets SIGKILLed mid-run, resumes byte-identical, and
# the snapshot timeline + alert history reconstruct from the journal
# alone.
slo-smoke:
	$(PYTHON) -m pytest -x -q tests/test_obs_longitudinal.py

# Plain invocation (no --benchmark-only): works with or without the
# optional pytest-benchmark plugin — benchmarks/conftest.py provides a
# single-shot `benchmark` fixture when the plugin is missing.
bench:
	$(PYTHON) -m pytest benchmarks/ -q

bench-engine:
	$(PYTHON) -m pytest benchmarks/test_bench_engine.py -q -s

# Serving-layer benchmark: 1000-client capacity phase (zero 5xx) and a
# deliberate saturation phase (429 + Retry-After, bounded queue).
# Writes the measured latency/throughput/shed numbers to BENCH_serve.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve.py

# Sharded-campaign benchmark: the same whole-catalog campaign serial vs
# --workers 4 under injected provider latency.  Accepts only if the
# sharded report is byte-identical to the serial one and faster.
# Writes the wall-clock + per-shard breakdown to BENCH_campaign.json.
bench-campaign:
	$(PYTHON) benchmarks/bench_campaign.py

# Repository-scale matching benchmark: exhaustive vs index-pruned §6
# matching on the paper catalog (digests must be byte-identical) and a
# 5000-module synthetic all-pairs run (>=10x fewer invocations than the
# analytic exhaustive estimate).  Writes BENCH_match.json.  Override the
# synthetic size with BENCH_MATCH_SYNTH=N (the CI smoke uses 600).
bench-match:
	$(PYTHON) benchmarks/bench_match.py

# Observability-plane benchmark: tracing / 50 Hz-profiler overhead on
# the whole-catalog generation workload (both gated <5%, reports
# byte-identical) and 4-replica fleet span assembly timed from the
# journal files alone.  Writes BENCH_obs.json.
bench-obs:
	$(PYTHON) benchmarks/bench_obs.py

# Matching acceptance smoke (the CI match-smoke job): the match/ unit
# and property tests plus a downsized benchmark run writing to a temp
# file (the committed BENCH_match.json stays untouched).
match-smoke:
	$(PYTHON) -m pytest -x -q tests/test_match_signature.py \
		tests/test_match_index.py tests/test_match_synth.py \
		tests/test_match_builder.py tests/test_match_repair.py \
		tests/test_match_cli.py tests/test_match_exactness.py

# Serving acceptance smoke (the CI serve-smoke job): start a real
# `repro-cli serve` process, fire a concurrent loadgen burst, scrape
# /metrics, and assert the repro_http_* series and SLO gauges are there.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

# Fleet chaos acceptance (the CI serve-chaos job): a 4-replica
# SO_REUSEPORT fleet under the 1000-client loadgen with two replicas
# SIGKILLed mid-load (zero 5xx, bounded stranded-work errors,
# reconvergence, graceful drain), then an armed --chaos-kill-replica
# fleet self-healing, then a restart serving the memoized state.
serve-chaos:
	$(PYTHON) tools/serve_chaos.py

# Sharded-campaign acceptance smoke (the CI chaos-matrix job): a
# --workers 4 campaign under --chaos-kill-rate, the supervisor itself
# SIGKILLed mid-run, resumed from the surviving journals, and the
# resumed report demanded byte-identical to a serial run.
chaos-smoke:
	$(PYTHON) tools/chaos_smoke.py

# The annotation service itself, journaled so `repro-cli top http-server
# --db serve.sqlite` can watch it live.
serve:
	$(PYTHON) -m repro.cli serve --db serve.sqlite --sample 2 --register-all

engine-stats:
	$(PYTHON) -m repro.cli engine-stats

# A journaled whole-catalog generation campaign (kill it and run
# `repro-cli campaign resume nightly --db campaigns.sqlite` to finish).
campaign:
	$(PYTHON) -m repro.cli campaign run nightly --db campaigns.sqlite

report:
	$(PYTHON) -m repro.experiments.runner

# Docs drift gate (the CI docs job): Markdown links and path references
# resolve, documented repro-cli subcommands exist (and every real one is
# documented), and the API reference's doctest examples pass.
docs-check:
	$(PYTHON) tools/check_docs.py

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script > /dev/null || exit 1; done

all: test bench report

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache src/repro.egg-info
