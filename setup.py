"""Legacy setup shim: this environment lacks the `wheel` package, so PEP 660
editable installs fail; `pip install -e . --no-use-pep517` uses this instead."""
from setuptools import setup

setup()
