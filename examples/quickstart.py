"""Quickstart: annotate a black-box scientific module with data examples.

Builds the default universe + ontology + instance pool, picks a few
catalog modules, runs the §3.2 generation heuristic and prints the
resulting data examples as Figure-2-style cards together with their
§4.2 evaluation.

Run:  python examples/quickstart.py
"""

from repro import (
    ExampleGenerator,
    InstancePool,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
    evaluate_module,
)


def main() -> None:
    ctx = default_context()
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())
    generator = ExampleGenerator(ctx, pool)
    modules = {m.module_id: m for m in default_catalog()}

    for module_id in (
        "ret.get_uniprot_record",   # the paper's GetRecord (Figure 2)
        "ret.get_protein_record",   # over-partitioned: 2 partitions, 1 class
        "ret.get_biological_sequence",  # Figure 7's broad retrieval
    ):
        module = modules[module_id]
        report = generator.generate(module)
        evaluation = evaluate_module(ctx, module, report.examples)
        print("=" * 72)
        print(f"{module.name}  [{module.category.value}, {module.interface.value}]")
        print(
            f"examples: {report.n_examples}   "
            f"coverage: {evaluation.coverage:.2f}   "
            f"completeness: {evaluation.completeness:.2f}   "
            f"conciseness: {evaluation.conciseness:.2f}"
        )
        for example in report.examples[:3]:
            print()
            print(example.render())
        if report.n_examples > 3:
            print(f"\n... and {report.n_examples - 3} more examples")
        print()


if __name__ == "__main__":
    main()
