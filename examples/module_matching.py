"""Comparing module behavior with data examples (§6).

Demonstrates all three behavior relationships on decayed modules:

* an *equivalent* match — a decayed KEGG SOAP service and its REST
  re-implementation;
* an *overlapping* match — Figure 7's ``GetProteinSequence`` against the
  broader ``GetBiologicalSequence`` (relaxed parameter mapping), and a
  legacy variant that agrees on one of its two input partitions;
* a *disjoint* pair — two homology searches with identical signatures but
  different algorithms.

Run:  python examples/module_matching.py
"""

from repro import (
    ExampleGenerator,
    InstancePool,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
    find_matches,
)
from repro.modules.catalog import DECAYED_PROVIDERS, build_decayed_modules
from repro.workflow import shut_down_providers


def main() -> None:
    ctx = default_context()
    catalog = list(default_catalog())
    decayed = {m.module_id: m for m in build_decayed_modules()}
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())
    generator = ExampleGenerator(ctx, pool)

    # Reconstruct data examples while the modules are still invocable
    # (in reality these come from provenance traces, §6).
    examples = {
        module_id: generator.generate(module).examples
        for module_id, module in decayed.items()
    }
    shut_down_providers(decayed.values(), DECAYED_PROVIDERS)

    for module_id in (
        "old.get_kegg_gene_s",       # -> equivalent REST twin
        "old.get_protein_sequence",  # -> overlapping (Figure 7)
        "old.get_protein_record",    # -> overlapping (legacy PIR rendering)
        "old.search_protein_top3",   # -> disjoint only, no usable match
    ):
        module = decayed[module_id]
        print("=" * 72)
        print(f"unavailable module: {module.name}  ({module.provider})")
        print(f"harvested examples: {len(examples[module_id])}")
        reports = find_matches(ctx, module, examples[module_id], catalog)
        if not reports:
            print("  no candidate shares a compatible signature")
            continue
        for report in reports[:4]:
            domain = {
                parameter: sorted(concepts)
                for parameter, concepts in report.agreement_domain.items()
            }
            print(
                f"  {report.kind.value:<12} {report.candidate_id:<32} "
                f"agreed {report.n_agreeing}/{report.n_examples}"
                + (f"  on {domain}" if report.kind.value == "overlapping" else "")
            )
        print()


if __name__ == "__main__":
    main()
