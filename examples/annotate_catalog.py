"""Full §4 curation session: annotate the whole catalog and persist it.

Runs the generation heuristic over all 252 modules, stores the resulting
data examples in the module registry, persists the registry to SQLite,
reloads it, and prints the evaluation summary (the Tables 1/2 pipeline).

Run:  python examples/annotate_catalog.py [registry.db]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    ExampleGenerator,
    InstancePool,
    ModuleRegistry,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
    evaluate_module,
)
from repro.core.metrics import histogram
from repro.registry import load_registry, save_registry


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "repro-registry.db"
    )
    ctx = default_context()
    ontology = build_mygrid_ontology()
    pool = InstancePool.bootstrap(default_factory(), ontology)
    generator = ExampleGenerator(ctx, pool)
    registry = ModuleRegistry(ontology)

    catalog = default_catalog()
    evaluations = []
    for module in catalog:
        registry.register(module)
        report = generator.generate(module)
        registry.attach_examples(module.module_id, report.examples)
        evaluations.append(evaluate_module(ctx, module, report.examples))

    total_examples = sum(len(registry.examples_of(m.module_id)) for m in catalog)
    print(f"annotated {len(registry)} modules with {total_examples} data examples")

    print("\ncompleteness histogram (Table 1):")
    for value, count in histogram([e.completeness for e in evaluations], 3):
        print(f"  {count:>4} modules @ {value}")
    print("\nconciseness histogram (Table 2):")
    for value, count in histogram([e.conciseness for e in evaluations], 2):
        print(f"  {count:>4} modules @ {value}")

    save_registry(registry, path)
    print(f"\nregistry persisted to {path} ({path.stat().st_size} bytes)")

    reloaded = ModuleRegistry(ontology)
    restored = load_registry(path, reloaded, {m.module_id: m for m in catalog})
    restored_examples = sum(
        len(reloaded.examples_of(m.module_id)) for m in catalog
    )
    print(f"reloaded {restored} modules, {restored_examples} examples intact")

    print("\nregistry queries:")
    consumers = registry.consuming("UniProtAccession")
    print(f"  modules consuming UniProt accessions: {len(consumers)}")
    producers = registry.producing("BiologicalSequence")
    print(f"  modules producing biological sequences: {len(producers)}")


if __name__ == "__main__":
    main()
