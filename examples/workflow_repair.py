"""Repairing a decayed workflow (§6, Figures 6 and 7).

Builds the Figure 7 workflow — a producer feeding protein accessions into
``GetProteinSequence``, whose provider then shuts down — and repairs it
with the *overlapping* substitute ``GetBiologicalSequence``, validating
the repaired workflow against the pre-decay provenance.

Run:  python examples/workflow_repair.py
"""

from repro import (
    ExampleGenerator,
    InstancePool,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
    find_matches,
)
from repro.core.repair import WorkflowRepairer
from repro.modules.catalog import DECAYED_PROVIDERS, build_decayed_modules
from repro.workflow import DataLink, Enactor, Step, Workflow, shut_down_providers


def main() -> None:
    ctx = default_context()
    catalog = list(default_catalog())
    decayed = build_decayed_modules()
    modules = {m.module_id: m for m in catalog}
    modules.update({m.module_id: m for m in decayed})
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())
    enactor = Enactor(ctx, modules, pool)

    workflow = Workflow(
        workflow_id="figure-7",
        name="GO terms of the most similar protein (Figure 7)",
        steps=(
            Step("map", "map.kegg_to_uniprot"),
            Step("getseq", "old.get_protein_sequence"),
            Step("digest", "an.digest_protein"),
        ),
        links=(
            DataLink("map", "mapped", "getseq", "id"),
            DataLink("getseq", "sequence", "digest", "sequence"),
        ),
    )

    print("1. Before the decay event the workflow runs fine:")
    historical = enactor.enact(workflow)
    print(f"   succeeded={historical.succeeded}, "
          f"final outputs: {historical.final_outputs()[0].value.render(40)}\n")

    print("2. Harvest data examples for the soon-to-decay modules:")
    generator = ExampleGenerator(ctx, pool)
    examples = {m.module_id: generator.generate(m).examples for m in decayed}
    print(f"   reconstructed examples for {len(examples)} modules\n")

    print("3. The iSPIDER/KEGG-SOAP/BioMOBY/EMBRACE providers shut down:")
    gone = shut_down_providers(decayed, DECAYED_PROVIDERS)
    print(f"   {len(gone)} modules became unavailable")
    print(f"   workflow now fails: succeeded={enactor.try_enact(workflow).succeeded}\n")

    print("4. Match the unavailable module and repair the workflow:")
    matches = {
        m.module_id: find_matches(ctx, m, examples[m.module_id], catalog)
        for m in decayed
    }
    repairer = WorkflowRepairer(ctx, modules, matches, pool)
    result = repairer.repair(workflow, historical)
    for step_id, (old, new, kind) in result.substitutions.items():
        print(f"   step {step_id!r}: {old} -> {new}  [{kind.value}]")
    print(f"   outcome: {result.outcome.value}, "
          f"validated against history: {result.validated}")


if __name__ == "__main__":
    main()
