"""Running the §5 study as a document-producing session.

Builds the two-phase questionnaire cards the paper handed its users,
collects the simulated users' response sheets, and prints the Figure 5
summary — showing the study as reproducible artifacts, not just counts.

Run:  python examples/user_study_session.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    ExampleGenerator,
    InstancePool,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
)
from repro.study import (
    DEFAULT_USERS,
    build_questionnaire,
    record_responses,
    render_response_sheet,
    run_study,
)


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "repro-study"
    )
    out.mkdir(parents=True, exist_ok=True)

    ctx = default_context()
    catalog = list(default_catalog())
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())
    generator = ExampleGenerator(ctx, pool)
    examples = {m.module_id: generator.generate(m).examples for m in catalog}

    cards = build_questionnaire(catalog, examples)
    questionnaire = out / "questionnaire_phase2.txt"
    questionnaire.write_text(
        ("\n" + "=" * 72 + "\n").join(card.phase2_text for card in cards),
        encoding="utf-8",
    )
    print(f"questionnaire with {len(cards)} cards -> {questionnaire}")

    for profile in DEFAULT_USERS:
        rows = record_responses(profile, catalog, examples)
        sheet = out / f"responses_{profile.name}.tsv"
        sheet.write_text(render_response_sheet(profile, rows), encoding="utf-8")
        print(f"{profile.name}: "
              f"{sum(r.phase1_correct for r in rows)} without examples, "
              f"{sum(r.phase2_correct for r in rows)} with -> {sheet}")

    study = run_study(catalog, examples)
    print(f"\nmean identification with examples: "
          f"{study.mean_with_fraction():.0%} of {study.n_modules} modules")


if __name__ == "__main__":
    main()
