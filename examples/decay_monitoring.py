"""Monitoring workflow decay across a repository (§6 motivation, [42]).

Publishes the full module population on a service bus, generates the
myExperiment-style repository, fires the provider-shutdown event and
prints the registry operator's decay report: how many workflows broke,
which providers carry the blast radius, which modules are the most
damaging — the analysis that motivates the paper's repair method.

Run:  python examples/decay_monitoring.py
"""

from repro import (
    InstancePool,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
)
from repro.modules.catalog import DECAYED_PROVIDERS, build_decayed_modules
from repro.modules.hosting import ServiceBus
from repro.workflow import (
    RepositoryBuilder,
    RepositoryConfig,
    analyze_decay,
    render_decay_report,
    shut_down_providers,
)


def main() -> None:
    ctx = default_context()
    catalog = list(default_catalog())
    decayed = build_decayed_modules()
    modules = {m.module_id: m for m in catalog + decayed}
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())

    bus = ServiceBus(ctx)
    directory = bus.publish_all(catalog + decayed)
    print(f"published {len(directory)} module endpoints, e.g.")
    for module_id in ("ret.get_kegg_gene", "old.get_kegg_gene_s"):
        print(f"  {module_id:<24} {directory[module_id]}")

    print("\ngenerating the workflow repository (3000 workflows)...")
    repository = RepositoryBuilder(
        ctx, catalog, decayed, pool, RepositoryConfig()
    ).build()

    print("firing the decay event "
          f"(providers {', '.join(sorted(DECAYED_PROVIDERS))})...\n")
    shut_down_providers(decayed, DECAYED_PROVIDERS)

    report = analyze_decay(repository.workflows, modules)
    print(render_decay_report(report))


if __name__ == "__main__":
    main()
