"""Tuning the invocation engine: cached + parallel example generation.

The §3.2 heuristic is invocation-bound — one module call per input
combination, over the whole 252-module catalog.  This example runs that
workload three ways through :class:`repro.engine.InvocationEngine`:

1. the plain serial path (the engine's direct default);
2. with the memoizing invocation cache warm — every repeated
   ``(module, bindings)`` pair is served without touching the wire;
3. with injected per-call latency (the network round trip real
   harvesting pays) overlapped by the thread-pool scheduler — while the
   reports stay identical to the serial run.

It finishes with a retry policy riding out a seeded provider blackout.

Run:  python examples/engine_tuning.py
"""

import time

from repro import (
    EngineConfig,
    ExampleGenerator,
    FaultPlan,
    InstancePool,
    InvocationEngine,
    RetryPolicy,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
)


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = (time.perf_counter() - start) * 1000
    print(f"{label:<44} {elapsed:8.1f} ms")
    return result


def main() -> None:
    ctx = default_context()
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())
    catalog = list(default_catalog())

    print(f"generating data examples for {len(catalog)} catalog modules\n")

    # 1. Serial, no cache: the baseline every earlier caller used.
    serial = ExampleGenerator(ctx, pool)
    baseline = timed("serial (direct invoker)", lambda: serial.generate_many(catalog))

    # 2. Cached: the second pass is served from the invocation cache.
    engine = InvocationEngine(EngineConfig(cache_size=8192))
    cached_gen = ExampleGenerator(ctx, pool, engine=engine)
    timed("cold pass (filling cache)", lambda: cached_gen.generate_many(catalog))
    warm = timed("warm pass (cache hits)", lambda: cached_gen.generate_many(catalog))
    assert warm == baseline, "caching must not change the reports"

    # 3. Parallel under injected latency: the regime of real harvesting.
    latency = FaultPlan(latency_ms=2.0, latency_jitter=0.0)
    slow = ExampleGenerator(
        ctx, pool, engine=InvocationEngine(EngineConfig(fault_plan=latency))
    )
    fast = ExampleGenerator(
        ctx, pool,
        engine=InvocationEngine(EngineConfig(parallelism=8, fault_plan=latency)),
    )
    sample = catalog[:80]
    slow_reports = timed(
        "serial + 2ms injected latency (80 modules)",
        lambda: slow.generate_many(sample),
    )
    fast_reports = timed(
        "parallel x8 + 2ms injected latency",
        lambda: fast.generate_many(sample),
    )
    assert fast_reports == slow_reports, "parallelism must not change the reports"

    print("\nwarm-cache engine accounting:")
    print(engine.render_stats())

    # 4. A retry policy rides out a provider blackout.
    blackout = InvocationEngine(
        EngineConfig(
            retry=RetryPolicy(max_attempts=4, base_delay=0.001),
            fault_plan=FaultPlan(
                blackout_providers=frozenset({catalog[0].provider}),
                blackout_calls=2,
            ),
        )
    )
    report = ExampleGenerator(ctx, pool, engine=blackout).generate(catalog[0])
    telemetry = blackout.telemetry
    print(
        f"\nblackout of {catalog[0].provider!r}: "
        f"{telemetry.counter('faults_injected')} injected faults, "
        f"{telemetry.counter('retries')} retries, "
        f"{report.n_examples} examples generated anyway"
    )


if __name__ == "__main__":
    main()
