"""The paper's §8 future-work items, implemented.

1. **Redundancy detection** — record-linkage-style clustering of data
   examples estimates each module's behavior classes without ground
   truth, flagging the over-partitioned modules of Table 2 and letting a
   curator prune redundant examples.
2. **Composition guidance** — data examples drive workflow composition:
   candidate successors are verified by feeding them the actual example
   output values, admitting value-level connections that annotation
   subsumption rejects.

Run:  python examples/future_work.py
"""

from repro import (
    ExampleGenerator,
    InstancePool,
    build_mygrid_ontology,
    default_catalog,
    default_context,
    default_factory,
)
from repro.core.composition import CompositionAdvisor
from repro.core.redundancy import RedundancyDetector


def main() -> None:
    ctx = default_context()
    catalog = list(default_catalog())
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())
    generator = ExampleGenerator(ctx, pool)
    modules = {m.module_id: m for m in catalog}

    print("1. Redundancy detection (record linkage over data examples)")
    print("-" * 64)
    detector = RedundancyDetector(threshold=0.5)
    for module_id in ("ret.get_protein_record", "an.sequence_length",
                      "map.link", "an.translate_dna"):
        examples = generator.generate(modules[module_id]).examples
        report = detector.detect(module_id, examples)
        pruned = detector.prune(module_id, examples)
        print(f"{modules[module_id].name:<24} {report.n_examples:>2} examples "
              f"-> {len(report.clusters)} estimated classes "
              f"({report.estimated_redundant} redundant, keep {len(pruned)})")

    print()
    print("2. Composition guidance (verified by invocation)")
    print("-" * 64)
    advisor = CompositionAdvisor(ctx, catalog, pool)
    for module_id in ("ret.get_uniprot_record", "xf.fasta_rewrap"):
        producer = modules[module_id]
        examples = generator.generate(producer).examples
        suggestions = advisor.suggest_successors(producer, examples)
        print(f"{producer.name}: {len(suggestions)} verified successors")
        for suggestion in suggestions[:5]:
            marker = "" if suggestion.annotation_compatible else "  [value-level only]"
            print(f"   {suggestion.output} -> "
                  f"{modules[suggestion.consumer_id].name}.{suggestion.input}{marker}")
        print()


if __name__ == "__main__":
    main()
