"""The paper's Figure 1 workflow: protein identification.

Composes Identify -> GetProteinRecord -> SearchSimple, enacts it against
the synthetic universe and prints the captured provenance trace — the
same kind of trace the §4.1 instance pool is harvested from.

Run:  python examples/protein_identification.py
"""

from repro import build_mygrid_ontology, default_catalog, default_context, default_factory
from repro.pool import InstancePool
from repro.workflow import DataLink, Enactor, Step, Workflow


def main() -> None:
    ctx = default_context()
    modules = {m.module_id: m for m in default_catalog()}
    pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())

    workflow = Workflow(
        workflow_id="figure-1",
        name="protein identification (Figure 1)",
        steps=(
            Step("identify", "an.identify"),
            Step("getrecord", "ret.get_protein_record"),
            Step("search", "an.search_simple"),
        ),
        links=(
            DataLink("identify", "accession", "getrecord", "id"),
            DataLink("getrecord", "record", "search", "record"),
        ),
    )

    trace = Enactor(ctx, modules, pool).enact(workflow)
    print(f"workflow {workflow.name!r}: succeeded={trace.succeeded}\n")
    for record in trace.invocations:
        print(f"[t={record.logical_time}] {record.step_id} ({record.module_id})")
        for binding in record.inputs:
            print(f"   in  {binding.parameter:<10} {binding.value.render(44)}")
        for binding in record.outputs:
            print(f"   out {binding.parameter:<10} {binding.value.render(44)}")
        print()
    report = trace.final_outputs()[0]
    print("final alignment report:")
    print(report.value.payload)


if __name__ == "__main__":
    main()
