"""Tests of the campaign flight recorder: spans journaled per
invocation, reconstruction from the journal alone (a SIGKILLed
campaign included), rendering, and the ``repro-cli trace`` surface."""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignConfig, CampaignJournal, CampaignRunner
from repro.campaign import render_campaign_report
from repro.obs import FlightRecorder, Span, load_spans, render_trace
from repro.obs.tracing import LAYERS

BASE = dict(limit=3, retry_base_delay=0.0, probe_interval=0.05)


def make_runner(ctx, catalog, pool, journal, **overrides):
    return CampaignRunner(
        ctx, catalog, pool, journal, CampaignConfig(**{**BASE, **overrides})
    )


@pytest.fixture
def journal(tmp_path):
    journal = CampaignJournal(tmp_path / "journal.sqlite")
    yield journal
    journal.close()


def _span(module_id="m1", start_ms=0.0, duration_ms=1.0, outcome="ok"):
    span = Span("invoke", module_id, start_ms, {"provider": "EBI"})
    span.duration_ms = duration_ms
    span.outcome = outcome
    return span


def _assert_well_formed(data: dict) -> None:
    """One journaled span tree is complete: every node carries the full
    timing record and a known layer name."""
    assert data["name"] in LAYERS
    assert isinstance(data["start_ms"], float)
    assert isinstance(data["duration_ms"], float)
    assert data["duration_ms"] >= 0.0
    assert data["outcome"]
    for child in data.get("children", ()):
        _assert_well_formed(child)


# ----------------------------------------------------------------------
# The sink + reconstruction
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_sink_journals_and_load_spans_round_trips(self, journal):
        journal.create("c1", 1, ["m1"])
        recorder = FlightRecorder(journal, "c1")
        first, second = _span("m1", 0.0), _span("m2", 5.0, outcome="ValueError")
        recorder(first)
        recorder(second)

        assert recorder.recorded == 2
        assert journal.span_count("c1") == 2
        assert load_spans(journal, "c1") == [first, second]

    def test_module_filter(self, journal):
        journal.create("c1", 1, ["m1"])
        recorder = FlightRecorder(journal, "c1")
        for module_id in ("m1", "m2", "m1"):
            recorder(_span(module_id))
        filtered = load_spans(journal, "c1", module_id="m1")
        assert [span.module_id for span in filtered] == ["m1", "m1"]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
class TestRenderTrace:
    def _spans(self):
        spans = [
            _span("mod.cheap", 0.0, 1.0),
            _span("mod.cheap", 2.0, 2.0),
            _span("mod.costly", 5.0, 50.0, outcome="ModuleTimeoutError"),
        ]
        spans[2].detail = "no answer within 0.5s"
        return spans

    def test_header_rollup_and_timeline(self):
        text = render_trace(self._spans(), "c1")
        assert "Flight recorder — campaign c1" in text
        assert "invocations: 3 traced, 1 failed" in text
        # The rollup answers "where did the time go": costly first.
        rollup = text.index("mod.costly")
        assert rollup < text.index("mod.cheap")
        assert "calls=2" in text
        assert "timeline (all of 3 invocations)" in text
        assert "[no answer within 0.5s]" in text

    def test_slowest_selects_by_root_duration(self):
        text = render_trace(self._spans(), "c1", slowest=1)
        trees = text.split("slowest 1 invocations:")[1]
        assert "ModuleTimeoutError" in trees  # the 50ms timeout made the cut
        assert "1.000ms" not in trees  # the cheap calls did not

    def test_limit_keeps_timeline_order(self):
        text = render_trace(self._spans(), "c1", limit=2)
        trees = text.split("timeline (first 2 of 3 invocations):")[1]
        assert "1.000ms" in trees and "2.000ms" in trees
        assert "ModuleTimeoutError" not in trees  # third in timeline order

    def test_empty_campaign_says_so(self):
        text = render_trace([], "c1")
        assert "no spans journaled" in text
        assert "--trace" in text


# ----------------------------------------------------------------------
# A traced campaign, in process
# ----------------------------------------------------------------------
class TestTracedCampaign:
    def test_traced_run_journals_one_span_per_invocation(
        self, ctx, catalog, pool, journal
    ):
        result = make_runner(ctx, catalog, pool, journal, trace=True).run("c1")
        assert journal.meta("c1").status == "complete"

        spans = load_spans(journal, "c1")
        assert journal.span_count("c1") == len(spans) > 0
        assert set(span.module_id for span in spans) == set(result.reports)
        for span in spans:
            _assert_well_formed(span.to_dict())
            assert span.name == "invoke"
            assert span.attributes.get("provider")
        # The journal is the single source: reconstruction equals the
        # serialized form exactly.
        assert [span.to_dict() for span in spans] == list(journal.spans("c1"))

    def test_tracing_does_not_perturb_the_report(self, ctx, catalog, pool, tmp_path):
        reports = []
        for name, trace in (("plain", False), ("traced", True)):
            journal = CampaignJournal(tmp_path / f"{name}.sqlite")
            try:
                result = make_runner(
                    ctx, catalog, pool, journal, trace=trace
                ).run(name)
            finally:
                journal.close()
            reports.append(
                render_campaign_report(result).replace(name, "CID")
            )
        assert reports[0] == reports[1]

    def test_untraced_run_journals_nothing(self, ctx, catalog, pool, journal):
        make_runner(ctx, catalog, pool, journal).run("c1")
        assert journal.span_count("c1") == 0
        assert "no spans journaled" in render_trace(load_spans(journal, "c1"), "c1")


# ----------------------------------------------------------------------
# The CLI surface + the SIGKILL acceptance test
# ----------------------------------------------------------------------
def _cli(*args):
    root = Path(__file__).resolve().parents[1]
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        timeout=300,
    )


class TestTraceCli:
    def test_unknown_campaign_exits_with_guidance(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            ["trace", "nope", "--db", str(tmp_path / "empty.sqlite")]
        ) == 2
        assert "no campaign 'nope'" in capsys.readouterr().err

    def test_trace_renders_a_journaled_campaign(self, tmp_path, capsys):
        from repro.cli import main

        db = tmp_path / "journal.sqlite"
        run = _cli(
            "campaign", "run", "cli-trace", "--db", str(db), "--limit", "2",
            "--trace",
        )
        assert run.returncode == 0, run.stderr

        assert main(["trace", "cli-trace", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "Flight recorder — campaign cli-trace" in out
        assert "per-module cost" in out

        assert main(["trace", "cli-trace", "--db", str(db), "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded
        for data in decoded:
            _assert_well_formed(data)


def test_sigkill_leaves_a_reconstructable_timeline(tmp_path):
    """The acceptance measurement: SIGKILL a traced campaign mid-flight;
    ``repro-cli trace`` reconstructs the complete span timeline of
    everything invoked before the kill, from the journal file alone."""
    root = Path(__file__).resolve().parents[1]
    db = tmp_path / "killed.sqlite"
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", "run", "smoke",
         "--db", str(db), "--limit", "10", "--latency-ms", "10", "--trace"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    try:
        # Wait until a few spans are journaled, then kill -9.
        deadline = time.time() + 120
        while time.time() < deadline:
            spans = 0
            if db.exists():
                try:
                    spans = sqlite3.connect(db).execute(
                        "SELECT COUNT(*) FROM campaign_spans"
                    ).fetchone()[0]
                except sqlite3.OperationalError:
                    spans = 0  # schema not committed yet
            if spans >= 3 or victim.poll() is not None:
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign never journaled a span")
    finally:
        victim.kill()  # SIGKILL
        victim.wait()

    committed = sqlite3.connect(db).execute(
        "SELECT COUNT(*) FROM campaign_spans"
    ).fetchone()[0]
    assert committed >= 3

    # Reconstruction needs nothing but the journal file.
    traced = _cli("trace", "smoke", "--db", str(db), "--json")
    assert traced.returncode == 0, traced.stderr
    decoded = json.loads(traced.stdout)
    assert len(decoded) == committed
    starts = []
    for data in decoded:
        _assert_well_formed(data)
        assert data["name"] == "invoke"
        starts.append(data["start_ms"])
    assert starts == sorted(starts)  # recording order is the timeline

    rendered = _cli("trace", "smoke", "--db", str(db), "--slowest", "2")
    assert rendered.returncode == 0, rendered.stderr
    assert f"invocations: {committed} traced" in rendered.stdout
    assert "slowest 2 invocations:" in rendered.stdout

    # Resume finishes the campaign and keeps appending to the same
    # timeline.
    resumed = _cli("campaign", "resume", "smoke", "--db", str(db))
    assert resumed.returncode == 0, resumed.stderr
    assert "status: complete" in resumed.stdout
    after = sqlite3.connect(db).execute(
        "SELECT COUNT(*) FROM campaign_spans"
    ).fetchone()[0]
    assert after > committed
