"""Cross-reference integrity of the synthetic biological universe."""

import pytest

from repro.biodb.sequences import classify_sequence, peptide_masses
from repro.biodb.universe import BioUniverse, UnknownAccessionError, default_universe


class TestDeterminism:
    def test_same_seed_same_universe(self):
        a = BioUniverse(seed=99)
        b = BioUniverse(seed=99)
        assert [p.uniprot for p in a.proteins] == [p.uniprot for p in b.proteins]
        assert [g.dna_sequence for g in a.genes] == [g.dna_sequence for g in b.genes]

    def test_different_seed_different_sequences(self):
        a = BioUniverse(seed=1)
        b = BioUniverse(seed=2)
        assert [p.sequence for p in a.proteins] != [p.sequence for p in b.proteins]

    def test_default_universe_is_cached(self):
        assert default_universe() is default_universe()

    def test_too_small_universe_rejected(self):
        with pytest.raises(ValueError):
            BioUniverse(n_proteins=2)


class TestCrossReferences:
    def test_protein_gene_bijection(self, universe):
        assert len(universe.proteins) == len(universe.genes)
        for protein in universe.proteins:
            gene = universe.gene_for_protein(protein)
            assert universe.protein_for_gene(gene) is protein

    def test_protein_sequences_classify_as_protein(self, universe):
        for protein in universe.proteins[:20]:
            assert classify_sequence(protein.sequence) == "ProteinSequence"

    def test_gene_sequences_classify_as_dna(self, universe):
        for gene in universe.genes[:20]:
            assert classify_sequence(gene.dna_sequence) == "DNASequence"

    def test_pathway_gene_links_are_symmetric(self, universe):
        for pathway in universe.pathways:
            for gene_ordinal in pathway.gene_ordinals:
                assert pathway.ordinal in universe.genes[gene_ordinal].pathway_ordinals

    def test_go_term_ordinals_in_range(self, universe):
        for protein in universe.proteins:
            for ordinal in protein.go_term_ordinals:
                assert 0 <= ordinal < len(universe.go_terms)

    def test_structure_backlinks(self, universe):
        for structure in universe.structures:
            protein = universe.proteins[structure.protein_ordinal]
            assert protein.structure_ordinal == structure.ordinal

    def test_publication_backlinks(self, universe):
        for publication in universe.publications:
            for ordinal in publication.protein_ordinals:
                assert publication.ordinal in universe.proteins[ordinal].publication_ordinals

    def test_enzyme_gene_links_valid(self, universe):
        for enzyme in universe.enzymes:
            assert enzyme.gene_ordinals
            for ordinal in enzyme.gene_ordinals:
                assert 0 <= ordinal < len(universe.genes)


class TestLookups:
    def test_resolve_every_lookup_concept(self, universe):
        samples = {
            "UniProtAccession": universe.proteins[0].uniprot,
            "PIRAccession": universe.proteins[0].pir,
            "KEGGGeneId": universe.genes[0].kegg_id,
            "EMBLAccession": universe.genes[0].embl,
            "KEGGPathwayId": universe.pathways[0].kegg_id,
            "ECNumber": universe.enzymes[0].ec_number,
            "KEGGCompoundId": universe.compounds[0].kegg_id,
            "PDBIdentifier": universe.structures[0].pdb_id,
            "GOTermIdentifier": universe.go_terms[0].go_id,
            "PubMedIdentifier": universe.publications[0].pubmed_id,
        }
        for concept, accession in samples.items():
            assert universe.resolve(concept, accession) is not None

    def test_unknown_accession_raises(self, universe):
        with pytest.raises(UnknownAccessionError):
            universe.resolve("UniProtAccession", "P99999")

    def test_unknown_concept_raises(self, universe):
        with pytest.raises(KeyError):
            universe.resolve("NotAConcept", "x")

    def test_has_is_total(self, universe):
        assert universe.has("UniProtAccession", universe.proteins[1].uniprot)
        assert not universe.has("UniProtAccession", "P99999")
        assert not universe.has("NotAConcept", "x")

    def test_interpro_lookup(self, universe):
        term = universe.go_terms[3]
        interpro = universe.interpro_for_go(term)
        assert universe.resolve("InterProIdentifier", interpro) is term

    def test_taxon_lookup(self, universe):
        taxon = universe.taxon_for_organism(2)
        assert universe.resolve("NCBITaxonId", taxon) == 2

    def test_organism_name_lookup(self, universe):
        assert universe.resolve("ScientificOrganismName", "Homo sapiens") == 0

    def test_lookup_concepts_lists_all_tables(self, universe):
        concepts = universe.lookup_concepts()
        assert "UniProtAccession" in concepts
        assert "NCBITaxonId" in concepts
        assert len(concepts) >= 20


class TestAnalysisHelpers:
    def test_similar_proteins_excludes_self(self, universe):
        protein = universe.proteins[0]
        similar = universe.similar_proteins(protein, limit=5)
        assert len(similar) == 5
        assert protein not in similar

    def test_similar_proteins_prefers_same_stem(self, universe):
        protein = universe.proteins[0]
        stem = protein.name.split()[0]
        best = universe.similar_proteins(protein, limit=1)[0]
        assert best.name.split()[0] == stem

    def test_identify_by_own_masses_finds_protein(self, universe):
        protein = universe.proteins[7]
        found = universe.identify_by_peptide_masses(peptide_masses(protein.sequence))
        assert found is not None
        assert found.ordinal == protein.ordinal

    def test_identify_with_no_match_returns_none(self, universe):
        assert universe.identify_by_peptide_masses([0.001]) is None
