"""Journaled index builds: checkpoint, resume, config conflicts."""

import pytest

from repro.campaign.journal import COMPLETE, CampaignJournal, UnknownCampaignError
from repro.match import (
    IndexBuilder,
    SignatureConfig,
    build_synthetic_catalog,
    entry_from_record,
    entry_to_record,
    load_index,
)
from repro.match.synth import SyntheticCatalogConfig


@pytest.fixture(scope="module")
def world():
    return build_synthetic_catalog(SyntheticCatalogConfig(n_modules=24))


@pytest.fixture
def journal(tmp_path):
    return CampaignJournal(tmp_path / "match.sqlite")


class TestRecordRoundTrip:
    def test_entry_survives_serialization(self, world, journal):
        builder = IndexBuilder(journal)
        index = builder.build(world.modules, world.examples_by_id)
        for module_id in index.module_ids():
            entry = index.entry(module_id)
            again = entry_from_record(entry_to_record(entry))
            assert again == entry

    def test_old_records_without_input_tokens_load(self):
        record = {
            "module_id": "m",
            "shape": [1, 1],
            "values": [1, 2, 3, 4],
            "n_tokens": 2,
            "tokens": [10, 20],
        }
        entry = entry_from_record(record)
        assert entry.input_tokens == frozenset()


class TestBuildAndResume:
    def test_build_journals_every_signature(self, world, journal):
        builder = IndexBuilder(journal)
        index = builder.build(world.modules, world.examples_by_id)
        assert len(index) == len(world.modules)
        assert journal.signature_count("match-index") == len(world.modules)
        assert journal.meta("match-index").status == COMPLETE

    def test_resume_sketches_only_the_remainder(self, world, journal):
        first = IndexBuilder(journal)
        first.build(world.modules[:10], world.examples_by_id)

        sketched = []
        second = IndexBuilder(journal)
        index = second.build(
            world.modules,
            world.examples_by_id,
            progress=lambda done, total, module_id: sketched.append(module_id),
        )
        assert len(index) == len(world.modules)
        already = {m.module_id for m in world.modules[:10]}
        assert already.isdisjoint(sketched)
        assert len(sketched) == len(world.modules) - 10

    def test_resumed_index_equals_fresh_build(self, world, journal, tmp_path):
        partial = IndexBuilder(journal)
        partial.build(world.modules[:10], world.examples_by_id)
        resumed = IndexBuilder(journal).build(
            world.modules, world.examples_by_id
        )

        fresh_journal = CampaignJournal(tmp_path / "fresh.sqlite")
        fresh = IndexBuilder(fresh_journal).build(
            world.modules, world.examples_by_id
        )
        assert resumed.module_ids() == fresh.module_ids()
        for module_id in fresh.module_ids():
            assert resumed.candidates(module_id) == fresh.candidates(module_id)

    def test_conflicting_config_on_resume_raises(self, world, journal):
        IndexBuilder(journal, config=SignatureConfig(width=32, bands=8)).build(
            world.modules[:4], world.examples_by_id
        )
        conflicting = IndexBuilder(
            journal, config=SignatureConfig(width=64, bands=16)
        )
        with pytest.raises(ValueError, match="journaled"):
            conflicting.build(world.modules, world.examples_by_id)

    def test_resume_without_config_uses_journaled(self, world, journal):
        IndexBuilder(journal, config=SignatureConfig(width=32, bands=8)).build(
            world.modules[:4], world.examples_by_id
        )
        builder = IndexBuilder(journal)
        index = builder.build(world.modules, world.examples_by_id)
        assert builder.config == SignatureConfig(width=32, bands=8)
        assert index.config.width == 32


class TestLoadIndex:
    def test_load_rebuilds_without_examples(self, world, journal):
        built = IndexBuilder(journal).build(world.modules, world.examples_by_id)
        loaded = load_index(journal)
        assert loaded.module_ids() == built.module_ids()
        for module_id in built.module_ids():
            assert loaded.candidates(module_id) == built.candidates(module_id)

    def test_load_unknown_campaign_raises(self, journal):
        with pytest.raises(UnknownCampaignError):
            load_index(journal, "ghost")
