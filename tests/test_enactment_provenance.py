"""Tests for workflow enactment and provenance capture."""

import pytest

from repro.workflow.enactment import EnactmentError, Enactor
from repro.workflow.model import DataLink, Step, Workflow
from repro.workflow.provenance import harvest_examples


@pytest.fixture(scope="module")
def enactor(ctx, catalog_by_id, pool):
    return Enactor(ctx, dict(catalog_by_id), pool)


@pytest.fixture(scope="module")
def figure1_workflow():
    """The paper's Figure 1 protein-identification workflow."""
    return Workflow(
        workflow_id="fig1",
        name="protein identification",
        steps=(
            Step("identify", "an.identify"),
            Step("getrecord", "ret.get_protein_record"),
            Step("search", "an.search_simple"),
        ),
        links=(
            DataLink("identify", "accession", "getrecord", "id"),
            DataLink("getrecord", "record", "search", "record"),
        ),
    )


class TestEnactment:
    def test_figure1_workflow_enacts(self, enactor, figure1_workflow):
        trace = enactor.enact(figure1_workflow)
        assert trace.succeeded
        assert [r.step_id for r in trace.invocations] == [
            "identify", "getrecord", "search",
        ]

    def test_linked_values_flow_downstream(self, enactor, figure1_workflow):
        trace = enactor.enact(figure1_workflow)
        identify = trace.invocations[0]
        getrecord = trace.invocations[1]
        produced = next(b for b in identify.outputs if b.parameter == "accession")
        consumed = next(b for b in getrecord.inputs if b.parameter == "id")
        assert produced.value.payload == consumed.value.payload

    def test_free_inputs_fed_from_pool(self, enactor, figure1_workflow):
        trace = enactor.enact(figure1_workflow)
        search = trace.invocations[2]
        names = {b.parameter for b in search.inputs}
        assert {"record", "program", "database"} <= names

    def test_final_outputs_come_from_last_step(self, enactor, figure1_workflow):
        trace = enactor.enact(figure1_workflow)
        outputs = trace.final_outputs()
        assert outputs[0].parameter == "report"

    def test_unknown_module_fails(self, enactor):
        workflow = Workflow("w", "w", (Step("s", "no.such"),))
        with pytest.raises(EnactmentError, match="unknown module"):
            enactor.enact(workflow)

    def test_try_enact_returns_failed_trace(self, enactor):
        workflow = Workflow("w", "w", (Step("s", "no.such"),))
        trace = enactor.try_enact(workflow)
        assert not trace.succeeded
        assert trace.failure

    def test_unavailable_module_fails_workflow(self, ctx, catalog_by_id, pool):
        from repro.modules.catalog.decayed import build_decayed_modules

        decayed = {m.module_id: m for m in build_decayed_modules()}
        target = decayed["old.get_kegg_gene_s"]
        target.available = False
        modules = dict(catalog_by_id)
        modules.update(decayed)
        enactor = Enactor(ctx, modules, pool)
        workflow = Workflow("w", "w", (Step("s", target.module_id),))
        trace = enactor.try_enact(workflow)
        assert not trace.succeeded

    def test_enactment_is_deterministic(self, enactor, figure1_workflow):
        first = enactor.enact(figure1_workflow)
        second = enactor.enact(figure1_workflow)
        assert [
            [b.value.payload for b in r.outputs] for r in first.invocations
        ] == [[b.value.payload for b in r.outputs] for r in second.invocations]


class TestProvenance:
    def test_records_carry_annotations(self, enactor, figure1_workflow):
        trace = enactor.enact(figure1_workflow)
        for record in trace.invocations:
            for binding in record.outputs:
                assert binding.value.concept is not None

    def test_records_for_filters_by_module(self, enactor, figure1_workflow):
        trace = enactor.enact(figure1_workflow)
        assert len(trace.records_for("an.identify")) == 1
        assert trace.records_for("no.such") == []

    def test_invocation_as_data_example(self, enactor, figure1_workflow):
        trace = enactor.enact(figure1_workflow)
        example = trace.invocations[0].as_data_example()
        assert example.module_id == "an.identify"
        assert example.outputs

    def test_harvest_examples_deduplicates_inputs(self, enactor, figure1_workflow):
        traces = [enactor.enact(figure1_workflow) for _ in range(3)]
        examples = harvest_examples(traces, "ret.get_protein_record")
        assert len(examples) == 1  # identical runs, one distinct input

    def test_harvest_respects_limit(self, enactor, figure1_workflow):
        traces = [enactor.enact(figure1_workflow)]
        examples = harvest_examples(traces, "an.identify", limit=0)
        assert examples == []
