"""Invariants of the concrete myGrid-lite ontology."""

import pytest

from repro.ontology.mygrid import build_mygrid_ontology


@pytest.fixture(scope="module")
def onto():
    return build_mygrid_ontology()


class TestFigure4Fragment:
    """The sequence fragment shown in the paper's Figure 4."""

    def test_sequence_hierarchy(self, onto):
        assert onto.subsumes("BiologicalSequence", "NucleotideSequence")
        assert onto.subsumes("NucleotideSequence", "DNASequence")
        assert onto.subsumes("NucleotideSequence", "RNASequence")
        assert onto.subsumes("BiologicalSequence", "ProteinSequence")

    def test_example3_partitions(self, onto):
        """Example 3 lists exactly these five partitions."""
        assert set(onto.partitions_of("BiologicalSequence")) == {
            "BiologicalSequence",
            "NucleotideSequence",
            "DNASequence",
            "RNASequence",
            "ProteinSequence",
        }

    def test_sequence_concepts_all_realizable(self, onto):
        for concept in onto.partitions_of("BiologicalSequence"):
            assert onto.has_realization(concept)


class TestStructure:
    def test_single_root(self, onto):
        assert onto.roots() == ("Thing",)

    def test_covered_parents_have_children(self, onto):
        for concept in onto:
            if concept.covered_by_children:
                assert onto.children(concept.name), concept.name

    def test_identifier_parents_are_covered(self, onto):
        for name in ("Identifier", "DatabaseAccession", "ProteinAccession",
                     "GeneIdentifier", "PathwayIdentifier"):
            assert not onto.has_realization(name)

    def test_sequence_database_accession_is_multi_parent_grouping(self, onto):
        children = set(onto.children("SequenceDatabaseAccession"))
        assert children == {
            "UniProtAccession", "PIRAccession", "EMBLAccession",
            "GenBankAccession", "RefSeqNucleotideAccession", "KEGGGeneId",
            "EntrezGeneId", "EnsemblGeneId",
        }
        # the children keep their scheme parents too (DAG)
        assert "ProteinAccession" in onto.ancestors("UniProtAccession")
        assert "SequenceDatabaseAccession" in onto.ancestors("UniProtAccession")

    def test_database_accession_realizable_partition_count(self, onto):
        realizable = [
            c for c in onto.partitions_of("DatabaseAccession")
            if onto.has_realization(c)
        ]
        assert len(realizable) == 20

    def test_protein_accession_partitions(self, onto):
        realizable = [
            c for c in onto.partitions_of("ProteinAccession")
            if onto.has_realization(c)
        ]
        assert set(realizable) == {"UniProtAccession", "PIRAccession"}

    def test_organism_identifier_partitions(self, onto):
        realizable = [
            c for c in onto.partitions_of("OrganismIdentifier")
            if onto.has_realization(c)
        ]
        assert set(realizable) == {"NCBITaxonId", "ScientificOrganismName"}

    def test_report_subtree_realizable_leaves(self, onto):
        realizable = {
            c for c in onto.partitions_of("Report") if onto.has_realization(c)
        }
        assert "HomologySearchReport" in realizable
        assert "Report" not in realizable
        assert "AlignmentReport" not in realizable

    def test_every_concept_has_description(self, onto):
        for concept in onto:
            assert concept.description

    def test_build_is_cached(self):
        assert build_mygrid_ontology() is build_mygrid_ontology()

    def test_size_is_stable(self, onto):
        # Guard: the catalog's partition math depends on this population.
        assert len(onto) == 87
