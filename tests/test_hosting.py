"""Tests for the service-bus hosting layer."""

import pytest

from repro.modules.errors import InvalidInputError, ModuleUnavailableError
from repro.modules.hosting import ServiceBus, address_of
from repro.modules.model import InterfaceKind
from repro.values import STRING, TypedValue


@pytest.fixture()
def bus(ctx, catalog):
    bus = ServiceBus(ctx)
    bus.publish_all(catalog)
    return bus


class TestAddressing:
    def test_soap_address_shape(self, catalog_by_id):
        module = catalog_by_id["ret.get_uniprot_record"]
        assert module.interface is InterfaceKind.SOAP_SERVICE
        assert address_of(module) == (
            "soap://ebi.example.org/services/ret.get_uniprot_record"
        )

    def test_rest_address_shape(self, catalog_by_id):
        module = catalog_by_id["ret.get_kegg_gene"]
        assert address_of(module).startswith("http://kegg-rest.example.org/")

    def test_local_address_shape(self, catalog):
        module = next(
            m for m in catalog if m.interface is InterfaceKind.LOCAL_PROGRAM
        )
        assert address_of(module).startswith("file:///usr/local/bin/")

    def test_addresses_are_unique_across_catalog(self, catalog):
        addresses = {address_of(m) for m in catalog}
        assert len(addresses) == len(catalog)


class TestPublishing:
    def test_publish_all_returns_directory(self, bus, catalog):
        assert len(bus.addresses()) == len(catalog)

    def test_republishing_same_module_is_idempotent(self, ctx, catalog_by_id):
        bus = ServiceBus(ctx)
        module = catalog_by_id["map.link"]
        assert bus.publish(module) == bus.publish(module)

    def test_resolve_round_trip(self, bus, catalog_by_id):
        module = catalog_by_id["map.link"]
        assert bus.resolve(address_of(module)) is module

    def test_unknown_address_raises(self, bus):
        with pytest.raises(KeyError):
            bus.resolve("soap://nowhere.example.org/services/x")


class TestDispatch:
    def test_successful_call_logged(self, bus, catalog_by_id, pool):
        module = catalog_by_id["ret.get_uniprot_record"]
        outputs = bus.call(
            address_of(module), {"id": pool.get_instance("UniProtAccession")}
        )
        assert "record" in outputs
        log = bus.calls_to(module.module_id)
        assert len(log) == 1 and log[0].succeeded

    def test_failed_call_logged_and_raised(self, bus, catalog_by_id):
        module = catalog_by_id["ret.get_uniprot_record"]
        with pytest.raises(InvalidInputError):
            bus.call(address_of(module), {"id": TypedValue("garbage", STRING)})
        log = bus.calls_to(module.module_id)
        assert not log[-1].succeeded
        assert log[-1].error == "InvalidInputError"

    def test_log_sequence_is_monotonic(self, bus, catalog_by_id, pool):
        module = catalog_by_id["ret.get_uniprot_record"]
        for _ in range(3):
            bus.call(
                address_of(module), {"id": pool.get_instance("UniProtAccession")}
            )
        sequences = [r.sequence for r in bus.log()]
        assert sequences == sorted(sequences)

    def test_failure_rate(self, bus, catalog_by_id, pool):
        module = catalog_by_id["ret.get_uniprot_record"]
        bus.call(address_of(module), {"id": pool.get_instance("UniProtAccession")})
        with pytest.raises(InvalidInputError):
            bus.call(address_of(module), {"id": TypedValue("nope", STRING)})
        assert bus.failure_rate() == pytest.approx(0.5)

    def test_empty_log_failure_rate(self, ctx):
        assert ServiceBus(ctx).failure_rate() == 0.0


class TestDecayVisibility:
    def test_decayed_provider_surfaces_in_log(self, ctx, pool):
        from repro.modules.catalog.decayed import (
            DECAYED_PROVIDERS,
            build_decayed_modules,
        )
        from repro.workflow.decay import shut_down_providers

        decayed = build_decayed_modules()
        bus = ServiceBus(ctx)
        bus.publish_all(decayed)
        twin = next(m for m in decayed if m.module_id == "old.get_kegg_gene_s")
        shut_down_providers(decayed, DECAYED_PROVIDERS)
        with pytest.raises(ModuleUnavailableError):
            bus.call(address_of(twin), {"id": pool.get_instance("KEGGGeneId")})
        assert "KEGG-SOAP" in bus.providers_seen_failing()
