"""Behavioral drift: the §6 agreement rule turned inward, live
regeneration through the resilient engine, and campaign-level diffing
against a journaled baseline."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignConfig, CampaignJournal, CampaignRunner
from repro.core.examples import Binding, DataExample
from repro.core.generation import ExampleGenerator
from repro.core.matching import MatchKind
from repro.engine.faults import FaultPlan
from repro.engine.invoker import EngineConfig, InvocationEngine
from repro.engine.retry import RetryPolicy
from repro.obs.drift import (
    DriftDetector,
    campaign_drift,
    classify_example_sets,
    input_key,
    render_drift,
)
from repro.values import StructuralType, TypedValue

STRING = StructuralType(name="String", base="String")


def example(module_id, inp, out):
    return DataExample(
        module_id=module_id,
        inputs=(Binding("record", TypedValue(inp, STRING, "SequenceRecord")),),
        outputs=(Binding("converted", TypedValue(out, STRING, "SequenceRecord")),),
    )


# ----------------------------------------------------------------------
class TestClassification:
    def test_equivalent_when_every_baseline_input_reproduces(self):
        baseline = [example("m", "a", "A"), example("m", "b", "B")]
        current = [example("m", "b", "B"), example("m", "a", "A")]
        report = classify_example_sets("m", baseline, current)
        assert report.kind is MatchKind.EQUIVALENT
        assert not report.drifted
        assert (report.n_agreeing, report.n_changed, report.n_lost) == (2, 0, 0)

    def test_extra_current_inputs_do_not_demote_equivalence(self):
        baseline = [example("m", "a", "A")]
        current = [example("m", "a", "A"), example("m", "z", "Z")]
        report = classify_example_sets("m", baseline, current)
        assert report.kind is MatchKind.EQUIVALENT
        assert report.n_current == 2

    def test_overlapping_when_some_outputs_changed(self):
        baseline = [example("m", "a", "A"), example("m", "b", "B")]
        current = [example("m", "a", "A"), example("m", "b", "CHANGED")]
        report = classify_example_sets("m", baseline, current)
        assert report.kind is MatchKind.OVERLAPPING
        assert report.drifted
        assert report.n_changed == 1

    def test_disjoint_when_nothing_agrees(self):
        baseline = [example("m", "a", "A")]
        current = [example("m", "a", "WRONG")]
        report = classify_example_sets("m", baseline, current)
        assert report.kind is MatchKind.DISJOINT

    def test_lost_inputs_count_as_drift(self):
        baseline = [example("m", "a", "A"), example("m", "b", "B")]
        report = classify_example_sets("m", baseline, [example("m", "a", "A")])
        assert report.kind is MatchKind.OVERLAPPING
        assert report.n_lost == 1

    def test_empty_baseline_is_an_error(self):
        with pytest.raises(ValueError):
            classify_example_sets("m", [], [example("m", "a", "A")])

    def test_input_key_is_order_insensitive_and_nan_safe(self):
        a = DataExample(
            module_id="m",
            inputs=(
                Binding("x", TypedValue(1, STRING)),
                Binding("y", TypedValue(float("nan"), STRING)),
            ),
            outputs=(),
        )
        b = DataExample(
            module_id="m",
            inputs=(
                Binding("y", TypedValue(float("nan"), STRING)),
                Binding("x", TypedValue(1, STRING)),
            ),
            outputs=(),
        )
        assert input_key(a) == input_key(b)

    def test_describe_and_render(self):
        baseline = [example("m", "a", "A")]
        drifted = classify_example_sets("m", baseline, [example("m", "a", "X")])
        clean = classify_example_sets("ok", baseline, baseline)
        text = render_drift([drifted, clean])
        assert "1/2 modules drifted" in text
        assert "! m" in text and "disjoint: 0/1" in text
        assert "  ok" in text
        assert "No modules compared" in render_drift([])


# ----------------------------------------------------------------------
def fast_engine(**fault_kw):
    retry = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
    plan = FaultPlan(**fault_kw) if fault_kw else None
    return InvocationEngine(EngineConfig(retry=retry, fault_plan=plan))


@pytest.fixture(scope="module")
def baseline_examples(ctx, catalog_by_id, pool):
    module = catalog_by_id["xf.fasta_uppercase"]
    report = ExampleGenerator(ctx, pool, engine=InvocationEngine()).generate(module)
    assert report.examples, "fixture module must yield baseline examples"
    return module, list(report.examples)


class TestDriftDetector:
    def test_stable_module_is_equivalent(self, ctx, baseline_examples):
        module, baseline = baseline_examples
        detector = DriftDetector(ctx, engine=fast_engine())
        report = detector.check(module, baseline)
        assert report.kind is MatchKind.EQUIVALENT
        assert report.n_lost == 0

    def test_nondeterministic_provider_reads_as_drift(self, ctx, baseline_examples):
        module, baseline = baseline_examples
        detector = DriftDetector(
            ctx,
            engine=fast_engine(nondeterministic_providers=frozenset({"EBI"})),
        )
        report = detector.check(module, baseline)
        assert report.drifted
        assert report.kind is MatchKind.DISJOINT
        assert report.n_changed == report.n_baseline

    def test_dark_provider_loses_every_input(self, ctx, baseline_examples):
        module, baseline = baseline_examples
        detector = DriftDetector(
            ctx,
            engine=fast_engine(permanent_blackout_providers=frozenset({"EBI"})),
        )
        report = detector.check(module, baseline)
        assert report.kind is MatchKind.DISJOINT
        assert report.n_lost == report.n_baseline
        assert report.n_current == 0

    def test_default_engine_is_constructed(self, ctx, baseline_examples):
        module, baseline = baseline_examples
        report = DriftDetector(ctx).check(module, baseline)
        assert report.kind is MatchKind.EQUIVALENT


# ----------------------------------------------------------------------
class TestCampaignDrift:
    def test_identical_campaigns_are_equivalent(self, ctx, catalog, pool, tmp_path):
        journal = CampaignJournal(tmp_path / "drift.sqlite")
        config = CampaignConfig(limit=2, retry_base_delay=0.0)
        try:
            runner = CampaignRunner(ctx, catalog, pool, journal, config)
            runner.run("baseline")
            fresh = CampaignRunner(ctx, catalog, pool, journal, config)
            result = fresh.run("fresh")
            reports = {
                module_id: entry.report
                for module_id, entry in journal.entries("fresh").items()
            }
            drift = campaign_drift(journal, "baseline", reports)
            assert len(drift) == 2
            assert all(r.kind is MatchKind.EQUIVALENT for r in drift)
            assert [r.module_id for r in drift] == sorted(r.module_id for r in drift)
            # The runner with config.baseline wires the same comparison in.
            assert result.drift == []
        finally:
            journal.close()

    def test_modules_missing_from_baseline_are_skipped(self, tmp_path, ctx, catalog, pool):
        journal = CampaignJournal(tmp_path / "skip.sqlite")
        try:
            runner = CampaignRunner(
                ctx, catalog, pool, journal, CampaignConfig(limit=1, retry_base_delay=0.0)
            )
            runner.run("tiny-baseline")
            reports = {"not.in.baseline": None}
            assert campaign_drift(journal, "tiny-baseline", reports) == []
        finally:
            journal.close()
