"""Round-trip and error tests for the flat-file format layer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.biodb import formats


@pytest.fixture(scope="module")
def protein_fields(universe=None):
    from repro.biodb.records import protein_fields as build
    from repro.biodb.universe import default_universe

    u = default_universe()
    return build(u, u.proteins[5])


@pytest.fixture(scope="module")
def gene_fields():
    from repro.biodb.records import gene_fields as build
    from repro.biodb.universe import default_universe

    u = default_universe()
    return build(u, u.genes[5])


class TestFasta:
    def test_round_trip(self, protein_fields):
        text = formats.render_fasta(protein_fields)
        parsed = formats.parse_fasta(text)
        assert parsed["accession"] == protein_fields["accession"]
        assert parsed["sequence"] == protein_fields["sequence"]

    def test_long_sequences_are_wrapped(self):
        text = formats.render_fasta({"accession": "X", "sequence": "A" * 150})
        body_lines = text.splitlines()[1:]
        assert all(len(line) <= 60 for line in body_lines)
        assert formats.parse_fasta(text)["sequence"] == "A" * 150

    def test_parse_rejects_headerless_text(self):
        with pytest.raises(formats.FormatError):
            formats.parse_fasta("ACGT\n")

    def test_description_optional(self):
        parsed = formats.parse_fasta(">ACC\nMK\n")
        assert parsed["description"] == ""


class TestUniProtFlat:
    def test_round_trip_core_fields(self, protein_fields):
        text = formats.render_uniprot_flat(protein_fields)
        parsed = formats.parse_uniprot_flat(text)
        for key in ("accession", "sequence", "organism", "gene_name"):
            assert parsed[key] == protein_fields[key], key

    def test_xrefs_round_trip(self, protein_fields):
        text = formats.render_uniprot_flat(protein_fields)
        parsed = formats.parse_uniprot_flat(text)
        assert parsed["xrefs"] == protein_fields["xrefs"]

    def test_parse_rejects_foreign_text(self):
        with pytest.raises(formats.FormatError):
            formats.parse_uniprot_flat(">not uniprot\nMK\n")

    def test_record_terminates_with_slashes(self, protein_fields):
        assert formats.render_uniprot_flat(protein_fields).rstrip().endswith("//")


class TestNucleotideFlatFiles:
    def test_embl_round_trip(self, gene_fields):
        text = formats.render_embl_flat(gene_fields)
        parsed = formats.parse_embl_flat(text)
        assert parsed["accession"] == gene_fields["accession"]
        assert parsed["sequence"] == gene_fields["sequence"]

    def test_embl_sequence_is_lowercase_on_wire(self, gene_fields):
        text = formats.render_embl_flat(gene_fields)
        body = [l for l in text.splitlines() if l.startswith("     ")]
        assert body and all(l.strip().islower() for l in body)

    def test_genbank_round_trip(self, gene_fields):
        text = formats.render_genbank_flat(gene_fields)
        parsed = formats.parse_genbank_flat(text)
        assert parsed["accession"] == gene_fields["accession"]
        assert parsed["sequence"] == gene_fields["sequence"]

    def test_genbank_origin_lines_are_numbered(self, gene_fields):
        text = formats.render_genbank_flat(gene_fields)
        origin = text.split("ORIGIN")[1]
        first = origin.strip().splitlines()[0]
        assert first.split()[0] == "1"

    def test_embl_parse_rejects_genbank(self, gene_fields):
        with pytest.raises(formats.FormatError):
            formats.parse_embl_flat(formats.render_genbank_flat(gene_fields))

    def test_genbank_parse_rejects_embl(self, gene_fields):
        with pytest.raises(formats.FormatError):
            formats.parse_genbank_flat(formats.render_embl_flat(gene_fields))


class TestKeggFlat:
    def test_round_trip(self):
        fields = {"accession": "hsa:1001", "name": "geneX", "organism": "Homo sapiens"}
        parsed = formats.parse_kegg_flat(formats.render_kegg_flat(fields))
        assert parsed == fields

    def test_empty_fields_omitted(self):
        text = formats.render_kegg_flat({"accession": "x", "name": ""})
        assert "NAME" not in text

    def test_parse_rejects_other_formats(self):
        with pytest.raises(formats.FormatError):
            formats.parse_kegg_flat("LOCUS x")


class TestPdbAndObo:
    def test_pdb_round_trip(self):
        fields = {
            "accession": "1ABC", "description": "Crystal structure",
            "resolution": "1.90", "sequence": "MKWL",
        }
        parsed = formats.parse_pdb_text(formats.render_pdb_text(fields))
        assert parsed == fields

    def test_pdb_parse_requires_header(self):
        with pytest.raises(formats.FormatError):
            formats.parse_pdb_text("TITLE only\n")

    def test_obo_round_trip(self):
        fields = {"accession": "GO:0008150", "name": "binding 1",
                  "namespace": "molecular_function"}
        parsed = formats.parse_obo_stanza(formats.render_obo_stanza(fields))
        assert parsed == fields

    def test_obo_requires_term_stanza(self):
        with pytest.raises(formats.FormatError):
            formats.parse_obo_stanza("id: GO:1\n")


class TestStructuredFormats:
# Line-oriented flat files cannot carry control characters; values are
    # printable ASCII without the structural delimiters of each format.
    simple_fields = st.dictionaries(
        st.text(alphabet="abcdefgh_", min_size=1, max_size=10),
        st.text(
            alphabet=st.characters(
                codec="ascii",
                min_codepoint=32,
                exclude_characters="\t\"<>&,",
            ),
            max_size=30,
        ),
        min_size=1,
        max_size=6,
    )

    @given(simple_fields)
    def test_tabular_round_trip(self, fields):
        assert formats.parse_tabular(formats.render_tabular(fields)) == fields

    def test_tabular_rejects_untabbed_line(self):
        with pytest.raises(formats.FormatError):
            formats.parse_tabular("no tabs here\n")

    @given(simple_fields)
    def test_xml_round_trip(self, fields):
        assert formats.parse_xml(formats.render_xml(fields)) == fields

    def test_xml_rejects_malformed(self):
        with pytest.raises(formats.FormatError):
            formats.parse_xml("<open>")

    @given(simple_fields)
    def test_json_round_trip(self, fields):
        assert formats.parse_json(formats.render_json(fields)) == fields

    def test_json_rejects_arrays(self):
        with pytest.raises(formats.FormatError):
            formats.parse_json("[1, 2]")

    def test_json_rejects_garbage(self):
        with pytest.raises(formats.FormatError):
            formats.parse_json("{")

    def test_csv_escapes_quotes(self):
        text = formats.render_csv({"k": 'va"lue'})
        assert '"va""lue"' in text

    def test_medline_round_trip(self):
        fields = {"accession": "2000001", "title": "A title",
                  "abstract": "An abstract.", "doi": "10.1234/synbio.1"}
        parsed = formats.parse_medline(formats.render_medline(fields))
        assert parsed == fields

    def test_medline_requires_pmid(self):
        with pytest.raises(formats.FormatError):
            formats.parse_medline("TI  - no pmid\n")
