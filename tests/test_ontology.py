"""Unit tests for the ontology model, reasoner and serialization."""

import pytest

from repro.ontology import (
    Concept,
    Ontology,
    OntologyError,
    load_ontology,
    ontology_from_dict,
    ontology_to_dict,
    save_ontology,
)


@pytest.fixture()
def small():
    """A small diamond-shaped ontology for reasoning tests."""
    return Ontology(
        [
            Concept("Thing", covered_by_children=True),
            Concept("A", parents=("Thing",)),
            Concept("B", parents=("A",), covered_by_children=True),
            Concept("C", parents=("B",)),
            Concept("D", parents=("B",)),
            Concept("E", parents=("A",)),
            Concept("F", parents=("C", "E")),
        ],
        name="small",
    )


class TestConcept:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Concept("")

    def test_self_parent_rejected(self):
        with pytest.raises(ValueError):
            Concept("X", parents=("X",))

    def test_root_detection(self):
        assert Concept("X").is_root
        assert not Concept("X", parents=("Y",)).is_root


class TestConstruction:
    def test_duplicate_concepts_rejected(self):
        with pytest.raises(OntologyError, match="duplicate"):
            Ontology([Concept("A"), Concept("A")])

    def test_dangling_parent_rejected(self):
        with pytest.raises(OntologyError, match="unknown parent"):
            Ontology([Concept("A", parents=("Missing",))])

    def test_cycle_rejected(self):
        with pytest.raises(OntologyError, match="cycle"):
            Ontology(
                [Concept("A", parents=("B",)), Concept("B", parents=("A",))]
            )

    def test_len_and_contains(self, small):
        assert len(small) == 7
        assert "C" in small
        assert "Z" not in small

    def test_names_are_topologically_ordered(self, small):
        names = small.names()
        for concept in small:
            for parent in concept.parents:
                assert names.index(parent) < names.index(concept.name)


class TestReasoning:
    def test_subsumes_is_reflexive(self, small):
        for name in small.names():
            assert small.subsumes(name, name)

    def test_subsumes_transitive(self, small):
        assert small.subsumes("Thing", "F")
        assert small.subsumes("A", "D")

    def test_subsumes_respects_direction(self, small):
        assert not small.subsumes("C", "A")

    def test_subsumes_unknown_concept_raises(self, small):
        with pytest.raises(KeyError):
            small.subsumes("A", "Zed")

    def test_strict_subsumption_excludes_self(self, small):
        assert small.strictly_subsumes("A", "C")
        assert not small.strictly_subsumes("A", "A")

    def test_multi_parent_ancestors(self, small):
        assert small.ancestors("F") == frozenset({"C", "E", "B", "A", "Thing"})

    def test_descendants(self, small):
        assert small.descendants("B") == frozenset({"C", "D", "F"})

    def test_roots_and_leaves(self, small):
        assert small.roots() == ("Thing",)
        assert set(small.leaves()) == {"D", "F"}

    def test_children(self, small):
        assert set(small.children("B")) == {"C", "D"}
        with pytest.raises(KeyError):
            small.children("Zed")

    def test_depth_uses_longest_path(self, small):
        assert small.depth("Thing") == 0
        assert small.depth("F") == 4  # Thing > A > B > C > F

    def test_partitions_include_self_and_descendants(self, small):
        assert set(small.partitions_of("B")) == {"B", "C", "D", "F"}

    def test_partitions_depth_cap(self, small):
        assert set(small.partitions_of("B", max_depth=1)) == {"B", "C", "D"}
        assert set(small.partitions_of("B", max_depth=0)) == {"B"}

    def test_partitions_unknown_concept_raises(self, small):
        with pytest.raises(KeyError):
            small.partitions_of("Zed")

    def test_most_specific_filters_subsumers(self, small):
        assert set(small.most_specific(["A", "C", "F"])) == {"F"}
        assert set(small.most_specific(["C", "D"])) == {"C", "D"}

    def test_least_common_subsumers(self, small):
        assert set(small.least_common_subsumers("C", "D")) == {"B"}
        assert set(small.least_common_subsumers("D", "E")) == {"A"}

    def test_lcs_of_concept_with_itself(self, small):
        assert set(small.least_common_subsumers("C", "C")) == {"C"}

    def test_has_realization_reads_covered_flag(self, small):
        assert not small.has_realization("B")
        assert small.has_realization("C")


class TestSerialization:
    def test_dict_round_trip(self, small):
        rebuilt = ontology_from_dict(ontology_to_dict(small))
        assert rebuilt.names() == small.names()
        assert rebuilt.get("F").parents == small.get("F").parents
        assert rebuilt.get("B").covered_by_children

    def test_file_round_trip(self, small, tmp_path):
        path = tmp_path / "onto.json"
        save_ontology(small, path)
        rebuilt = load_ontology(path)
        assert rebuilt.name == "small"
        assert set(rebuilt.names()) == set(small.names())

    def test_descriptions_survive(self):
        ontology = Ontology([Concept("A", description="alpha")])
        rebuilt = ontology_from_dict(ontology_to_dict(ontology))
        assert rebuilt.get("A").description == "alpha"
