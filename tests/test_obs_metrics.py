"""Tests of metrics export: the text exposition format parses, label
values escape, histogram buckets are cumulative, counters only ever go
up, and the scrape endpoint serves."""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.core.generation import ExampleGenerator
from repro.engine import (
    BreakerPolicy,
    ConformancePolicy,
    EngineConfig,
    InvocationEngine,
    LatencyHistogram,
    Telemetry,
    WatchdogPolicy,
)
from repro.obs import (
    MetricsExporter,
    MetricsServer,
    escape_label_value,
    render_prometheus,
)

# ----------------------------------------------------------------------
# A strict text-exposition parser: HELP/TYPE comments, then samples of
# the form ``name{label="value",...} number``.  Chokes on anything the
# format forbids — an unescaped newline in a label value, a sample for
# an undeclared metric, a non-numeric value.
# ----------------------------------------------------------------------
_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*)\})?'
    r' (?P<value>[+-]?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf)|NaN)$'
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_exposition(text: str):
    """Return ``(types, samples)``; raise AssertionError on bad lines."""
    assert text.endswith("\n"), "exposition must end with a newline"
    types: "dict[str, str]" = {}
    samples: "dict[tuple, float]" = {}
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in types, f"duplicate TYPE for {name}"
            types[name] = kind
            continue
        match = _SAMPLE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in types or base in types, f"undeclared metric: {name}"
        labels = tuple(sorted(_LABEL.findall(match.group("labels") or "")))
        key = (name, labels)
        assert key not in samples, f"duplicate sample: {key}"
        value = match.group("value")
        samples[key] = float(value.replace("Inf", "inf"))
    return types, samples


def _bucket_samples(samples: dict, metric: str) -> "list[tuple[str, float]]":
    """``(le, value)`` pairs of one histogram, declaration order lost —
    re-sorted by bound with ``+Inf`` last."""
    found = [
        (dict(labels)["le"], value)
        for (name, labels), value in samples.items()
        if name == f"{metric}_bucket"
    ]
    return sorted(
        found, key=lambda pair: float("inf") if pair[0] == "+Inf" else float(pair[0])
    )


# ----------------------------------------------------------------------
# Escaping
# ----------------------------------------------------------------------
class TestEscaping:
    @pytest.mark.parametrize(
        ("raw", "escaped"),
        [
            ("plain", "plain"),
            ('say "hi"', r'say \"hi\"'),
            ("back\\slash", r"back\\slash"),
            ("two\nlines", r"two\nlines"),
            ('a"b\\c\nd', r'a\"b\\c\nd'),
        ],
    )
    def test_escape_label_value(self, raw, escaped):
        assert escape_label_value(raw) == escaped

    def test_hostile_provider_names_render_parseable(self):
        hostile = 'evil "provider"\nwith\\escapes'
        stats = {
            "counters": {},
            "breaker": {
                hostile: {"state": "open", "times_opened": 2, "fast_failures": 5},
            },
        }
        text = render_prometheus(stats)
        # Every line still parses — the newline did not split a sample.
        _, samples = parse_exposition(text)
        assert f'provider="{escape_label_value(hostile)}"' in text
        key = ("repro_breaker_state", (("provider", escape_label_value(hostile)),))
        assert samples[key] == 1  # open encodes as 1


# ----------------------------------------------------------------------
# Histogram rendering
# ----------------------------------------------------------------------
class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        telemetry = Telemetry()
        histogram = telemetry.histogram
        histogram.record(0.05)   # lands exactly on the first bound
        histogram.record(0.06)   # first bound exceeded -> second bucket
        histogram.record(2000.0)  # beyond the last bound -> +Inf only
        text = render_prometheus(telemetry.snapshot())
        _, samples = parse_exposition(text)

        buckets = dict(_bucket_samples(samples, "repro_invocation_latency_ms"))
        assert buckets["0.05"] == 1
        assert buckets["0.1"] == 2
        assert buckets["1000"] == 2
        assert buckets["+Inf"] == 3
        assert samples[("repro_invocation_latency_ms_count", ())] == 3
        assert samples[("repro_invocation_latency_ms_sum", ())] == pytest.approx(
            2000.11
        )

    def test_buckets_are_cumulative_and_complete(self):
        telemetry = Telemetry()
        for latency in (0.01, 0.3, 7.0, 40.0, 999.0):
            telemetry.histogram.record(latency)
        _, samples = parse_exposition(render_prometheus(telemetry.snapshot()))

        buckets = _bucket_samples(samples, "repro_invocation_latency_ms")
        bounds = [le for le, _ in buckets]
        assert bounds == [f"{b:g}" for b in LatencyHistogram.BOUNDS_MS] + ["+Inf"]
        values = [value for _, value in buckets]
        assert values == sorted(values)  # cumulative: non-decreasing
        assert values[-1] == samples[("repro_invocation_latency_ms_count", ())]


# ----------------------------------------------------------------------
# A real engine's exposition
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def full_engine(setup):
    """One engine with every layer configured, driven over two passes
    (the second pass is served from cache)."""
    engine = InvocationEngine(
        EngineConfig(
            cache_size=256,
            conformance=ConformancePolicy(),
            watchdog=WatchdogPolicy(budget=30.0),
            breaker=BreakerPolicy(),
            tracing=True,
        )
    )
    generator = ExampleGenerator(setup.ctx, setup.pool, engine=engine)
    for _ in range(2):
        generator.generate_many(setup.catalog[:3])
    return engine


class TestEngineExposition:
    def test_full_snapshot_renders_parseable(self, full_engine):
        _, samples = parse_exposition(MetricsExporter(full_engine).to_prometheus())

        assert samples[("repro_invocations_total", (("outcome", "ok"),))] > 0
        assert samples[("repro_cache_hits_total", ())] > 0
        assert samples[("repro_conformance_checked_total", ())] > 0
        assert samples[("repro_watchdog_timeouts_total", ())] == 0
        assert samples[("repro_tracing_traces_kept", ())] > 0
        assert samples[("repro_telemetry_dropped_events_total", ())] == 0
        providers = [
            dict(labels)["provider"]
            for (name, labels) in samples
            if name == "repro_provider_availability"
        ]
        assert providers and all(
            samples[("repro_provider_availability", (("provider", p),))] == 1.0
            for p in providers
        )

    def test_every_metric_is_namespaced(self, full_engine):
        types, samples = parse_exposition(
            MetricsExporter(full_engine, namespace="acme").to_prometheus()
        )
        assert types and all(name.startswith("acme_") for name in types)
        assert all(name.startswith("acme_") for name, _ in samples)

    def test_counters_are_monotonic_across_more_work(self, setup, full_engine):
        """Scraping, doing more work, and scraping again never shows a
        counter going backwards — the resume-safety property a
        Prometheus ``rate()`` depends on."""
        exporter = MetricsExporter(full_engine)
        types, before = parse_exposition(exporter.to_prometheus())
        ExampleGenerator(
            setup.ctx, setup.pool, engine=full_engine
        ).generate_many(setup.catalog[3:6])
        _, after = parse_exposition(exporter.to_prometheus())

        counters = [
            key for key in before
            if types.get(re.sub(r"_(bucket|sum|count)$", "", key[0])) == "counter"
            or types.get(key[0]) == "counter"
        ]
        assert counters
        for key in counters:
            assert after[key] >= before[key], f"{key} went backwards"
        assert (
            after[("repro_invocations_total", (("outcome", "ok"),))]
            > before[("repro_invocations_total", (("outcome", "ok"),))]
        )

    def test_json_export_round_trips_the_snapshot(self, full_engine):
        exporter = MetricsExporter(full_engine)
        decoded = json.loads(exporter.to_json())
        snapshot = exporter.snapshot()
        assert decoded["counters"] == snapshot["counters"]
        assert set(decoded) == set(snapshot)


# ----------------------------------------------------------------------
# Absent layers
# ----------------------------------------------------------------------
def test_bare_snapshot_skips_unconfigured_layers():
    text = render_prometheus(Telemetry().snapshot())
    types, _ = parse_exposition(text)
    assert "repro_invocations_total" in types
    for absent in ("repro_cache_entries", "repro_breaker_state",
                   "repro_watchdog_timeouts_total", "repro_tracing_traces_kept",
                   "repro_campaign_worker_up", "repro_serve_replica_up"):
        assert absent not in types


def test_workers_section_renders_per_shard_gauges():
    rows = [
        {"shard": 0, "worker": 0, "alive": True, "invocations": 12,
         "restarts": 0, "heartbeat_age": 0.5, "n_done": 3, "n_planned": 5},
        {"shard": 1, "worker": 4, "alive": False, "invocations": 7,
         "restarts": 2, "heartbeat_age": None, "n_done": 1, "n_planned": 5},
    ]
    text = render_prometheus({"workers": rows})
    types, samples = parse_exposition(text)
    assert types["repro_campaign_worker_up"] == "gauge"
    assert types["repro_campaign_worker_restarts_total"] == "counter"
    assert ('repro_campaign_worker_up{worker="0",shard="0"} 1') in text
    assert ('repro_campaign_worker_up{worker="4",shard="1"} 0') in text
    assert ('repro_campaign_worker_invocations_total{worker="4",shard="1"} 7'
            ) in text
    # A shard with no heartbeat row has no age sample at all, rather
    # than a misleading zero.
    assert 'repro_campaign_worker_heartbeat_age_seconds{worker="4"' not in text
    assert 'repro_campaign_worker_heartbeat_age_seconds{worker="0"' in text


def test_replicas_section_renders_per_replica_gauges():
    rows = [
        {"replica": 0, "alive": True, "requests_total": 41, "restarts": 0,
         "heartbeat_age": 0.4, "attempt": 1},
        {"replica": 1, "alive": False, "requests_total": 7, "restarts": 2,
         "heartbeat_age": None, "attempt": 3},
    ]
    text = render_prometheus({"replicas": rows})
    types, _ = parse_exposition(text)
    assert types["repro_serve_replica_up"] == "gauge"
    assert types["repro_serve_replica_restarts_total"] == "counter"
    assert 'repro_serve_replica_up{replica="0"} 1' in text
    assert 'repro_serve_replica_up{replica="1"} 0' in text
    assert 'repro_serve_replica_requests_total{replica="0"} 41' in text
    assert 'repro_serve_replica_restarts_total{replica="1"} 2' in text
    assert 'repro_serve_replica_attempt{replica="1"} 3' in text
    assert 'repro_serve_replica_heartbeat_age_seconds{replica="1"' not in text
    assert 'repro_serve_replica_heartbeat_age_seconds{replica="0"} 0.4' in text


def test_reuse_port_lets_two_servers_share_one_port():
    import http.server

    from repro.obs import bind_threading_server

    class Handler(http.server.BaseHTTPRequestHandler):
        pass

    first = bind_threading_server(
        Handler, "127.0.0.1", 0, "test", reuse_port=True
    )
    try:
        port = first.server_address[1]
        second = bind_threading_server(
            Handler, "127.0.0.1", port, "test", reuse_port=True
        )
        second.server_close()
    finally:
        first.server_close()


# ----------------------------------------------------------------------
# The scrape endpoint
# ----------------------------------------------------------------------
class TestMetricsServer:
    def test_serves_prometheus_json_and_404(self, full_engine):
        with MetricsServer(MetricsExporter(full_engine), port=0) as server:
            base = f"http://{server.host}:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith("text/plain")
                parse_exposition(response.read().decode("utf-8"))
            with urllib.request.urlopen(
                f"{base}/metrics.json", timeout=10
            ) as response:
                assert response.headers["Content-Type"].startswith(
                    "application/json"
                )
                assert "counters" in json.loads(response.read())
            with pytest.raises(urllib.error.HTTPError) as error:
                urllib.request.urlopen(f"{base}/nope", timeout=10)
            assert error.value.code == 404
        # The context manager released the socket: a second bind works.
        with MetricsServer(MetricsExporter(full_engine), port=0):
            pass


# ----------------------------------------------------------------------
# The CLI surface
# ----------------------------------------------------------------------
class TestMetricsCli:
    def test_metrics_prints_parseable_prometheus(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--limit", "2", "--repeat", "1"]) == 0
        types, samples = parse_exposition(capsys.readouterr().out)
        assert samples[("repro_invocations_total", (("outcome", "ok"),))] > 0

    def test_metrics_json_flag(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--limit", "2", "--repeat", "1", "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["counters"]["ok"] > 0

    def test_metrics_unknown_module_exits_nonzero(self, capsys):
        from repro.cli import main

        assert main(["metrics", "--module", "no.such"]) == 2
        assert "no module" in capsys.readouterr().err

    def test_engine_stats_warns_when_events_dropped(self, capsys):
        from repro.cli import main

        assert main(
            ["engine-stats", "--limit", "5", "--repeat", "1",
             "--fault-rate", "0.4", "--max-events", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert "events dropped" in captured.err
        assert "--max-events" in captured.err

    def test_engine_stats_json_surfaces_dropped_events(self, capsys):
        from repro.cli import main

        assert main(
            ["engine-stats", "--limit", "5", "--repeat", "1",
             "--fault-rate", "0.4", "--max-events", "2", "--json"]
        ) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["stats"]["dropped_events"] > 0
        assert decoded["stats"]["max_events"] == 2

    def test_metrics_warns_when_events_dropped(self, capsys):
        """Regression: the *metrics* path warns about a lossy telemetry
        window exactly like ``engine-stats`` does, on stderr, with the
        exposition on stdout untouched."""
        from repro.cli import main

        assert main(
            ["metrics", "--limit", "20", "--repeat", "2", "--max-events", "2"]
        ) == 0
        captured = capsys.readouterr()
        assert "telemetry ring buffer overflowed" in captured.err
        assert "--max-events" in captured.err
        types, samples = parse_exposition(captured.out)
        assert samples[("repro_telemetry_dropped_events_total", ())] > 0

    def test_metrics_json_warns_on_stderr_keeps_stdout_parseable(self, capsys):
        from repro.cli import main

        assert main(
            ["metrics", "--limit", "20", "--repeat", "2",
             "--max-events", "2", "--json"]
        ) == 0
        captured = capsys.readouterr()
        assert "telemetry ring buffer overflowed" in captured.err
        json.loads(captured.out)  # the warning never corrupts stdout


# ----------------------------------------------------------------------
# Scrape-under-load: rendering must never expose a torn histogram
# ----------------------------------------------------------------------
class TestConcurrentScrape:
    def test_histogram_never_torn_while_engine_is_invoking(self, setup):
        """Scrape repeatedly while a writer thread drives generation:
        every exposition must parse, every histogram's cumulative
        buckets must be monotone non-decreasing, and the ``+Inf`` bucket
        must equal ``_count`` — a torn read (half-updated buckets vs a
        newer count) violates one of those."""
        import threading

        engine = InvocationEngine(EngineConfig(parallelism=2))
        generator = ExampleGenerator(setup.ctx, setup.pool, engine=engine)
        stop = threading.Event()
        failures = []

        def writer():
            while not stop.is_set():
                try:
                    generator.generate_many(setup.catalog[:4])
                except Exception as error:  # pragma: no cover - diagnostic
                    failures.append(error)
                    return

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            scrapes = 0
            while scrapes < 40 and thread.is_alive():
                text = render_prometheus(engine.stats())
                types, samples = parse_exposition(text)
                buckets = _bucket_samples(samples, "repro_invocation_latency_ms")
                assert buckets, "histogram must be exported"
                values = [value for _le, value in buckets]
                assert values == sorted(values), f"non-monotone buckets: {buckets}"
                assert buckets[-1][0] == "+Inf"
                assert buckets[-1][1] == samples[
                    ("repro_invocation_latency_ms_count", ())
                ]
                scrapes += 1
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not failures, failures
        assert scrapes == 40
