"""Tests of the serving fleet: SO_REUSEPORT replicas behind one port,
shared memoization through the state store, crash restart and chaos-kill
convergence, graceful whole-fleet drain, rolling restarts, and the
full-fleet-restart durability acceptance (tenant accounting and memoized
reports resume byte-identically from the journal)."""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve import FleetConfig, ServeConfig, ServeSupervisor

FAST = dict(heartbeat_interval=0.2, restart_backoff=0.05, drain_timeout=5.0)


def _fetch(host, port, method="GET", path="/healthz", body=None,
           headers=None, timeout=15.0):
    """One request on a fresh connection; (status, parsed body)."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        connection.close()


def _generate(host, port, module_id, tenant=None):
    headers = {"Content-Type": "application/json"}
    if tenant is not None:
        headers["X-Api-Key"] = tenant
    return _fetch(
        host, port, "POST", "/v1/generate",
        body=json.dumps({"module_id": module_id}), headers=headers,
    )


def _wait(supervisor, predicate, timeout=45.0, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        supervisor.poll()
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"{message} not reached within {timeout}s")


def _supervisor(db, replicas=2, rate=None, burst=100.0, **fleet_kwargs):
    config = ServeConfig(
        host="127.0.0.1", port=0, state_db=str(db), rate=rate, burst=burst,
    )
    fleet = FleetConfig(replicas=replicas, **{**FAST, **fleet_kwargs})
    return ServeSupervisor(
        config, fleet, service={"seed": 2014}, register_all=True
    )


def _event_kinds(supervisor):
    return [event["kind"] for event in supervisor.store.events()]


class TestSupervisorValidation:
    def test_state_db_is_required(self):
        with pytest.raises(ValueError, match="state_db"):
            ServeSupervisor(ServeConfig(port=0))

    def test_log_stream_cannot_cross_the_spawn_boundary(self, tmp_path):
        config = ServeConfig(
            port=0, state_db=str(tmp_path / "s.db"), log_stream=sys.stderr
        )
        with pytest.raises(ValueError, match="log_stream"):
            ServeSupervisor(config)


class TestFleetServes:
    def test_replicas_share_one_port_and_one_report_store(self, tmp_path):
        supervisor = _supervisor(tmp_path / "fleet.db", replicas=2).start()
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 2,
                message="2 healthy replicas",
            )
            assert len(supervisor.pids) == 2
            module_id = supervisor.store.module_ids()[0]
            first = _generate(supervisor.host, supervisor.port, module_id)
            assert first[0] == 200
            # Every later answer is memoized no matter which replica the
            # kernel picks: the report lives in the shared store, not in
            # the replica that generated it.
            for _ in range(6):
                status, body = _generate(
                    supervisor.host, supervisor.port, module_id
                )
                assert status == 200
                assert body["cached"] is True
            assert supervisor.store.report_count() == 1
        finally:
            assert supervisor.drain() is True
            supervisor.close()

    def test_drained_fleet_journals_its_exit(self, tmp_path):
        supervisor = _supervisor(tmp_path / "fleet.db", replicas=2).start()
        _wait(
            supervisor, lambda: supervisor.healthy_replicas() == 2,
            message="2 healthy replicas",
        )
        assert supervisor.drain() is True
        rows = supervisor.store.replica_rows()
        assert [row["phase"] for row in rows] == ["drained", "drained"]
        kinds = _event_kinds(supervisor)
        assert kinds.count("drained") == 2
        assert kinds[-1] == "fleet-stop"
        supervisor.close()


class TestCrashRecovery:
    def test_sigkilled_replica_is_respawned(self, tmp_path):
        supervisor = _supervisor(tmp_path / "fleet.db", replicas=2).start()
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 2,
                message="2 healthy replicas",
            )
            victim = supervisor.pids[0]
            os.kill(victim, signal.SIGKILL)
            _wait(
                supervisor,
                lambda: supervisor.healthy_replicas() == 2
                and supervisor.pids.get(0) not in (None, victim),
                message="fleet reconverged after SIGKILL",
            )
            status, _ = _fetch(supervisor.host, supervisor.port)
            assert status == 200
            kinds = _event_kinds(supervisor)
            assert "crash" in kinds
            assert "restart-scheduled" in kinds
            assert "restart" in kinds
        finally:
            supervisor.drain()
            supervisor.close()

    def test_restart_budget_exhaustion_degrades_the_replica(self, tmp_path):
        # Chaos kills the replica's only process at its first request
        # and the budget allows no restart: the replica must be left
        # degraded, not respawned forever.
        supervisor = _supervisor(
            tmp_path / "fleet.db", replicas=1,
            max_restarts=0, chaos_kill_replica=1,
        ).start()
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 1,
                message="replica healthy",
            )
            with pytest.raises((OSError, http.client.HTTPException)):
                _fetch(supervisor.host, supervisor.port, path="/v1/modules")
            _wait(
                supervisor, lambda: "degraded" in _event_kinds(supervisor),
                message="replica degraded",
            )
            assert supervisor.healthy_replicas() == 0
        finally:
            supervisor.drain()
            supervisor.close()


class TestServeChaos:
    def test_chaos_kill_costs_only_the_in_flight_request(self, tmp_path):
        # The replica's first process dies mid-request at request 3; the
        # client on that request sees a dropped connection and nothing
        # else is lost — the restarted process (never re-armed) serves
        # on, and the memoized answer survived in the store.
        supervisor = _supervisor(
            tmp_path / "fleet.db", replicas=1, chaos_kill_replica=3,
        ).start()
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 1,
                message="replica healthy",
            )
            module_id = supervisor.store.module_ids()[0]
            assert _generate(supervisor.host, supervisor.port, module_id)[0] == 200
            assert _fetch(
                supervisor.host, supervisor.port, path="/v1/modules"
            )[0] == 200
            with pytest.raises((OSError, http.client.HTTPException)):
                # The 3rd governed request is the armed one.
                _fetch(supervisor.host, supervisor.port, path="/v1/modules")
            # Wait for the *replacement* specifically (attempt >= 2): the
            # client observes the chaos kill a beat before the supervisor
            # does, so right after the dropped connection the corpse's
            # journaled heartbeat is still fresh and plain
            # ``healthy_replicas() == 1`` would pass vacuously.
            _wait(
                supervisor,
                lambda: (
                    (supervisor.store.replica_status(0) or {}).get(
                        "attempt", 0
                    ) >= 2
                    and supervisor.healthy_replicas() == 1
                ),
                message="replacement process healthy",
            )
            # The restarted process is not chaos-armed: it sails past
            # request 3, and the report memoized before the kill is
            # still the fleet's answer.
            for _ in range(5):
                status, body = _generate(
                    supervisor.host, supervisor.port, module_id
                )
                assert status == 200
                assert body["cached"] is True
            spawn_events = [
                event for event in supervisor.store.events()
                if event["kind"] in ("spawn", "restart")
            ]
            assert "chaos armed" in spawn_events[0]["detail"]
            assert "chaos armed" not in spawn_events[-1]["detail"]
        finally:
            supervisor.drain()
            supervisor.close()


class TestRollingRestart:
    def test_rolling_restart_recycles_without_dropping_the_port(self, tmp_path):
        supervisor = _supervisor(tmp_path / "fleet.db", replicas=2).start()
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 2,
                message="2 healthy replicas",
            )
            before = dict(supervisor.pids)
            halt = threading.Event()
            double_faults = []

            def probe():
                # Loadgen's keep-alive rule, distilled: a single failed
                # probe may be the connection race of a drain; the same
                # probe failing twice in a row means the port went dark.
                while not halt.is_set():
                    try:
                        _fetch(supervisor.host, supervisor.port, timeout=5.0)
                    except (OSError, http.client.HTTPException):
                        try:
                            _fetch(supervisor.host, supervisor.port, timeout=5.0)
                        except (OSError, http.client.HTTPException) as error:
                            double_faults.append(error)
                    time.sleep(0.01)

            prober = threading.Thread(target=probe, daemon=True)
            prober.start()
            try:
                assert supervisor.rolling_restart(settle_timeout=45.0) is True
            finally:
                halt.set()
                prober.join(10.0)
            assert double_faults == []
            after = dict(supervisor.pids)
            assert set(after) == set(before)
            assert all(after[r] != before[r] for r in before)
            kinds = _event_kinds(supervisor)
            assert kinds.count("rolling-restart") >= 2  # begin + spawns + end
        finally:
            supervisor.drain()
            supervisor.close()


class TestDurabilityAcceptance:
    def test_full_fleet_restart_resumes_state_byte_identically(self, tmp_path):
        db = tmp_path / "fleet.db"
        supervisor = _supervisor(db, replicas=2, rate=50.0, burst=10.0).start()
        module_id = None
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 2,
                message="2 healthy replicas",
            )
            module_id = supervisor.store.module_ids()[0]
            for _ in range(3):
                status, _ = _generate(
                    supervisor.host, supervisor.port, module_id, tenant="acct"
                )
                assert status == 200
        finally:
            assert supervisor.drain() is True
        tenants_before = supervisor.store.tenant_snapshot()
        reports_before = supervisor.store.report_count()
        supervisor.close()
        assert tenants_before["acct"]["allowed"] == 3
        assert reports_before == 1

        # A brand-new fleet on the same journal: the very first answer
        # is memoized, and tenant accounting continues from the exact
        # journaled balance instead of a fresh bucket.
        revived = _supervisor(db, replicas=2, rate=50.0, burst=10.0).start()
        try:
            assert revived.store.tenant_snapshot() == tenants_before
            _wait(
                revived, lambda: revived.healthy_replicas() == 2,
                message="revived fleet healthy",
            )
            status, body = _generate(
                revived.host, revived.port, module_id, tenant="acct"
            )
            assert status == 200
            assert body["cached"] is True
            snapshot = revived.store.tenant_snapshot()["acct"]
            assert snapshot["allowed"] == tenants_before["acct"]["allowed"] + 1
        finally:
            revived.drain()
            revived.close()


# ----------------------------------------------------------------------
# The CLI surface: `serve --replicas N` + SIGTERM drain + `serve fleet`.
# ----------------------------------------------------------------------
def _cli_env(root):
    return {"PYTHONPATH": str(root / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin"}


def test_cli_fleet_sigterm_drains_and_post_mortem_renders(tmp_path):
    root = Path(__file__).resolve().parents[1]
    db = tmp_path / "cli-fleet.db"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--replicas", "2", "--port", "0", "--db", str(db),
         "--register-all", "--heartbeat-interval", "0.2"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        cwd=root,
        env=_cli_env(root),
    )
    try:
        banner = process.stderr.readline()
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        assert match, f"no address in banner: {banner!r}"
        host, port = match.group(1), int(match.group(2))
        deadline = time.time() + 45
        while time.time() < deadline:
            try:
                if _fetch(host, port, timeout=5.0)[0] == 200:
                    break
            except (OSError, http.client.HTTPException):
                time.sleep(0.1)
        else:
            pytest.fail("fleet never answered /healthz")
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=60) == 0  # graceful drain
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    post_mortem = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "fleet", "--db", str(db)],
        capture_output=True, text=True, cwd=root, env=_cli_env(root),
        timeout=60,
    )
    assert post_mortem.returncode == 0, post_mortem.stderr
    assert "drained" in post_mortem.stdout
    assert "EVENTS" in post_mortem.stdout
    assert "fleet-stop" in post_mortem.stdout

    gauges = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "fleet", "--db", str(db),
         "--prometheus"],
        capture_output=True, text=True, cwd=root, env=_cli_env(root),
        timeout=60,
    )
    assert gauges.returncode == 0, gauges.stderr
    assert 'repro_serve_replica_up{replica="0"}' in gauges.stdout
    assert 'repro_serve_replica_attempt{replica="1"}' in gauges.stdout


def test_cli_fleet_requires_a_db(tmp_path):
    root = Path(__file__).resolve().parents[1]
    run = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve",
         "--replicas", "2", "--port", "0"],
        capture_output=True, text=True, cwd=root, env=_cli_env(root),
        timeout=60,
    )
    assert run.returncode == 2
    assert "--db" in run.stderr
