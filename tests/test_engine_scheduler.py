"""Scheduler determinism and concurrent service-bus behavior."""

from __future__ import annotations

import threading

import pytest

from repro.core.generation import ExampleGenerator
from repro.engine import (
    BatchScheduler,
    DirectInvoker,
    EngineConfig,
    InvocationEngine,
)
from repro.modules.hosting import ServiceBus


class TestBatchScheduler:
    def test_serial_preserves_order(self):
        assert BatchScheduler(1).map(lambda x: x * 2, range(5)) == [0, 2, 4, 6, 8]

    def test_parallel_preserves_order(self):
        scheduler = BatchScheduler(4)
        items = list(range(64))
        assert scheduler.map(lambda x: x * x, items) == [x * x for x in items]

    def test_parallel_actually_uses_worker_threads(self):
        main = threading.current_thread().name
        names = BatchScheduler(4).map(
            lambda _: threading.current_thread().name, range(32)
        )
        assert any(name != main for name in names)

    def test_worker_exception_propagates(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("worker failed")
            return x

        with pytest.raises(RuntimeError, match="worker failed"):
            BatchScheduler(4).map(boom, range(8))

    def test_starmap_indexed(self):
        result = BatchScheduler(2).starmap_indexed(
            lambda index, item: (index, item), ["a", "b"]
        )
        assert result == [(0, "a"), (1, "b")]

    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(0)


class TestParallelGenerationDeterminism:
    """§ tentpole acceptance: parallel reports are bit-identical to serial."""

    @pytest.fixture(scope="class")
    def sample(self, catalog):
        # A slice wide enough to hit every interface kind and multi-input
        # modules, small enough to generate four times in one test class.
        return catalog[:60]

    def test_partition_selection_parallel_equals_serial(self, ctx, pool, sample):
        serial = ExampleGenerator(ctx, pool).generate_many(sample, parallelism=1)
        parallel = ExampleGenerator(ctx, pool).generate_many(sample, parallelism=8)
        assert serial == parallel
        assert list(serial) == list(parallel)  # catalog-ordered assembly

    def test_random_selection_parallel_equals_serial(self, ctx, pool, sample):
        serial = ExampleGenerator(
            ctx, pool, selection="random", seed=5
        ).generate_many(sample, parallelism=1)
        parallel = ExampleGenerator(
            ctx, pool, selection="random", seed=5
        ).generate_many(sample, parallelism=8)
        assert serial == parallel

    def test_engine_configured_parallelism_is_the_default(self, ctx, pool, sample):
        engine = InvocationEngine(EngineConfig(parallelism=6))
        generator = ExampleGenerator(ctx, pool, engine=engine)
        parallel = generator.generate_many(sample)
        serial = ExampleGenerator(ctx, pool).generate_many(sample)
        assert parallel == serial

    def test_cached_engine_reports_equal_uncached(self, ctx, pool, sample):
        plain = ExampleGenerator(ctx, pool).generate_many(sample)
        engine = InvocationEngine(EngineConfig(cache_size=4096))
        generator = ExampleGenerator(ctx, pool, engine=engine)
        generator.generate_many(sample)  # warm the cache
        cached = generator.generate_many(sample)  # replayed from cache
        assert cached == plain
        assert engine.telemetry.counter("cache_hits") > 0


class TestServiceBusConcurrency:
    def test_concurrent_calls_keep_sequence_monotonic(self, ctx, pool, catalog):
        bus = ServiceBus(ctx)
        published = {}
        targets = []
        for module in catalog[:12]:
            address = bus.publish(module)
            published[module.module_id] = address
            value = pool.get_instance(
                module.inputs[0].concept, module.inputs[0].structural
            )
            if value is not None and len(module.inputs) == 1:
                targets.append((address, {module.inputs[0].name: value}))
        assert len(targets) >= 4

        def hammer(target):
            address, bindings = target
            for _ in range(25):
                bus.call(address, bindings)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in targets]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log = bus.log()
        assert len(log) == 25 * len(targets)
        assert [record.sequence for record in log] == list(range(len(log)))

    def test_duration_ms_is_recorded(self, ctx, pool, catalog):
        module = catalog[0]
        bus = ServiceBus(ctx)
        address = bus.publish(module)
        value = pool.get_instance(
            module.inputs[0].concept, module.inputs[0].structural
        )
        bus.call(address, {module.inputs[0].name: value})
        (record,) = bus.log()
        assert record.duration_ms > 0.0
        assert bus.total_service_time_ms() == pytest.approx(record.duration_ms)

    def test_bus_accepts_a_custom_invoker(self, ctx, pool, catalog):
        class CountingInvoker(DirectInvoker):
            calls = 0

            def invoke(self, module, ctx, bindings):
                CountingInvoker.calls += 1
                return super().invoke(module, ctx, bindings)

        module = catalog[0]
        bus = ServiceBus(ctx, invoker=CountingInvoker())
        address = bus.publish(module)
        value = pool.get_instance(
            module.inputs[0].concept, module.inputs[0].structural
        )
        bus.call(address, {module.inputs[0].name: value})
        assert CountingInvoker.calls == 1
