"""Tests of the load harness: profile validation, exact percentiles,
and full runs against in-process servers — including the two 429
flavors the report must keep apart (admission shed vs tenant
rate-limited), the Retry-After contract, and the keep-alive race rule
(a reset on a reused idle socket is retried once, not misreported as a
client-visible failure)."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.serve import (
    AnnotationServer,
    AnnotationService,
    LoadProfile,
    LoadReport,
    ServeConfig,
    run_loadgen,
)
from repro.serve.loadgen import _percentile

MODULES = ("xf.uniprot_to_fasta", "xf.uniprot_to_xml")


@pytest.fixture(scope="module")
def service():
    return AnnotationService(memoize=True)


class TestLoadProfile:
    def test_validation(self):
        with pytest.raises(ValueError, match="clients"):
            LoadProfile(clients=0)
        with pytest.raises(ValueError, match="clients"):
            LoadProfile(requests_per_client=0)
        with pytest.raises(ValueError, match="tenants"):
            LoadProfile(tenants=0)
        with pytest.raises(ValueError, match="unknown endpoints"):
            LoadProfile(mix={"teleport": 1.0})
        with pytest.raises(ValueError, match="positive total weight"):
            LoadProfile(mix={})
        with pytest.raises(ValueError, match="positive total weight"):
            LoadProfile(mix={"generate": 0.0})

    def test_post_mix_requires_module_ids(self, service):
        with AnnotationServer(service, ServeConfig(rate=None)) as server:
            with pytest.raises(ValueError, match="module_ids"):
                run_loadgen(
                    server.host,
                    server.port,
                    LoadProfile(clients=1, requests_per_client=1),
                )


class TestPercentile:
    def test_nearest_rank_is_exact(self):
        ordered = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert _percentile(ordered, 0.50) == 5.0
        assert _percentile(ordered, 0.95) == 10.0
        assert _percentile(ordered, 0.99) == 10.0
        assert _percentile([42.0], 0.5) == 42.0
        assert _percentile([], 0.5) == 0.0


class TestRunLoadgen:
    def test_clean_run_accounts_every_request(self, service):
        config = ServeConfig(max_inflight=16, max_queue=128, rate=None)
        with AnnotationServer(service, config) as server:
            profile = LoadProfile(
                clients=8,
                requests_per_client=4,
                mix={"generate": 0.5, "modules": 0.3, "healthz": 0.2},
                module_ids=MODULES,
                tenants=2,
                timeout=30.0,
            )
            report = run_loadgen(server.host, server.port, profile)
        assert isinstance(report, LoadReport)
        assert report.total == 8 * 4
        assert report.n_5xx == 0
        assert report.transport_errors == 0
        assert report.shed == 0
        assert report.rate_limited == 0
        assert report.missing_retry_after == 0
        assert report.n_2xx == report.total
        assert report.throughput_rps > 0
        latency = report.latency_ms
        assert latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]
        rendered = report.render()
        assert "8 clients" in rendered
        assert "p95" in rendered
        as_dict = report.to_dict()
        assert as_dict["total_requests"] == report.total
        assert as_dict["by_status"]["200"] + as_dict["by_status"].get("201", 0) == 32

    def test_same_profile_same_request_sequence(self, service):
        """A seeded profile is reproducible request-for-request."""
        config = ServeConfig(max_inflight=16, max_queue=128, rate=None)
        profile = LoadProfile(
            clients=4,
            requests_per_client=6,
            mix={"modules": 0.5, "healthz": 0.5},
            tenants=2,
        )
        with AnnotationServer(service, config) as server:
            first = run_loadgen(server.host, server.port, profile)
            second = run_loadgen(server.host, server.port, profile)
        assert first.by_status == second.by_status
        assert first.total == second.total

    def test_saturation_is_classified_as_shed(self):
        # 8 simultaneous clients vs 1 slot, no queue, slow providers:
        # most of the wavefront must be shed — and every shed answer
        # must carry Retry-After.
        service = AnnotationService(memoize=False, latency_ms=20.0)
        config = ServeConfig(
            max_inflight=1, max_queue=0, queue_timeout=0.01, rate=None
        )
        with AnnotationServer(service, config) as server:
            profile = LoadProfile(
                clients=8,
                requests_per_client=2,
                mix={"generate": 1.0},
                module_ids=MODULES[:1],
                timeout=30.0,
            )
            report = run_loadgen(server.host, server.port, profile)
            snapshot = server.http_snapshot()
        assert report.n_5xx == 0
        assert report.shed > 0
        assert report.rate_limited == 0
        assert report.missing_retry_after == 0
        assert snapshot["shed_total"] == report.shed
        assert report.by_status[429] == report.shed

    def test_rate_limiting_is_classified_per_tenant(self, service):
        # A near-zero refill rate: each tenant gets its burst and then
        # nothing but 429 "rate-limited" for the rest of the run.
        config = ServeConfig(max_inflight=16, max_queue=128, rate=0.001, burst=2)
        with AnnotationServer(service, config) as server:
            profile = LoadProfile(
                clients=4,
                requests_per_client=4,
                mix={"modules": 1.0},
                tenants=2,
                timeout=30.0,
            )
            report = run_loadgen(server.host, server.port, profile)
        assert report.n_5xx == 0
        assert report.shed == 0
        assert report.rate_limited > 0
        assert report.missing_retry_after == 0
        assert set(report.rate_limited_by_tenant) <= {"tenant-000", "tenant-001"}
        assert sum(report.rate_limited_by_tenant.values()) == report.rate_limited
        # 2 tenants x burst 2 = 4 admitted, everything else limited.
        assert report.rate_limited == report.total - 4


class _HangUpServer(threading.Thread):
    """A raw-socket HTTP/1.1 server distilling the keep-alive race.

    ``answer_first=True``: every connection gets exactly one valid
    keep-alive response, then the server hangs up without warning — the
    draining-replica behavior.  ``answer_first=False``: every connection
    is closed before any response — a genuinely broken server.
    """

    def __init__(self, answer_first=True):
        super().__init__(daemon=True)
        self.answer_first = answer_first
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self._halt = threading.Event()

    def run(self):
        while not self._halt.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            with connection:
                if not self.answer_first:
                    continue  # immediate hang-up, no response
                try:
                    connection.recv(65536)
                    connection.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: 2\r\n\r\n{}"
                    )
                except OSError:
                    pass
                # No Connection: close was advertised — the client will
                # reuse the socket and discover the hang-up only on its
                # next request.

    def close(self):
        self._halt.set()
        self._listener.close()


class TestKeepAliveRace:
    def test_reset_on_reused_socket_is_retried_not_counted(self):
        # 4 requests against a server that hangs up after every answer:
        # requests 2..4 each hit a dead reused socket, retry once on a
        # fresh connection, and succeed.  Client-visible failures: zero.
        server = _HangUpServer(answer_first=True)
        server.start()
        try:
            profile = LoadProfile(
                clients=1, requests_per_client=4,
                mix={"healthz": 1.0}, timeout=10.0,
            )
            report = run_loadgen(server.host, server.port, profile)
        finally:
            server.close()
        assert report.by_status == {200: 4}
        assert report.transport_errors == 0
        assert report.stale_retries == 3
        assert "3 stale-connection retries" in report.render()
        assert report.to_dict()["stale_retries"] == 3

    def test_failure_on_fresh_connection_is_a_real_transport_error(self):
        # A server that never answers: every failure happens on a fresh
        # connection, so the retry rule must not excuse any of them.
        server = _HangUpServer(answer_first=False)
        server.start()
        try:
            profile = LoadProfile(
                clients=1, requests_per_client=3,
                mix={"healthz": 1.0}, timeout=10.0,
            )
            report = run_loadgen(server.host, server.port, profile)
        finally:
            server.close()
        assert report.by_status == {}
        assert report.transport_errors == 3
        assert report.stale_retries == 0
