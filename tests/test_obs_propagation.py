"""Tests of cross-process trace propagation: W3C traceparent parsing,
trace-id normalization (the cardinality bound), extraction precedence
over HTTP headers, the deterministic campaign trace id, and the ambient
propagation scope stamping spans."""

from __future__ import annotations

import pytest

from repro.obs.propagation import (
    TRACE_ID_MAX_LEN,
    TraceContext,
    TraceIdGenerator,
    campaign_trace_id,
    extract_trace_context,
    normalize_trace_id,
    parse_traceparent,
    propagation_scope,
)
from repro.obs.tracing import Tracer


# ----------------------------------------------------------------------
# normalize_trace_id — the cardinality bound
# ----------------------------------------------------------------------
class TestNormalizeTraceId:
    def test_lowercases_and_keeps_hex(self):
        assert normalize_trace_id("DEADbeef42") == "deadbeef42"

    def test_strips_non_hex_characters(self):
        assert normalize_trace_id("abc-123_ghz!") == "abc123"

    def test_truncates_to_the_bound(self):
        oversized = "a" * 500
        normalized = normalize_trace_id(oversized)
        assert len(normalized) == TRACE_ID_MAX_LEN

    def test_no_hex_at_all_is_unusable(self):
        assert normalize_trace_id("zzz-???") == ""
        assert normalize_trace_id("") == ""
        assert normalize_trace_id(None) == ""

    def test_whitespace_is_stripped(self):
        assert normalize_trace_id("  abc123  ") == "abc123"


# ----------------------------------------------------------------------
# TraceIdGenerator
# ----------------------------------------------------------------------
class TestTraceIdGenerator:
    def test_trace_ids_are_32_hex_and_unique(self):
        generator = TraceIdGenerator()
        ids = {generator.trace_id() for _ in range(100)}
        assert len(ids) == 100
        for trace in ids:
            assert len(trace) == 32
            assert trace == normalize_trace_id(trace)

    def test_span_ids_are_16_hex(self):
        generator = TraceIdGenerator()
        span = generator.span_id()
        assert len(span) == 16
        assert span == normalize_trace_id(span)


# ----------------------------------------------------------------------
# traceparent wire form
# ----------------------------------------------------------------------
class TestTraceparent:
    def test_roundtrip(self):
        context = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8)
        parsed = parse_traceparent(context.to_traceparent())
        assert parsed == context

    def test_unsampled_flag_roundtrips(self):
        context = TraceContext(
            trace_id="ab" * 16, parent_span_id="cd" * 8, sampled=False
        )
        assert context.to_traceparent().endswith("-00")
        assert parse_traceparent(context.to_traceparent()).sampled is False

    def test_short_trace_id_is_zero_padded(self):
        value = TraceContext(trace_id="abc", parent_span_id="d").to_traceparent()
        version, trace, parent, flags = value.split("-")
        assert (len(version), len(trace), len(parent), len(flags)) == (
            2, 32, 16, 2,
        )
        assert trace.endswith("abc") and set(trace[:-3]) == {"0"}

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "garbage",
            "00-short-cdcdcdcdcdcdcdcd-01",
            "00-" + "ab" * 16 + "-short-01",
            "00-" + "0" * 32 + "-cdcdcdcdcdcdcdcd-01",  # all-zero trace
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # all-zero parent
            "ff-" + "ab" * 16 + "-cdcdcdcdcdcdcdcd-01",  # forbidden version
            "00-" + "gg" * 16 + "-cdcdcdcdcdcdcdcd-01",  # non-hex trace
            "00-" + "ab" * 16 + "-cdcdcdcdcdcdcdcd-xx",  # non-hex flags
        ],
    )
    def test_malformed_values_are_rejected(self, value):
        assert parse_traceparent(value) is None

    def test_future_version_with_same_layout_is_tolerated(self):
        parsed = parse_traceparent(
            "01-" + "ab" * 16 + "-cdcdcdcdcdcdcdcd-01-extrafield"
        )
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16


# ----------------------------------------------------------------------
# TraceContext dict form (the spawn boundary)
# ----------------------------------------------------------------------
class TestTraceContextDict:
    def test_roundtrip(self):
        context = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8)
        assert TraceContext.from_dict(context.to_dict()) == context

    def test_missing_dict_passes_through(self):
        assert TraceContext.from_dict(None) is None
        assert TraceContext.from_dict({}) is None

    def test_from_dict_normalizes_hostile_ids(self):
        rebuilt = TraceContext.from_dict(
            {"trace_id": "ABC-!!", "parent_span_id": "zz"}
        )
        assert rebuilt.trace_id == "abc"
        assert rebuilt.parent_span_id == ""

    def test_child_keeps_the_trace(self):
        context = TraceContext(trace_id="ab" * 16)
        child = context.child("EF" * 8)
        assert child.trace_id == context.trace_id
        assert child.parent_span_id == "ef" * 8


# ----------------------------------------------------------------------
# Extraction precedence
# ----------------------------------------------------------------------
class TestExtractTraceContext:
    def test_valid_traceparent_wins(self):
        headers = {
            "traceparent": "00-" + "ab" * 16 + "-cdcdcdcdcdcdcdcd-01",
            "X-Trace-Id": "1234",
        }
        context, propagated = extract_trace_context(headers)
        assert propagated is True
        assert context.trace_id == "ab" * 16
        assert context.parent_span_id == "cd" * 8

    def test_x_trace_id_is_the_fallback(self):
        context, propagated = extract_trace_context({"X-Trace-Id": "ABC123"})
        assert propagated is True
        assert context == TraceContext(trace_id="abc123")

    def test_malformed_traceparent_falls_back_to_x_trace_id(self):
        headers = {"traceparent": "garbage", "X-Trace-Id": "beef"}
        context, propagated = extract_trace_context(headers)
        assert propagated is True
        assert context.trace_id == "beef"

    def test_unusable_client_id_gets_a_generated_one(self):
        context, propagated = extract_trace_context({"X-Trace-Id": "???"})
        assert propagated is False
        assert len(context.trace_id) == 32

    def test_no_headers_generates(self):
        generator = TraceIdGenerator()
        context, propagated = extract_trace_context({}, generator)
        assert propagated is False
        assert len(context.trace_id) == 32

    def test_oversized_client_id_is_truncated_not_rejected(self):
        context, propagated = extract_trace_context(
            {"X-Trace-Id": "a" * 1000}
        )
        assert propagated is True
        assert len(context.trace_id) == TRACE_ID_MAX_LEN


# ----------------------------------------------------------------------
# Campaign trace ids
# ----------------------------------------------------------------------
class TestCampaignTraceId:
    def test_deterministic_across_processes(self):
        # Derived, not minted: run and resume stamp the same id.
        assert campaign_trace_id("nightly") == campaign_trace_id("nightly")

    def test_distinct_campaigns_get_distinct_traces(self):
        assert campaign_trace_id("a") != campaign_trace_id("b")

    def test_shape_is_a_normalized_32_hex_id(self):
        trace = campaign_trace_id("nightly")
        assert len(trace) == 32
        assert trace == normalize_trace_id(trace)


# ----------------------------------------------------------------------
# The ambient scope
# ----------------------------------------------------------------------
class TestPropagationScope:
    def _root_span(self):
        tracer = Tracer()
        token = tracer.open_root({})
        tracer.close_root("m", token, "ok")
        return tracer.traces()[-1]

    def test_spans_carry_the_propagated_identity(self):
        context = TraceContext(trace_id="ab" * 16, parent_span_id="cd" * 8)
        with propagation_scope(context, "shard-worker", process_id=3, worker=7):
            span = self._root_span()
        assert span.attributes["trace_id"] == "ab" * 16
        assert span.attributes["process_role"] == "shard-worker"
        assert span.attributes["process_id"] == 3
        assert span.attributes["worker"] == 7
        assert span.attributes["parent_span_id"] == "cd" * 8

    def test_none_context_is_a_no_op(self):
        with propagation_scope(None, "replica"):
            span = self._root_span()
        assert "trace_id" not in span.attributes

    def test_scope_is_bounded(self):
        context = TraceContext(trace_id="ab" * 16)
        with propagation_scope(context, "replica"):
            pass
        span = self._root_span()
        assert "trace_id" not in span.attributes
