"""End-to-end integration tests: the reproduction reproduces the paper.

These tests exercise the same code path as ``python -m
repro.experiments.runner`` and pin every table and figure to the paper's
numbers (with the two documented deviations: Table 1's internally
inconsistent 236 is 234 here, and the 0.47 conciseness bucket sits at
0.45).
"""

import pytest

from repro.experiments.coverage import run_coverage
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure8 import run_figure8
from repro.experiments.runner import run_all
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3


class TestCoverage:
    def test_all_input_partitions_covered(self, setup):
        result = run_coverage(setup)
        assert result.n_full_input_coverage == result.n_modules == 252

    def test_output_coverage_tail_is_19(self, setup):
        result = run_coverage(setup)
        assert result.n_full_output_coverage == 233
        assert result.n_output_shortfall == 19

    def test_paper_named_exceptions_present(self, setup):
        result = run_coverage(setup)
        for name in ("get_genes_by_enzyme", "link", "binfo"):
            assert name in result.shortfall_module_names


class TestTable1:
    def test_completeness_histogram(self, setup):
        rows = run_table1(setup).as_dict()
        assert rows == {1.0: 234, 0.75: 8, 0.625: 4, 0.6: 4, 0.5: 2}

    def test_histogram_sums_to_population(self, setup):
        result = run_table1(setup)
        assert sum(count for _v, count in result.rows) == 252


class TestTable2:
    def test_conciseness_histogram(self, setup):
        rows = run_table2(setup).as_dict()
        assert rows == {
            1.0: 192, 0.5: 32, 0.45: 7, 0.4: 4, 0.33: 4, 0.2: 8, 0.17: 4, 0.1: 1,
        }

    def test_majority_concise(self, setup):
        result = run_table2(setup)
        assert result.as_dict()[1.0] / result.n_modules == pytest.approx(
            192 / 252
        )


class TestTable3:
    def test_category_census(self, setup):
        counts = run_table3(setup).counts
        assert counts == {
            "format transformation": 53,
            "data retrieval": 51,
            "mapping identifiers": 62,
            "filtering": 27,
            "data analysis": 59,
        }

    def test_shim_share_is_two_thirds(self, setup):
        assert run_table3(setup).shim_fraction == pytest.approx(166 / 252)


class TestFigure5:
    def test_user1_exact(self, setup):
        result = run_figure5(setup)
        name, without, with_examples = result.series()[0]
        assert (name, without, with_examples) == ("user1", 47, 169)

    def test_three_users_similar(self, setup):
        result = run_figure5(setup)
        for _name, without, with_examples in result.series():
            assert 40 <= without <= 55
            assert 160 <= with_examples <= 175


class TestFigure8:
    def test_matching_population(self, setup):
        result = run_figure8(setup)
        assert result.n_unavailable == 72
        assert result.n_equivalent == 16
        assert result.n_overlapping == 23
        assert result.n_none == 33

    def test_repair_campaign(self, setup):
        result = run_figure8(setup)
        assert result.n_repaired_total == 334
        assert result.n_fully_repaired == 261
        assert result.n_partly_repaired == 73
        assert result.n_via_equivalent == 321
        assert result.n_via_overlapping == 13

    def test_all_full_repairs_validated(self, setup):
        result = run_figure8(setup)
        assert result.n_validated == result.n_fully_repaired

    def test_about_half_the_repository_broke(self, setup):
        result = run_figure8(setup)
        total = len(setup.repository.workflows)
        assert total == 3000
        assert 0.45 <= result.n_broken / total <= 0.55


class TestRunner:
    def test_full_report_renders(self, setup):
        report = run_all(setup)
        assert "Table 1" in report
        assert "Table 2" in report
        assert "Table 3" in report
        assert "Figure 5" in report
        assert "Figure 8" in report
        assert "252/252" in report

    def test_pool_mixes_harvest_and_curation(self, setup):
        assert setup.n_harvested > 0
        assert len(setup.pool) > setup.n_harvested
