"""Tests of the sampling profiler: sampling a busy thread, the stack
bound, environment-driven arming, fleet profile merging, and the top /
collapsed / flame renderings."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profiler import (
    PROFILE_EVENT_KIND,
    SamplingProfiler,
    maybe_start_profiler,
    merge_profiles,
    render_collapsed,
    render_flamegraph,
    render_top,
    top_frames,
)


def _burn(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(500))


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
class TestSampling:
    def test_samples_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_burn, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = SamplingProfiler(hz=200)
            with profiler:
                time.sleep(0.25)
        finally:
            stop.set()
            worker.join()
        profile = profiler.to_dict()
        assert profile["samples"] > 0
        assert profile["duration_s"] > 0.1
        assert profile["stacks"]
        # The busy loop must appear somewhere in the collapsed stacks.
        assert any("_burn" in key for key in profile["stacks"])

    def test_samples_are_root_first(self):
        stop = threading.Event()
        worker = threading.Thread(target=_burn, args=(stop,), daemon=True)
        worker.start()
        try:
            with SamplingProfiler(hz=200) as profiler:
                time.sleep(0.2)
        finally:
            stop.set()
            worker.join()
        burn_keys = [
            key for key in profiler.to_dict()["stacks"] if "_burn" in key
        ]
        assert burn_keys
        for key in burn_keys:
            frames = key.split(";")
            # The leaf (deepest frame) is last — FlameGraph order.
            assert "_burn" in frames[-1] or "_burn" in frames[-2]

    def test_stack_bound_drops_not_grows(self):
        profiler = SamplingProfiler(hz=1000, max_stacks=1)
        profiler._stacks["existing.stack"] = 5
        # Simulate the bookkeeping the sampler applies past the bound.
        with profiler._lock:
            profiler.samples += 1
            if len(profiler._stacks) >= profiler.max_stacks:
                profiler.dropped_samples += 1
        profile = profiler.to_dict()
        assert len(profile["stacks"]) == 1
        assert profile["dropped_samples"] == 1

    def test_double_start_is_an_error(self):
        profiler = SamplingProfiler(hz=100).start()
        try:
            with pytest.raises(RuntimeError):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler(hz=100).start()
        first = profiler.stop()
        second = profiler.stop()
        assert second["samples"] == first["samples"]

    @pytest.mark.parametrize("hz", [0, -1])
    def test_non_positive_hz_rejected(self, hz):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=hz)


# ----------------------------------------------------------------------
# Environment arming
# ----------------------------------------------------------------------
class TestMaybeStart:
    def test_unset_means_none(self):
        assert maybe_start_profiler({}) is None

    @pytest.mark.parametrize("raw", ["", "0", "-5", "garbage"])
    def test_unusable_values_mean_none(self, raw):
        assert maybe_start_profiler({"REPRO_PROFILE_HZ": raw}) is None

    def test_positive_rate_starts_a_profiler(self):
        profiler = maybe_start_profiler({"REPRO_PROFILE_HZ": "100"})
        assert profiler is not None
        try:
            assert profiler.hz == 100.0
            assert profiler._thread is not None
        finally:
            profiler.stop()

    def test_event_kind_is_stable(self):
        # Journal rows are keyed on this; changing it orphans profiles.
        assert PROFILE_EVENT_KIND == "profile"


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------
class TestMergeProfiles:
    def test_stacks_sum_and_duration_takes_max(self):
        merged = merge_profiles(
            [
                {"hz": 50, "samples": 10, "dropped_samples": 1,
                 "duration_s": 2.0, "stacks": {"a;b": 6, "a;c": 4}},
                {"hz": 50, "samples": 5, "dropped_samples": 0,
                 "duration_s": 3.0, "stacks": {"a;b": 5}},
            ]
        )
        assert merged["samples"] == 15
        assert merged["dropped_samples"] == 1
        assert merged["stacks"] == {"a;b": 11, "a;c": 4}
        # Processes run concurrently: wall time is the max, not the sum.
        assert merged["duration_s"] == 3.0
        assert merged["processes"] == 2

    def test_falsy_profiles_are_skipped(self):
        merged = merge_profiles([None, {}, {"samples": 3, "stacks": {"x": 3}}])
        assert merged["processes"] == 1
        assert merged["samples"] == 3

    def test_empty_merge_is_well_formed(self):
        merged = merge_profiles([])
        assert merged["samples"] == 0
        assert merged["stacks"] == {}


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
PROFILE = {
    "hz": 50.0,
    "samples": 10,
    "dropped_samples": 0,
    "duration_s": 1.0,
    "stacks": {"main;work;hot": 7, "main;work;cold": 2, "main;idle": 1},
}


class TestRendering:
    def test_top_frames_self_vs_total(self):
        rows = {frame: (own, total) for frame, own, total in top_frames(PROFILE)}
        assert rows["hot"] == (7, 7)
        assert rows["work"] == (0, 9)
        assert rows["main"] == (0, 10)

    def test_render_top_is_ranked_by_self_time(self):
        text = render_top(PROFILE, limit=5)
        assert "10 samples @ 50 Hz" in text
        lines = [line for line in text.splitlines() if "%" in line and "frame" not in line]
        assert "hot" in lines[0]

    def test_render_collapsed_roundtrips_the_stacks(self):
        text = render_collapsed(PROFILE)
        assert "main;work;hot 7" in text.splitlines()[0]
        assert len(text.splitlines()) == 3

    def test_flamegraph_nests_and_prunes(self):
        text = render_flamegraph(PROFILE, min_percent=15.0)
        assert "main  100.0% (10)" in text
        assert "hot  70.0% (7)" in text
        # cold (20%) survives; idle (10%) is pruned into "...".
        assert "cold" in text
        assert "idle" not in text
        assert "..." in text

    def test_flamegraph_with_no_samples(self):
        assert render_flamegraph({"stacks": {}}) == "(no samples)"
