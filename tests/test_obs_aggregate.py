"""Tests of fleet aggregation: the serve-state span table, per-replica
stats journaling, cross-journal span collection, hop-grouped fleet trace
rendering, the HTTP-snapshot fold, the unified MetricsAggregator, and
the merge_stats_snapshots edge cases (empty input, disjoint histogram
buckets, breaker-state conflicts, mixed snapshot schemas)."""

from __future__ import annotations

import json

import pytest

from repro.engine.telemetry import merge_stats_snapshots
from repro.obs.aggregate import (
    MetricsAggregator,
    collect_campaign_spans,
    collect_fleet_spans,
    collect_serve_spans,
    merge_http_snapshots,
    render_fleet_trace,
    span_trace_id,
    spans_for_trace,
    trace_ids,
)
from repro.obs.tracing import Span
from repro.serve.state import ServeStateStore

TRACE = "ab" * 16


def _span_dict(name="invoke", module_id="m1", start_ms=1.0, trace=TRACE,
               role=None, process=None, **attrs):
    attributes = dict(attrs)
    if trace is not None:
        attributes["trace_id"] = trace
    if role is not None:
        attributes["process_role"] = role
    if process is not None:
        attributes["process_id"] = process
    return {
        "name": name,
        "module_id": module_id,
        "start_ms": start_ms,
        "duration_ms": 2.5,
        "outcome": "ok",
        "attributes": attributes,
    }


# ----------------------------------------------------------------------
# The serve-state span + stats tables
# ----------------------------------------------------------------------
class TestServeSpanStore:
    def test_spans_roundtrip_with_replica_annotation(self, tmp_path):
        store = ServeStateStore(tmp_path / "s.db")
        try:
            store.record_span(0, _span_dict(module_id="a"))
            store.record_span(1, _span_dict(module_id="b"))
            rows = store.spans()
            assert [row["_replica"] for row in rows] == [0, 1]
            assert [row["module_id"] for row in rows] == ["a", "b"]
            assert store.span_count() == 2
        finally:
            store.close()

    def test_spans_filter_by_replica_and_module(self, tmp_path):
        store = ServeStateStore(tmp_path / "s.db")
        try:
            store.record_span(0, _span_dict(module_id="a"))
            store.record_span(1, _span_dict(module_id="a"))
            store.record_span(1, _span_dict(module_id="b"))
            assert len(store.spans(replica=1)) == 2
            assert len(store.spans(module_id="a")) == 2
            assert len(store.spans(replica=1, module_id="b")) == 1
        finally:
            store.close()

    def test_replica_stats_upsert(self, tmp_path):
        store = ServeStateStore(tmp_path / "s.db")
        try:
            store.record_replica_stats(0, {"counters": {"calls": 1}})
            store.record_replica_stats(0, {"counters": {"calls": 5}})
            store.record_replica_stats(1, {"counters": {"calls": 2}})
            stats = store.replica_stats()
            assert stats[0]["counters"]["calls"] == 5
            assert stats[1]["counters"]["calls"] == 2
        finally:
            store.close()

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "s.db"
        store = ServeStateStore(path)
        store.record_span(0, _span_dict())
        store.record_replica_stats(0, {"counters": {"calls": 3}})
        store.close()
        reopened = ServeStateStore(path)
        try:
            assert reopened.span_count() == 1
            assert reopened.replica_stats()[0]["counters"]["calls"] == 3
        finally:
            reopened.close()


# ----------------------------------------------------------------------
# Span collection
# ----------------------------------------------------------------------
class TestCollection:
    def test_serve_spans_are_stamped_with_replica_identity(self, tmp_path):
        store = ServeStateStore(tmp_path / "s.db")
        store.record_span(2, _span_dict())
        store.close()
        spans = collect_serve_spans(str(tmp_path / "s.db"))
        assert len(spans) == 1
        assert spans[0].attributes["process_role"] == "replica"
        assert spans[0].attributes["process_id"] == 2

    def test_missing_file_collects_nothing(self, tmp_path):
        assert collect_serve_spans(str(tmp_path / "nope.db")) == []
        assert collect_campaign_spans(str(tmp_path / "nope.db"), "c") == []
        assert collect_fleet_spans() == []

    def test_campaign_journal_without_serve_state_is_not_mutated(self, tmp_path):
        from repro.campaign.journal import CampaignJournal
        from repro.serve.state import has_serve_state

        path = tmp_path / "c.db"
        journal = CampaignJournal(path)
        journal.create("c", 1, ["m"], {})
        journal.close()
        assert collect_serve_spans(str(path)) == []
        # The collector must not have grafted serve tables onto it.
        assert not has_serve_state(str(path))

    def test_unknown_campaign_collects_nothing(self, tmp_path):
        from repro.campaign.journal import CampaignJournal

        path = tmp_path / "c.db"
        CampaignJournal(path).close()
        assert collect_campaign_spans(str(path), "ghost") == []


# ----------------------------------------------------------------------
# Trace selection + rendering
# ----------------------------------------------------------------------
class TestFleetTrace:
    def _spans(self):
        return [
            Span.from_dict(_span_dict(role="replica", process=0)),
            Span.from_dict(_span_dict(role="replica", process=1)),
            Span.from_dict(_span_dict(role="shard-worker", process=0)),
            Span.from_dict(_span_dict(trace="ff" * 16, role="replica",
                                      process=0)),
            Span.from_dict(_span_dict(trace=None, role="replica", process=0)),
        ]

    def test_trace_ids_first_seen_order(self):
        assert trace_ids(self._spans()) == [TRACE, "ff" * 16]

    def test_spans_for_trace_selects_exactly(self):
        selected = spans_for_trace(TRACE, self._spans())
        assert len(selected) == 3

    def test_http_trace_id_is_an_alias(self):
        span = Span.from_dict(_span_dict(trace=None, http_trace_id="beef"))
        assert span_trace_id(span) == "beef"

    def test_render_groups_by_process_hop(self):
        text = render_fleet_trace(TRACE, self._spans())
        assert "3 span tree(s)" in text
        assert "3 process hop(s)" in text
        # Replicas render before shard workers, each hop labelled.
        assert text.index("[replica 0]") < text.index("[replica 1]")
        assert text.index("[replica 1]") < text.index("[shard-worker 0]")

    def test_render_slowest_is_a_flat_ranking(self):
        spans = self._spans()
        spans[2].duration_ms = 99.0
        text = render_fleet_trace(TRACE, spans, slowest=2)
        lines = text.splitlines()
        assert "slowest 2 span tree(s)" in text
        ranked = [line for line in lines if "ms" in line and "m1" in line]
        assert "shard-worker-0" in ranked[0]

    def test_render_limit_caps_per_hop(self):
        spans = [
            Span.from_dict(_span_dict(role="replica", process=0, start_ms=i))
            for i in range(5)
        ]
        text = render_fleet_trace(TRACE, spans, limit=2)
        assert "... 3 more span tree(s)" in text

    def test_render_empty_trace(self):
        text = render_fleet_trace("nothere", [])
        assert "0 span tree(s)" in text


# ----------------------------------------------------------------------
# merge_http_snapshots
# ----------------------------------------------------------------------
def _http_snapshot(total=10, shed=1, tenant_allowed=5):
    return {
        "requests": [
            {"endpoint": "/v1/generate", "method": "POST", "status": 200,
             "count": total}
        ],
        "requests_total": total,
        "status_classes": {"2xx": total, "3xx": 0, "4xx": 0, "5xx": 0},
        "latency": {"count": total, "sum_ms": 10.0 * total, "max_ms": 20.0,
                    "cumulative_buckets": [[10.0, total], [25.0, total]]},
        "shed_total": shed,
        "rate_limited_total": 0,
        "rate_limited_by_tenant": {"t1": 2},
        "deadline_exceeded_total": 0,
        "inflight": 1,
        "max_inflight": 8,
        "queue_depth": 0,
        "max_queue": 32,
        "admitted_total": total,
        "tenants": {"t1": {"allowed": tenant_allowed, "limited": 1}},
    }


class TestMergeHttpSnapshots:
    def test_counters_sum_and_requests_fold_by_key(self):
        merged = merge_http_snapshots([_http_snapshot(10), _http_snapshot(4)])
        assert merged["requests_total"] == 14
        assert merged["requests"] == [
            {"endpoint": "/v1/generate", "method": "POST", "status": 200,
             "count": 14}
        ]
        assert merged["status_classes"]["2xx"] == 14
        assert merged["shed_total"] == 2
        assert merged["latency"]["count"] == 14
        assert merged["replicas_reporting"] == 2

    def test_tenant_buckets_take_max_not_sum(self):
        # Fleet tenant buckets are store-backed and shared: each replica
        # reports the same durable row; summing would multiply it.
        merged = merge_http_snapshots(
            [_http_snapshot(tenant_allowed=5), _http_snapshot(tenant_allowed=7)]
        )
        assert merged["tenants"]["t1"]["allowed"] == 7
        # Per-tenant *rejections* are per-replica counters and do sum.
        assert merged["rate_limited_by_tenant"]["t1"] == 4

    def test_empty_and_falsy_snapshots_are_skipped(self):
        merged = merge_http_snapshots([{}, None, _http_snapshot(3)])
        assert merged["replicas_reporting"] == 1
        assert merged["requests_total"] == 3


# ----------------------------------------------------------------------
# The unified aggregator
# ----------------------------------------------------------------------
class TestMetricsAggregator:
    def test_snapshot_equals_the_manual_fold(self, tmp_path):
        """The digest check: the aggregator's engine section must be
        byte-identical to folding the journaled per-replica snapshots by
        hand with merge_stats_snapshots."""
        path = tmp_path / "s.db"
        store = ServeStateStore(path)
        per_replica = [
            {"counters": {"calls": 5, "ok": 5}, "n_events": 5,
             "max_events": 100, "dropped_events": 0},
            {"counters": {"calls": 3, "ok": 2}, "n_events": 3,
             "max_events": 100, "dropped_events": 1},
        ]
        for replica, stats in enumerate(per_replica):
            store.record_replica_stats(replica, stats)
        store.close()
        aggregator = MetricsAggregator(state_db=str(path))
        snapshot = aggregator.snapshot()
        expected = merge_stats_snapshots(per_replica)
        for section in ("counters", "latency", "n_events", "dropped_events"):
            assert json.dumps(snapshot[section], sort_keys=True) == json.dumps(
                expected[section], sort_keys=True
            )
        assert snapshot["fleet"]["replica_snapshots"] == 2

    def test_http_section_folds_only_when_reported(self, tmp_path):
        path = tmp_path / "s.db"
        store = ServeStateStore(path)
        store.record_replica_stats(0, {"counters": {}, "http": _http_snapshot(6)})
        store.close()
        snapshot = MetricsAggregator(state_db=str(path)).snapshot()
        assert snapshot["http"]["requests_total"] == 6
        assert snapshot["http"]["replicas_reporting"] == 1

    def test_no_sources_is_a_well_formed_empty_snapshot(self, tmp_path):
        snapshot = MetricsAggregator(
            state_db=str(tmp_path / "missing.db")
        ).snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["fleet"]["sources"] == 0

    def test_prometheus_rendering_works(self, tmp_path):
        path = tmp_path / "s.db"
        store = ServeStateStore(path)
        store.record_replica_stats(
            0,
            {"counters": {"calls": 2}, "n_events": 2, "max_events": 10,
             "dropped_events": 0},
        )
        store.close()
        text = MetricsAggregator(state_db=str(path)).to_prometheus()
        assert "repro_invocations_total" in text
        assert 'repro_engine_events_total{event="calls"} 2' in text


# ----------------------------------------------------------------------
# merge_stats_snapshots edge cases (the satellite)
# ----------------------------------------------------------------------
class TestMergeStatsEdgeCases:
    def test_empty_list_is_a_well_formed_zero_snapshot(self):
        merged = merge_stats_snapshots([])
        assert merged["counters"] == {}
        assert merged["n_events"] == 0
        assert merged["latency"]["count"] == 0
        assert "breaker" not in merged

    def test_falsy_snapshots_are_skipped(self):
        merged = merge_stats_snapshots([None, {}, {"counters": {"calls": 1}}])
        assert merged["counters"]["calls"] == 1

    def test_disjoint_histogram_buckets_absorb_exactly(self):
        # One all-fast worker, one all-slow: the buckets are disjoint
        # and the merged histogram must keep both populations.
        fast = {
            "counters": {},
            "latency": {"count": 4, "sum_ms": 0.2, "max_ms": 0.05,
                        "cumulative_buckets": [[0.05, 4]]},
        }
        slow = {
            "counters": {},
            "latency": {"count": 2, "sum_ms": 900.0, "max_ms": 600.0,
                        "cumulative_buckets": [
                            [0.05, 0], [0.1, 0], [0.25, 0], [0.5, 0],
                            [1.0, 0], [2.5, 0], [5.0, 0], [10.0, 0],
                            [25.0, 0], [50.0, 0], [100.0, 0], [250.0, 0],
                            [500.0, 1], [1000.0, 2],
                        ]},
        }
        merged = merge_stats_snapshots([fast, slow])
        assert merged["latency"]["count"] == 6
        assert merged["latency"]["max_ms"] == 600.0
        # p50 lands in the fast population, p95 in the slow one.
        assert merged["latency"]["p50_ms"] <= 0.05
        assert merged["latency"]["p95_ms"] >= 500.0

    def test_breaker_state_conflicts_take_the_worst(self):
        closed = {"counters": {}, "breaker": {"p": {
            "state": "closed", "consecutive_failures": 0, "times_opened": 0,
            "fast_failures": 0,
        }}}
        open_ = {"counters": {}, "breaker": {"p": {
            "state": "open", "consecutive_failures": 4, "times_opened": 1,
            "fast_failures": 7,
        }}}
        half = {"counters": {}, "breaker": {"p": {
            "state": "half-open", "consecutive_failures": 1, "times_opened": 2,
            "fast_failures": 3,
        }}}
        merged = merge_stats_snapshots([closed, open_, half])
        circuit = merged["breaker"]["p"]
        assert circuit["state"] == "open"
        assert circuit["consecutive_failures"] == 4
        assert circuit["times_opened"] == 3
        assert circuit["fast_failures"] == 10

    def test_mixed_schema_versions_merge(self):
        # An old-era snapshot (counters only) merges with a modern one
        # carrying sections the old one predates; unknown future
        # sections are ignored rather than crashing the fold.
        ancient = {"counters": {"calls": 1}}
        modern = {
            "counters": {"calls": 2},
            "n_events": 2,
            "max_events": 50,
            "dropped_events": 0,
            "cache": {"size": 1, "maxsize": 8, "hits": 1, "negative_hits": 0,
                      "misses": 1, "evictions": 0, "negative_expired": 0},
            "watchdog": {"budget_s": 1.0, "timeouts": 1,
                         "abandoned_in_flight": 0},
            "from_the_future": {"shiny": True},
        }
        merged = merge_stats_snapshots([ancient, modern])
        assert merged["counters"]["calls"] == 3
        assert merged["cache"]["hits"] == 1
        assert merged["watchdog"]["timeouts"] == 1
        assert "from_the_future" not in merged
