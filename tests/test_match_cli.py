"""The `repro-cli match` subcommand group."""

import json

import pytest

from repro.cli import build_parser, main


class TestMatchParser:
    def test_group_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match"])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match", "frobnicate"])


class TestMatchIndexCommand:
    def test_synthetic_build_reports_pruning(self, capsys):
        assert main(["match", "index", "--synthetic", "48", "--json"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["n_modules"] == 48
        assert payload["candidate_pairs"] < payload["exhaustive_pairs"]
        assert payload["stats"]["n_empty"] == 0

    def test_paper_build_with_limit(self, capsys):
        assert main(["match", "index", "--limit", "12"]) == 0
        out = capsys.readouterr().out
        assert "indexed 12 modules" in out
        assert "candidate pairs" in out

    def test_journaled_build_resumes(self, capsys, tmp_path):
        db = str(tmp_path / "match.sqlite")
        assert main(["match", "index", "--synthetic", "24", "--db", db]) == 0
        capsys.readouterr()
        # The second run resketches nothing (no progress lines on stderr).
        assert main(["match", "index", "--synthetic", "24", "--db", db]) == 0
        captured = capsys.readouterr()
        assert "sketched" not in captured.err
        assert "indexed 24 modules" in captured.out

    def test_bad_band_config_rejected(self, capsys):
        with pytest.raises(ValueError, match="divide"):
            main(["match", "index", "--synthetic", "8", "--bands", "7"])


class TestMatchCandidatesCommand:
    def test_exhaustive_matches_decayed_module(self, capsys):
        assert main([
            "match", "candidates", "old.get_kegg_gene_s", "--exhaustive",
        ]) == 0
        out = capsys.readouterr().out
        assert "equivalent" in out
        assert "ret.get_kegg_gene" in out

    def test_indexed_candidates_via_journal(self, capsys, tmp_path):
        db = str(tmp_path / "match.sqlite")
        assert main(["match", "index", "--db", db]) == 0
        capsys.readouterr()
        assert main([
            "match", "candidates", "old.get_kegg_gene_s", "--db", db,
        ]) == 0
        out = capsys.readouterr().out
        assert "index:" in out
        assert "pruned" in out
        assert "ret.get_kegg_gene" in out


class TestMatchRepairCommand:
    def test_synthetic_repair_round_trip(self, capsys):
        assert main([
            "match", "repair", "--synthetic", "64", "--json",
        ]) == 0
        out = capsys.readouterr().out
        assert "Indexed repair plan" in out
        assert "decay event:" in out
        payload = json.loads(out[out.index("{"):])
        assert payload["n_broken"] > 0
        assert payload["n_full"] > 0
        assert payload["matching"]["pruned_pairs"] > 0

    def test_decay_fraction_flag(self, capsys):
        assert main([
            "match", "repair", "--synthetic", "48",
            "--decay-fraction", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "providers down" in out
