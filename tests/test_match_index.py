"""Unit tests for the signature index: buckets, candidates, stats."""

import pytest

from repro.match import SignatureConfig, SignatureIndex, build_synthetic_catalog
from repro.match.synth import SyntheticCatalogConfig


@pytest.fixture(scope="module")
def world():
    return build_synthetic_catalog(SyntheticCatalogConfig(n_modules=48))


@pytest.fixture(scope="module")
def index(world):
    built = SignatureIndex()
    for module in world.modules:
        built.add_module(module, world.examples_by_id[module.module_id])
    return built


class TestIndexBasics:
    def test_len_and_contains(self, world, index):
        assert len(index) == len(world.modules)
        assert world.modules[0].module_id in index
        assert "no.such" not in index

    def test_module_ids_sorted(self, index):
        ids = index.module_ids()
        assert ids == sorted(ids)

    def test_entry_roundtrip(self, world, index):
        entry = index.entry(world.modules[0].module_id)
        assert entry is not None
        assert entry.shape == (1, 1)
        assert index.entry("no.such") is None

    def test_candidates_of_unknown_module_raises(self, index):
        with pytest.raises(KeyError):
            index.candidates("no.such")

    def test_candidates_never_include_self(self, index):
        for module_id in index.module_ids():
            assert module_id not in index.candidates(module_id)

    def test_candidates_sorted_and_deterministic(self, index, world):
        module_id = world.modules[0].module_id
        first = index.candidates(module_id)
        assert first == sorted(first)
        assert first == index.candidates(module_id)


class TestFamilyRecall:
    def test_family_members_are_candidates(self, world, index):
        # The deterministic tiers (shared tokens / shared inputs)
        # guarantee every same-family pair survives pruning.
        for module in world.modules:
            members = set(world.family_members(module.module_id))
            found = set(index.candidates(module.module_id))
            assert members <= found, (
                f"{module.module_id} lost family members {members - found}"
            )

    def test_pruning_actually_prunes(self, index):
        n = len(index)
        exhaustive = n * (n - 1) // 2
        assert len(index.candidate_pairs()) < exhaustive / 2


class TestRemoveAndReplace:
    def test_remove_drops_module(self, world):
        built = SignatureIndex()
        for module in world.modules:
            built.add_module(module, world.examples_by_id[module.module_id])
        victim = world.modules[0].module_id
        built.remove(victim)
        assert victim not in built
        for module_id in built.module_ids():
            assert victim not in built.candidates(module_id)

    def test_remove_is_idempotent(self, world):
        built = SignatureIndex()
        built.add_module(world.modules[0],
                         world.examples_by_id[world.modules[0].module_id])
        built.remove("no.such")
        built.remove(world.modules[0].module_id)
        built.remove(world.modules[0].module_id)
        assert len(built) == 0

    def test_readd_replaces(self, world):
        built = SignatureIndex()
        module = world.modules[0]
        examples = world.examples_by_id[module.module_id]
        built.add_module(module, examples)
        built.add_module(module, examples)
        assert len(built) == 1

    def test_width_mismatch_rejected(self, world):
        built = SignatureIndex(config=SignatureConfig(width=32, bands=8))
        other = SignatureIndex()
        module = world.modules[0]
        entry = other.add_module(
            module, world.examples_by_id[module.module_id]
        )
        with pytest.raises(ValueError, match="width"):
            built.add(entry)


class TestEmptySignatures:
    def test_module_without_examples_never_buckets(self, world):
        built = SignatureIndex()
        for module in world.modules[:8]:
            built.add_module(module, world.examples_by_id[module.module_id])
        ghost = world.modules[9]
        built.add_module(ghost, [])
        assert built.candidates(ghost.module_id) == []
        for module_id in built.module_ids():
            assert ghost.module_id not in built.candidates(module_id) or (
                module_id == ghost.module_id
            )
        assert built.stats().n_empty == 1

    def test_empty_index_stats(self):
        stats = SignatureIndex().stats()
        assert stats.n_modules == 0
        assert stats.as_dict()["n_band_buckets"] == 0

    def test_singleton_index_has_no_pairs(self, world):
        built = SignatureIndex()
        module = world.modules[0]
        built.add_module(module, world.examples_by_id[module.module_id])
        assert built.candidate_pairs() == []
        assert built.candidates(module.module_id) == []


class TestStats:
    def test_stats_counts(self, world, index):
        stats = index.stats()
        assert stats.n_modules == len(world.modules)
        assert stats.n_empty == 0
        assert stats.n_band_buckets > 0
        assert stats.n_token_buckets > 0
        assert stats.n_input_buckets > 0
        assert stats.largest_token_bucket >= 2
