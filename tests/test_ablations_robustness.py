"""Tests for the ablation runners and seed robustness."""

import pytest

from repro.experiments.ablations import (
    run_depth_ablation,
    run_pool_ablation,
    run_redundancy_ablation,
    run_selection_ablation,
)
from repro.experiments.robustness import run_for_seed, run_robustness


class TestSelectionAblation:
    @pytest.fixture(scope="class")
    def result(self, setup):
        return run_selection_ablation(setup)

    def test_partition_selection_is_complete_everywhere_it_matters(self, result):
        assert result.partition_completeness > 0.95

    def test_partition_dominates_random_on_completeness(self, result):
        assert result.partition_completeness >= result.random_completeness

    def test_partition_selection_reaches_full_coverage(self, result):
        assert result.partition_input_coverage == 1.0

    def test_random_selection_misses_partitions(self, result):
        assert result.random_input_coverage < 1.0


class TestDepthAblation:
    @pytest.fixture(scope="class")
    def result(self, setup):
        return run_depth_ablation(setup)

    def test_completeness_monotone_in_depth(self, result):
        series = result.completeness_series()
        assert series == sorted(series)

    def test_full_depth_reaches_full_coverage(self, result):
        coverage, _completeness = result.by_depth["None"]
        assert coverage == 1.0

    def test_depth_zero_hurts_coverage(self, result):
        coverage, _completeness = result.by_depth["0"]
        assert coverage < 1.0


class TestPoolAblation:
    @pytest.fixture(scope="class")
    def result(self, setup):
        return run_pool_ablation(setup)

    def test_full_pool_realizes_everything(self, result):
        assert result.by_fraction[1.0] == 0

    def test_unrealized_monotone_in_pool_size(self, result):
        counts = [result.by_fraction[f] for f in (0.25, 0.5, 1.0)]
        assert counts == sorted(counts, reverse=True)


class TestRedundancyAblation:
    @pytest.fixture(scope="class")
    def result(self, setup):
        return run_redundancy_ablation(setup)

    def test_recall_decreases_with_threshold(self, result):
        recalls = [result.by_threshold[t][1] for t in sorted(result.by_threshold)]
        assert recalls == sorted(recalls, reverse=True)

    def test_operating_point(self, result):
        precision, recall = result.by_threshold[0.5]
        assert precision > 0.75
        assert recall > 0.9


class TestRobustness:
    def test_default_seed_has_paper_shape(self, setup):
        assert run_robustness(setup).same_shape_as_paper()

    @pytest.mark.slow
    def test_alternative_seed_keeps_the_shape(self):
        """A fresh universe and repository under a different seed still
        reproduce every qualitative finding."""
        result = run_for_seed(777)
        assert result.same_shape_as_paper()
