"""Tests of the tracing layer: claim-by-mark tree building, the
watchdog fork/join hand-off, ring-buffer accounting, and the span
shapes a wired engine actually produces."""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import pytest

from repro.core.generation import ExampleGenerator
from repro.engine import (
    BreakerPolicy,
    ConformancePolicy,
    EngineConfig,
    FaultPlan,
    InvocationEngine,
    RetryPolicy,
    WatchdogPolicy,
)
from repro.obs import LAYERS, Span, Tracer, TracingInvoker


class FakeClock:
    """A hand-cranked monotonic clock (seconds)."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


# ----------------------------------------------------------------------
# Claim-by-mark tree building
# ----------------------------------------------------------------------
class TestSpanTree:
    def test_nested_spans_become_children(self, tracer, clock):
        root = tracer.open_root({"provider": "EBI"})
        outer = tracer.open()
        inner = tracer.open()
        clock.tick(0.002)
        tracer.close("faults", "m1", inner)
        tracer.close("watchdog", "m1", outer)
        clock.tick(0.001)
        tracer.close_root("m1", root)

        (trace,) = tracer.traces()
        assert trace.name == "invoke"
        assert trace.module_id == "m1"
        assert trace.attributes == {"provider": "EBI"}
        assert trace.start_ms == pytest.approx(0.0)
        assert trace.duration_ms == pytest.approx(3.0)
        (watchdog,) = trace.children
        assert watchdog.name == "watchdog"
        assert watchdog.duration_ms == pytest.approx(2.0)
        (faults,) = watchdog.children
        assert faults.name == "faults"
        assert faults.children == ()

    def test_sequential_spans_become_siblings(self, tracer, clock):
        root = tracer.open_root({})
        first = tracer.open()
        clock.tick(0.001)
        tracer.close("faults", "m1", first)
        second = tracer.open()
        clock.tick(0.002)
        tracer.close("faults", "m1", second)
        tracer.close_root("m1", root)

        (trace,) = tracer.traces()
        assert [child.name for child in trace.children] == ["faults", "faults"]
        # Completion order and start order agree here; walk() sorts by
        # start time either way.
        starts = [span.start_ms for _, span in trace.walk()][1:]
        assert starts == sorted(starts)

    def test_start_times_share_one_origin(self, tracer, clock):
        first = tracer.open_root({})
        tracer.close_root("m1", first)
        clock.tick(0.010)
        second = tracer.open_root({})
        tracer.close_root("m2", second)

        one, two = tracer.traces()
        assert one.start_ms == pytest.approx(0.0)
        assert two.start_ms == pytest.approx(10.0)

    def test_consecutive_roots_do_not_leak_children(self, tracer):
        root = tracer.open_root({})
        layer = tracer.open()
        tracer.close("direct", "m1", layer)
        tracer.close_root("m1", root)
        root = tracer.open_root({})
        tracer.close_root("m2", root)

        one, two = tracer.traces()
        assert len(one.children) == 1
        assert two.children == ()


# ----------------------------------------------------------------------
# The wrapper
# ----------------------------------------------------------------------
class TestTracingInvoker:
    def test_outputs_pass_through_untouched(self, tracer):
        outputs = {"out": "value"}
        inner = SimpleNamespace(invoke=lambda module, ctx, bindings: outputs)
        wrapped = tracer.wrap("direct", inner)
        assert isinstance(wrapped, TracingInvoker)

        token = tracer.open_root({})
        module = SimpleNamespace(module_id="m1")
        assert wrapped.invoke(module, None, {}) is outputs
        tracer.close_root("m1", token)
        (trace,) = tracer.traces()
        (direct,) = trace.children
        assert direct.outcome == "ok" and direct.detail == ""

    def test_exceptions_cross_as_outcome_and_detail(self, tracer):
        def explode(module, ctx, bindings):
            raise ValueError("supply exploded")

        wrapped = tracer.wrap("direct", SimpleNamespace(invoke=explode))
        module = SimpleNamespace(module_id="m1")
        token = tracer.open_root({})
        with pytest.raises(ValueError, match="supply exploded"):
            wrapped.invoke(module, None, {})
        tracer.close_root("m1", token, "ValueError", "supply exploded")

        (trace,) = tracer.traces()
        assert trace.outcome == "ValueError"
        assert trace.detail == "supply exploded"
        (direct,) = trace.children
        assert direct.outcome == "ValueError"
        assert direct.detail == "supply exploded"


# ----------------------------------------------------------------------
# Root annotation
# ----------------------------------------------------------------------
class TestRootAttributes:
    def test_annotations_seal_into_the_exported_trace(self, tracer):
        token = tracer.open_root({"provider": "EBI"})
        tracer.annotate_root("cache", "miss")
        tracer.incr_root("retries")
        tracer.incr_root("retries")
        tracer.close_root("m1", token)

        (trace,) = tracer.traces()
        assert trace.attributes == {
            "provider": "EBI", "cache": "miss", "retries": 2,
        }

    def test_annotation_without_an_active_root_is_a_no_op(self, tracer):
        tracer.annotate_root("cache", "miss")
        tracer.incr_root("retries")
        assert tracer.traces() == ()


# ----------------------------------------------------------------------
# Ring buffer + sink
# ----------------------------------------------------------------------
class TestRing:
    def test_eviction_is_counted(self, clock):
        tracer = Tracer(clock=clock, max_traces=2)
        for module_id in ("m1", "m2", "m3"):
            tracer.close_root(module_id, tracer.open_root({}))

        snapshot = tracer.snapshot()
        assert snapshot["traces_kept"] == 2
        assert snapshot["dropped_traces"] == 1
        assert [trace.module_id for trace in tracer.traces()] == ["m2", "m3"]

    def test_traces_returns_fresh_trees(self, tracer):
        root = tracer.open_root({"provider": "EBI"})
        layer = tracer.open()
        tracer.close("direct", "m1", layer)
        tracer.close_root("m1", root)

        stolen = tracer.traces()[0]
        stolen.attributes["provider"] = "corrupted"
        stolen.children[0].outcome = "corrupted"
        clean = tracer.traces()[0]
        assert clean.attributes == {"provider": "EBI"}
        assert clean.children[0].outcome == "ok"

    def test_clear_keeps_counters(self, clock):
        tracer = Tracer(clock=clock, max_traces=1)
        tracer.close_root("m1", tracer.open_root({}))
        tracer.close_root("m2", tracer.open_root({}))
        tracer.clear()
        snapshot = tracer.snapshot()
        assert snapshot["traces_kept"] == 0
        assert snapshot["dropped_traces"] == 1

    def test_capacity_must_be_positive(self, clock):
        with pytest.raises(ValueError, match="max_traces"):
            Tracer(clock=clock, max_traces=0)

    def test_sink_sees_every_completed_root(self, clock):
        recorded = []
        tracer = Tracer(clock=clock, sink=recorded.append)
        token = tracer.open_root({})
        layer = tracer.open()
        tracer.close("direct", "m1", layer)
        tracer.close_root("m1", token)

        (span,) = recorded
        assert isinstance(span, Span)
        assert span.name == "invoke"
        assert span == tracer.traces()[0]


# ----------------------------------------------------------------------
# The watchdog hop: fork / seed / unseed / join / abandon
# ----------------------------------------------------------------------
def _run_worker(target):
    worker = threading.Thread(target=target)
    worker.start()
    return worker


class TestForkJoin:
    def test_join_attaches_worker_spans_under_the_waiting_layer(self, tracer):
        root = tracer.open_root({})
        watchdog = tracer.open()
        fork = tracer.fork()

        def run():
            tracer.seed(fork)
            inner = tracer.open()
            tracer.close("direct", "m1", inner)
            tracer.unseed(fork)

        _run_worker(run).join()
        tracer.join(fork)
        tracer.close("watchdog", "m1", watchdog)
        tracer.close_root("m1", root)

        (trace,) = tracer.traces()
        names = [span.name for _, span in trace.walk()]
        assert names == ["invoke", "watchdog", "direct"]
        assert tracer.snapshot()["late_spans"] == 0

    def test_abandon_drops_a_late_deposit(self, tracer):
        root = tracer.open_root({})
        watchdog = tracer.open()
        fork = tracer.fork()
        recorded = threading.Event()
        release = threading.Event()

        def run():
            tracer.seed(fork)
            inner = tracer.open()
            tracer.close("direct", "m1", inner)
            recorded.set()
            assert release.wait(5)
            tracer.unseed(fork)  # arrives after the abandon

        worker = _run_worker(run)
        assert recorded.wait(5)
        tracer.abandon(fork)
        tracer.close("watchdog", "m1", watchdog, "ModuleTimeoutError", "budget")
        tracer.close_root("m1", root, "ModuleTimeoutError", "budget")
        release.set()
        worker.join()

        (trace,) = tracer.traces()
        assert trace.find("direct") == []
        assert trace.outcome == "ModuleTimeoutError"
        assert tracer.snapshot()["late_spans"] == 1

    def test_abandon_after_deposit_counts_the_adopted_spans(self, tracer):
        root = tracer.open_root({})
        fork = tracer.fork()

        def run():
            tracer.seed(fork)
            inner = tracer.open()
            tracer.close("direct", "m1", inner)
            tracer.unseed(fork)  # deposits in time...

        _run_worker(run).join()
        tracer.abandon(fork)  # ...but the caller abandons anyway
        tracer.close_root("m1", root)

        (trace,) = tracer.traces()
        assert trace.children == ()
        assert tracer.snapshot()["late_spans"] == 1

    def test_seed_discards_stale_spans_from_a_reused_thread(self, tracer):
        root = tracer.open_root({})
        abandoned_fork, fresh_fork = tracer.fork(), tracer.fork()
        tracer.abandon(abandoned_fork)

        def run():
            # An abandoned call's leftovers, never deposited...
            tracer.seed(abandoned_fork)
            stale = tracer.open()
            tracer.close("direct", "stale", stale)
            # ...must not leak into the next call on a reused thread.
            tracer.seed(fresh_fork)
            fresh = tracer.open()
            tracer.close("direct", "fresh", fresh)
            tracer.unseed(fresh_fork)

        _run_worker(run).join()
        tracer.join(fresh_fork)
        tracer.close_root("m1", root)

        (trace,) = tracer.traces()
        assert [child.module_id for child in trace.children] == ["fresh"]


# ----------------------------------------------------------------------
# Span serialization
# ----------------------------------------------------------------------
class TestSpanSerialization:
    def _tree(self) -> Span:
        root = Span("invoke", "m1", 1.5, {"provider": "EBI", "retries": 2})
        root.duration_ms = 7.25
        root.outcome = "ValueError"
        root.detail = "supply exploded"
        child = Span("direct", "m1", 2.0)
        child.duration_ms = 6.0
        root.children = [child]
        return root

    def test_round_trip_preserves_the_tree(self):
        root = self._tree()
        rebuilt = Span.from_dict(root.to_dict())
        assert rebuilt == root
        assert rebuilt.to_dict() == root.to_dict()

    def test_empty_fields_are_omitted_from_the_wire_form(self):
        leaf = Span("direct", "m1", 0.0)
        data = leaf.to_dict()
        assert set(data) == {
            "name", "module_id", "start_ms", "duration_ms", "outcome",
        }

    def test_find_and_tree_size(self):
        root = self._tree()
        assert root.tree_size == 2
        assert [span.name for span in root.find("direct")] == ["direct"]
        assert root.find("watchdog") == []


# ----------------------------------------------------------------------
# Engine wiring: the span shapes real stacks produce
# ----------------------------------------------------------------------
def _traced_generation(setup, n=2, **config):
    engine = InvocationEngine(EngineConfig(tracing=True, **config))
    generator = ExampleGenerator(setup.ctx, setup.pool, engine=engine)
    reports = generator.generate_many(setup.catalog[:n])
    return engine, generator, reports


class TestEngineTracing:
    def test_bare_stack_records_root_only_spans(self, setup):
        engine, _, reports = _traced_generation(setup)
        traces = engine.tracer.traces()
        assert reports and traces
        assert all(trace.name == "invoke" for trace in traces)
        assert all(trace.children == () for trace in traces)
        assert all(
            trace.attributes.get("provider") for trace in traces
        )

    def test_layered_stack_separates_the_direct_round_trip(self, setup):
        engine, generator, _ = _traced_generation(setup, cache_size=256)
        cold = engine.tracer.traces()
        assert all(
            [span.name for _, span in trace.walk()] == ["invoke", "direct"]
            for trace in cold
        )
        assert all(trace.attributes["cache"] == "miss" for trace in cold)

        engine.tracer.clear()
        generator.generate_many(setup.catalog[:2])  # warm pass
        warm = engine.tracer.traces()
        assert warm
        # A cache hit never reaches the inner stack: no direct span.
        assert all(trace.children == () for trace in warm)
        assert all(trace.attributes["cache"] == "hit" for trace in warm)

    def test_full_stack_produces_the_documented_layer_chain(self, setup):
        engine, _, _ = _traced_generation(
            setup,
            n=1,
            cache_size=256,
            retry=RetryPolicy(seed=7),
            fault_plan=FaultPlan(seed=7),
            conformance=ConformancePolicy(),
            watchdog=WatchdogPolicy(budget=30.0),
            breaker=BreakerPolicy(),
        )
        trace = engine.tracer.traces()[0]
        # A clean one-shot call crosses every layer exactly once, in
        # the documented order — the watchdog's worker-thread spans
        # included, despite the thread hop.
        assert [span.name for _, span in trace.walk()] == list(LAYERS)
        assert engine.tracer.snapshot()["late_spans"] == 0

    def test_watchdog_timeout_trace_has_no_inner_spans(self, setup):
        engine, _, _ = _traced_generation(
            setup,
            n=1,
            fault_plan=FaultPlan(seed=7, latency_ms=80.0, latency_jitter=0.0),
            watchdog=WatchdogPolicy(budget=0.005),
        )
        traces = engine.tracer.traces()
        assert traces
        assert all(trace.outcome == "ModuleTimeoutError" for trace in traces)
        # The worker is still asleep when the trace exports; its spans
        # arrive late and are dropped, never grafted onto the tree.
        assert all(trace.find("direct") == [] for trace in traces)
        deadline = time.time() + 10
        while time.time() < deadline:
            if engine.tracer.snapshot()["late_spans"] >= len(traces):
                break
            time.sleep(0.01)
        assert engine.tracer.snapshot()["late_spans"] >= len(traces)

    def test_traced_reports_match_untraced(self, setup):
        plain = ExampleGenerator(
            setup.ctx, setup.pool, engine=InvocationEngine(EngineConfig())
        )
        _, _, traced_reports = _traced_generation(setup, n=3)
        assert traced_reports == plain.generate_many(setup.catalog[:3])
