"""Tests for the simulated SOAP / REST / local supply interfaces."""

import pytest

from repro.modules.behavior import BehaviorSpec, Branch
from repro.modules.errors import (
    InvalidInputError,
    ModuleUnavailableError,
    RestError,
    SoapFault,
    TransportError,
)
from repro.modules.interfaces import (
    LocalProgram,
    RestEndpoint,
    SoapEndpoint,
    bindings_from_wire,
    bindings_to_wire,
    invoke_via_interface,
    value_from_wire,
    value_to_wire,
)
from repro.modules.model import Category, InterfaceKind, Module, Parameter
from repro.values import FLOAT, STRING, TypedValue, list_of


def _double(_ctx, inputs):
    return {"out": TypedValue(inputs["x"].payload * 2, STRING, "KeywordSet")}


def _make_module(interface: InterfaceKind) -> Module:
    return Module(
        module_id="t.double",
        name="Double",
        category=Category.DATA_ANALYSIS,
        interface=interface,
        provider="test",
        inputs=(Parameter("x", STRING, "KeywordSet"),),
        outputs=(Parameter("out", STRING, "KeywordSet"),),
        behavior=BehaviorSpec(
            (
                Branch(
                    "double",
                    lambda ctx, ins: not ins["x"].payload.startswith("!"),
                    _double,
                ),
            )
        ),
    )


class TestWireSerialization:
    def test_scalar_round_trip(self):
        value = TypedValue("abc", STRING, "KeywordSet")
        assert value_from_wire(value_to_wire(value)) == value

    def test_list_round_trip_restores_tuple(self):
        value = TypedValue((1.5, 2.0), list_of(FLOAT), "PeptideMassList")
        restored = value_from_wire(value_to_wire(value))
        assert restored == value
        assert isinstance(restored.payload, tuple)

    def test_bindings_round_trip(self):
        bindings = {"a": TypedValue("x", STRING), "b": TypedValue((1.0,), list_of(FLOAT))}
        assert bindings_from_wire(bindings_to_wire(bindings)) == bindings

    def test_malformed_wire_value(self):
        with pytest.raises(TransportError):
            value_from_wire({"payload": "x"})

    def test_malformed_wire_document(self):
        with pytest.raises(TransportError):
            bindings_from_wire("{not json")


class TestSoap(object):
    def test_round_trip(self, ctx):
        module = _make_module(InterfaceKind.SOAP_SERVICE)
        endpoint = SoapEndpoint(module, ctx)
        outputs = endpoint.call({"x": TypedValue("ab", STRING)})
        assert outputs["out"].payload == "abab"

    def test_envelope_contains_operation(self, ctx):
        module = _make_module(InterfaceKind.SOAP_SERVICE)
        request = SoapEndpoint(module, ctx).build_request(
            {"x": TypedValue("ab", STRING)}
        )
        assert "t.double" in request
        assert "Envelope" in request

    def test_invalid_input_is_client_fault(self, ctx):
        module = _make_module(InterfaceKind.SOAP_SERVICE)
        with pytest.raises(SoapFault) as error:
            SoapEndpoint(module, ctx).call({"x": TypedValue("!bad", STRING)})
        assert error.value.fault_code == "Client"

    def test_unavailable_is_server_fault(self, ctx):
        module = _make_module(InterfaceKind.SOAP_SERVICE)
        module.available = False
        with pytest.raises(SoapFault) as error:
            SoapEndpoint(module, ctx).call({"x": TypedValue("a", STRING)})
        assert error.value.fault_code == "Server"

    def test_malformed_envelope_is_client_fault(self, ctx):
        module = _make_module(InterfaceKind.SOAP_SERVICE)
        with pytest.raises(SoapFault):
            SoapEndpoint(module, ctx).handle("<not-an-envelope")


class TestRest:
    def test_round_trip(self, ctx):
        module = _make_module(InterfaceKind.REST_SERVICE)
        outputs = RestEndpoint(module, ctx).call({"x": TypedValue("ab", STRING)})
        assert outputs["out"].payload == "abab"

    def test_invalid_input_is_400(self, ctx):
        module = _make_module(InterfaceKind.REST_SERVICE)
        with pytest.raises(RestError) as error:
            RestEndpoint(module, ctx).call({"x": TypedValue("!bad", STRING)})
        assert error.value.status == 400

    def test_unavailable_is_503(self, ctx):
        module = _make_module(InterfaceKind.REST_SERVICE)
        module.available = False
        with pytest.raises(RestError) as error:
            RestEndpoint(module, ctx).call({"x": TypedValue("a", STRING)})
        assert error.value.status == 503

    def test_unknown_path_is_404(self, ctx):
        module = _make_module(InterfaceKind.REST_SERVICE)
        status, _body = RestEndpoint(module, ctx).handle("POST", "/nope", "{}")
        assert status == 404

    def test_wrong_method_is_405(self, ctx):
        module = _make_module(InterfaceKind.REST_SERVICE)
        status, _body = RestEndpoint(module, ctx).handle(
            "GET", "/services/t.double", "{}"
        )
        assert status == 405


class TestLocalProgram:
    def test_round_trip(self, ctx):
        module = _make_module(InterfaceKind.LOCAL_PROGRAM)
        outputs = LocalProgram(module, ctx).call({"x": TypedValue("ab", STRING)})
        assert outputs["out"].payload == "abab"

    def test_invalid_input_is_exit_2(self, ctx):
        module = _make_module(InterfaceKind.LOCAL_PROGRAM)
        exit_code, _out, err = LocalProgram(module, ctx).run(
            bindings_to_wire({"x": TypedValue("!bad", STRING)})
        )
        assert exit_code == 2
        assert "invalid input" in err

    def test_unavailable_is_exit_127(self, ctx):
        module = _make_module(InterfaceKind.LOCAL_PROGRAM)
        module.available = False
        exit_code, _out, _err = LocalProgram(module, ctx).run(
            bindings_to_wire({"x": TypedValue("a", STRING)})
        )
        assert exit_code == 127


class TestUniformClient:
    @pytest.mark.parametrize("interface", list(InterfaceKind))
    def test_success_through_every_interface(self, ctx, interface):
        module = _make_module(interface)
        outputs = invoke_via_interface(module, ctx, {"x": TypedValue("ab", STRING)})
        assert outputs["out"].payload == "abab"

    @pytest.mark.parametrize("interface", list(InterfaceKind))
    def test_invalid_input_normalized(self, ctx, interface):
        module = _make_module(interface)
        with pytest.raises(InvalidInputError):
            invoke_via_interface(module, ctx, {"x": TypedValue("!bad", STRING)})

    @pytest.mark.parametrize("interface", list(InterfaceKind))
    def test_unavailable_normalized(self, ctx, interface):
        module = _make_module(interface)
        module.available = False
        with pytest.raises(ModuleUnavailableError):
            invoke_via_interface(module, ctx, {"x": TypedValue("a", STRING)})
