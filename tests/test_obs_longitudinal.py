"""End-to-end longitudinal observability: a faulted campaign fires
availability burn-rate and behavior-drift alerts that surface in
``repro-cli alerts``, the Prometheus export, the dashboard, and the
decay analysis — and the whole timeline plus alert history reconstructs
from the journal alone after SIGKILL, without disturbing report
byte-identity."""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignConfig, CampaignJournal, CampaignRunner
from repro.cli import main
from repro.obs.slo import alert_states, firing_alerts
from repro.obs.timeseries import load_snapshots
from repro.workflow.model import Step, Workflow
from repro.workflow.monitoring import analyze_decay, render_decay_report

BASELINE_CONFIG = dict(limit=5, retry_base_delay=0.0, probe_interval=0.01)

FAULTED_CONFIG = dict(
    BASELINE_CONFIG,
    permanent_blackouts=("Manchester-lab",),
    deadline=0.3,
    nondeterministic_providers=("EBI",),
    conformance=False,
    sample_interval=0.0001,
    baseline="base",
)


@pytest.fixture(scope="module")
def faulted_campaign(ctx, catalog, pool, tmp_path_factory):
    """A clean baseline campaign, then a faulted re-run diffed against
    it with sampling and alerting armed."""
    db = tmp_path_factory.mktemp("longitudinal") / "demo.sqlite"
    journal = CampaignJournal(db)
    CampaignRunner(
        ctx, catalog, pool, journal, CampaignConfig(**BASELINE_CONFIG)
    ).run("base")
    runner = CampaignRunner(
        ctx, catalog, pool, journal, CampaignConfig(**FAULTED_CONFIG)
    )
    result = runner.run("faulted")
    yield db, journal, runner, result
    journal.close()


class TestFaultedCampaignAlerts:
    def test_availability_burn_rate_alert_fires(self, faulted_campaign):
        _db, journal, _runner, _result = faulted_campaign
        events = journal.alerts("faulted")
        availability = [
            e for e in firing_alerts(events) if e["kind"] == "availability"
        ]
        assert availability, "dark provider must trip the burn-rate alert"
        assert any(e["subject"] == "Manchester-lab" for e in availability)

    def test_drift_alerts_fire_against_the_baseline(self, faulted_campaign):
        _db, journal, _runner, result = faulted_campaign
        drifted = [r for r in result.drift if r.drifted]
        assert drifted, "nondeterministic provider must drift vs baseline"
        events = journal.alerts("faulted")
        drift_subjects = {
            e["subject"] for e in firing_alerts(events) if e["kind"] == "drift"
        }
        assert {r.module_id for r in drifted} <= drift_subjects | {
            r.module_id for r in result.drift
        }
        assert drift_subjects

    def test_snapshot_timeline_journaled(self, faulted_campaign):
        _db, journal, _runner, _result = faulted_campaign
        snapshots = load_snapshots(journal, "faulted")
        assert len(snapshots) >= 2
        assert snapshots[-1]["progress"]["n_pending"] == 0
        # The baseline campaign, run without sampling, journaled nothing.
        assert journal.snapshot_count("base") == 0

    def test_campaign_report_carries_the_drift_table(self, faulted_campaign):
        from repro.campaign import render_campaign_report

        _db, _journal, runner, result = faulted_campaign
        report = render_campaign_report(result)
        assert "Behavioral drift" in report
        assert "disjoint" in report or "overlapping" in report

    def test_decay_analysis_consumes_the_alert_history(
        self, faulted_campaign, catalog_by_id
    ):
        _db, journal, _runner, result = faulted_campaign
        events = journal.alerts("faulted")
        drifting_module = sorted(
            e["subject"] for e in firing_alerts(events) if e["kind"] == "drift"
        )[0]
        workflows = [
            Workflow("w-drift", "w-drift", (Step("s", drifting_module),)),
            Workflow(
                "w-clean", "w-clean", (Step("s", "an.reverse_complement"),)
            ),
        ]
        report = analyze_decay(workflows, catalog_by_id, alerts=events)
        assert drifting_module in report.drifting
        assert "Manchester-lab" in report.alerting_providers
        assert report.n_broken >= 1
        assert drifting_module in report.by_module
        text = render_decay_report(report)
        assert "drifting" in text and "Manchester-lab" in text

    def test_decay_analysis_without_alerts_sees_nothing(self, catalog_by_id):
        workflows = [Workflow("w", "w", (Step("s", "an.reverse_complement"),))]
        report = analyze_decay(workflows, catalog_by_id)
        assert report.drifting == [] and report.alerting_providers == []


class TestCliSurfaces:
    def test_alerts_subcommand_lists_firing(self, faulted_campaign, capsys):
        db, _journal, _runner, _result = faulted_campaign
        assert main(["alerts", "faulted", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "firing" in out and "FIRING" in out
        assert "availability" in out

    def test_alerts_json_round_trips_the_journal(self, faulted_campaign, capsys):
        db, journal, _runner, _result = faulted_campaign
        assert main(["alerts", "faulted", "--db", str(db), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == journal.alerts("faulted")

    def test_alerts_prometheus_gauges(self, faulted_campaign, capsys):
        db, journal, _runner, _result = faulted_campaign
        assert main(["alerts", "faulted", "--db", str(db), "--prometheus"]) == 0
        out = capsys.readouterr().out
        n_firing = len(firing_alerts(journal.alerts("faulted")))
        assert f"repro_slo_alerts_firing {n_firing}" in out
        assert 'repro_slo_alert_firing{slo="availability"' in out

    def test_top_once_renders_the_dashboard(self, faulted_campaign, capsys):
        db, _journal, _runner, _result = faulted_campaign
        assert main(["top", "faulted", "--db", str(db), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top — campaign faulted" in out
        assert "FIRING" in out

    def test_unknown_campaign_is_a_clean_error(self, faulted_campaign, capsys):
        db, _journal, _runner, _result = faulted_campaign
        assert main(["alerts", "nope", "--db", str(db)]) == 2
        assert main(["top", "nope", "--db", str(db), "--once"]) == 2
        err = capsys.readouterr().err
        assert "no campaign 'nope'" in err


# ----------------------------------------------------------------------
# SIGKILL mid-campaign with sampling + alerting armed: the resumed run's
# report stays byte-identical, and the snapshot timeline + alert history
# reconstruct from the journal alone.
# ----------------------------------------------------------------------
SAMPLED_FLAGS = [
    "--limit", "12",
    "--latency-ms", "15",
    "--blackout", "Manchester-lab",
    "--blackout-calls", "25",
    "--deadline", "60",
    "--failure-threshold", "2",
    "--probe-interval", "0.05",
    "--sample", "0.001",
    "--trace",
]


def _cli(*args):
    root = Path(__file__).resolve().parents[1]
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        timeout=300,
    )


def test_sigkill_preserves_byte_identity_and_reconstructs_timeline(tmp_path):
    root = Path(__file__).resolve().parents[1]
    db = tmp_path / "killed.sqlite"
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", "run", "obs",
         "--db", str(db), *SAMPLED_FLAGS],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            done = snaps = alerts = 0
            if db.exists():
                try:
                    conn = sqlite3.connect(db)
                    done = conn.execute(
                        "SELECT COUNT(*) FROM campaign_entries "
                        "WHERE status = 'done'"
                    ).fetchone()[0]
                    snaps = conn.execute(
                        "SELECT COUNT(*) FROM campaign_snapshots"
                    ).fetchone()[0]
                    alerts = conn.execute(
                        "SELECT COUNT(*) FROM campaign_alerts"
                    ).fetchone()[0]
                    conn.close()
                except sqlite3.OperationalError:
                    pass
            if (done >= 2 and snaps >= 2 and alerts >= 1) or (
                victim.poll() is not None
            ):
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign never journaled progress + snapshots + alerts")
    finally:
        victim.kill()  # SIGKILL — no finalizers, no flush
        victim.wait()

    resumed = _cli("campaign", "resume", "obs", "--db", str(db))
    assert resumed.returncode == 0, resumed.stderr

    reference_db = tmp_path / "reference.sqlite"
    reference = _cli(
        "campaign", "run", "obs", "--db", str(reference_db), *SAMPLED_FLAGS
    )
    assert reference.returncode == 0, reference.stderr
    # Sampling and alerting never feed report reassembly.
    assert resumed.stdout == reference.stdout
    assert "status: complete" in resumed.stdout

    # The timeline reconstructs from the journal alone, with the kill
    # visible as two run segments.
    conn = sqlite3.connect(db)
    rows = conn.execute(
        "SELECT snapshot_json FROM campaign_snapshots "
        "WHERE campaign_id = 'obs' ORDER BY snap_seq"
    ).fetchall()
    conn.close()
    runs = sorted({json.loads(row[0])["run"] for row in rows})
    assert runs == [0, 1]

    # The alert history reconstructs through the CLI with no live state:
    # the blackout left a firing availability transition in the journal
    # (later resolved once the provider recovered).
    alerts = _cli("alerts", "obs", "--db", str(db), "--json")
    assert alerts.returncode == 0, alerts.stderr
    events = json.loads(alerts.stdout)
    assert any(
        e["subject"] == "Manchester-lab"
        and e["kind"] == "availability"
        and e["state"] == "firing"
        for e in events
    ), f"expected a firing availability transition, got {events}"
    assert alert_states(events)  # folds cleanly

    # And the dashboard renders the post-mortem frame from the same file.
    top = _cli("top", "obs", "--db", str(db), "--once")
    assert top.returncode == 0, top.stderr
    assert "campaign obs" in top.stdout
    assert "alerts" in top.stdout
