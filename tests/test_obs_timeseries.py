"""Longitudinal sampling: the ring, delta/rate derivation, the campaign
sampler's journaling, and timeline reconstruction from the journal."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignConfig, CampaignJournal, CampaignRunner
from repro.engine import InvocationEngine
from repro.obs.timeseries import (
    CampaignSampler,
    TimeSeriesRing,
    counter_delta,
    latency_over,
    load_snapshots,
    provider_deltas,
    rebuild_ring,
    render_timeline,
    sample_rates,
    take_sample,
)


def make_sample(
    seq=0,
    run=0,
    t_ms=0.0,
    counters=None,
    providers=None,
    latency=None,
    conformance=None,
    progress=None,
):
    """A synthetic sample with the shape :func:`take_sample` produces."""
    return {
        "seq": seq,
        "run": run,
        "t_ms": t_ms,
        "counters": counters or {},
        "latency": latency
        or {"count": 0, "sum_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0,
            "cumulative_buckets": [["250", 0], ["+Inf", 0]]},
        "dropped_events": 0,
        "breaker": {},
        "health": {"n_modules": 0, "dead_modules": [],
                   "providers": providers or {}},
        "conformance": conformance,
        "progress": progress
        or {"n_planned": 0, "n_done": 0, "n_skipped": 0, "n_pending": 0},
    }


def provider_entry(calls, answered):
    return {
        "calls": calls,
        "answered": answered,
        "timeouts": 0,
        "malformed": 0,
        "modules": 1,
        "dead_modules": 0,
        "availability": answered / calls if calls else 1.0,
    }


# ----------------------------------------------------------------------
class TestRing:
    def test_rejects_degenerate_capacity(self):
        with pytest.raises(ValueError):
            TimeSeriesRing(maxlen=1)

    def test_bounded_with_eviction_accounting(self):
        ring = TimeSeriesRing(maxlen=3)
        for seq in range(5):
            ring.append(make_sample(seq=seq))
        assert len(ring) == 3
        assert ring.dropped_samples == 2
        assert [s["seq"] for s in ring.samples()] == [2, 3, 4]
        assert ring.last()["seq"] == 4

    def test_window_is_trailing_and_clamped(self):
        ring = TimeSeriesRing(maxlen=8)
        for seq in range(4):
            ring.append(make_sample(seq=seq))
        assert [s["seq"] for s in ring.window(2)] == [2, 3]
        assert [s["seq"] for s in ring.window(99)] == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            ring.window(0)

    def test_empty_ring(self):
        ring = TimeSeriesRing()
        assert ring.last() is None
        assert ring.window(3) == []


# ----------------------------------------------------------------------
class TestDeltas:
    def test_counter_delta_defaults_missing_to_zero(self):
        old = make_sample(counters={"calls": 3})
        new = make_sample(counters={"calls": 10, "ok": 4})
        assert counter_delta(old, new, "calls") == 7
        assert counter_delta(old, new, "ok") == 4
        assert counter_delta(old, new, "retries") == 0

    def test_provider_deltas_count_new_providers_from_zero(self):
        old = make_sample(providers={"EBI": provider_entry(4, 4)})
        new = make_sample(
            providers={
                "EBI": provider_entry(10, 9),
                "NCBI": provider_entry(3, 0),
            }
        )
        deltas = provider_deltas(old, new)
        assert deltas["EBI"] == {"calls": 6, "answered": 5}
        assert deltas["NCBI"] == {"calls": 3, "answered": 0}

    def test_latency_over_from_cumulative_buckets(self):
        old = make_sample(
            latency={"count": 10, "sum_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0,
                     "cumulative_buckets": [["100", 8], ["250", 9], ["+Inf", 10]]}
        )
        new = make_sample(
            latency={"count": 30, "sum_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0,
                     "cumulative_buckets": [["100", 20], ["250", 24], ["+Inf", 30]]}
        )
        # Window: 20 calls, of which 24-9=15 were <=250ms -> 5 over.
        assert latency_over(old, new, 250.0) == (5, 20)
        # The 100ms objective uses the tighter bucket: 20-(20-8)=8 over.
        assert latency_over(old, new, 100.0) == (8, 20)

    def test_latency_over_empty_window(self):
        sample = make_sample()
        assert latency_over(sample, sample, 250.0) == (0, 0)

    def test_sample_rates(self):
        old = make_sample(
            t_ms=1000.0,
            counters={"calls": 10, "ok": 8, "cache_hits": 2},
            progress={"n_planned": 9, "n_done": 1, "n_skipped": 0, "n_pending": 8},
        )
        new = make_sample(
            t_ms=3000.0,
            counters={"calls": 30, "ok": 20, "cache_hits": 8},
            progress={"n_planned": 9, "n_done": 5, "n_skipped": 0, "n_pending": 4},
        )
        rates = sample_rates(old, new)
        assert rates["elapsed_s"] == pytest.approx(2.0)
        assert rates["calls_per_s"] == pytest.approx(10.0)
        assert rates["ok_per_s"] == pytest.approx(6.0)
        assert rates["done_per_s"] == pytest.approx(2.0)

    def test_sample_rates_refuse_resume_boundary_and_zero_elapsed(self):
        first = make_sample(run=0, t_ms=5000.0)
        resumed = make_sample(run=1, t_ms=10.0)
        assert sample_rates(first, resumed) == {}
        assert sample_rates(first, first) == {}


# ----------------------------------------------------------------------
class TestTakeSample:
    def test_shape_and_progress_derivation(self):
        engine = InvocationEngine()
        sample = take_sample(
            engine,
            {"n_planned": 10, "n_done": 3, "n_skipped": 1},
            t_ms=12.5,
            run=2,
            seq=7,
        )
        assert sample["seq"] == 7 and sample["run"] == 2
        assert sample["t_ms"] == 12.5
        assert sample["progress"]["n_pending"] == 6
        assert sample["latency"]["cumulative_buckets"][-1][0] == "+Inf"
        assert isinstance(sample["counters"], dict)
        # JSON-compatible: the journal stores it verbatim.
        import json

        json.dumps(sample)


# ----------------------------------------------------------------------
def _run_sampled_campaign(ctx, catalog, pool, db, campaign_id="sampled", **kw):
    journal = CampaignJournal(db)
    config = CampaignConfig(
        limit=3,
        retry_base_delay=0.0,
        probe_interval=0.01,
        sample_interval=0.0001,
        **kw,
    )
    runner = CampaignRunner(ctx, catalog, pool, journal, config)
    result = runner.run(campaign_id)
    return journal, runner, result


class TestCampaignSampler:
    def test_sampler_journals_every_sample(self, ctx, catalog, pool, tmp_path):
        journal, runner, result = _run_sampled_campaign(
            ctx, catalog, pool, tmp_path / "j.sqlite"
        )
        try:
            snapshots = load_snapshots(journal, "sampled")
            assert result.status == "complete"
            assert len(snapshots) >= 2  # initial zero-point + terminal
            assert snapshots == journal.snapshots("sampled")
            assert journal.snapshot_count("sampled") == len(snapshots)
            # Sequence and run stamps are monotone within the segment.
            assert [s["seq"] for s in snapshots] == list(range(len(snapshots)))
            assert all(s["run"] == 0 for s in snapshots)
            # The terminal sample carries the finalized progress.
            assert snapshots[-1]["progress"]["n_done"] == 3
            assert snapshots[-1]["progress"]["n_pending"] == 0
        finally:
            journal.close()

    def test_resumed_sampler_starts_new_run_segment(self, tmp_path):
        db = tmp_path / "segments.sqlite"
        journal = CampaignJournal(db)
        try:
            journal.create("c", 2014, ["m1"], {})
            engine = InvocationEngine()
            first = CampaignSampler(engine, journal=journal, campaign_id="c")
            first.sample({"n_planned": 1, "n_done": 0, "n_skipped": 0})
            second = CampaignSampler(engine, journal=journal, campaign_id="c")
            assert second.run == 1
            second.sample({"n_planned": 1, "n_done": 1, "n_skipped": 0})
            runs = [s["run"] for s in journal.snapshots("c")]
            assert runs == [0, 1]
        finally:
            journal.close()

    def test_rebuild_ring_reconstructs_trailing_window(self, tmp_path):
        db = tmp_path / "rebuild.sqlite"
        journal = CampaignJournal(db)
        try:
            journal.create("c", 2014, ["m1"], {})
            engine = InvocationEngine()
            sampler = CampaignSampler(engine, journal=journal, campaign_id="c")
            for _ in range(5):
                sampler.sample({"n_planned": 1, "n_done": 0, "n_skipped": 0})
            ring = rebuild_ring(journal, "c", maxlen=3)
            assert len(ring) == 3
            assert [s["seq"] for s in ring.samples()] == [2, 3, 4]
        finally:
            journal.close()

    def test_in_memory_sampler_needs_no_journal(self):
        engine = InvocationEngine()
        sampler = CampaignSampler(engine)
        sample = sampler.sample({"n_planned": 2, "n_done": 1, "n_skipped": 0})
        assert sample["progress"]["n_pending"] == 1
        assert len(sampler.ring) == 1


class TestRenderTimeline:
    def test_render_empty_and_elided(self):
        assert "No snapshots" in render_timeline([])
        samples = [
            make_sample(seq=seq, t_ms=seq * 100.0,
                        counters={"calls": seq, "ok": seq},
                        progress={"n_planned": 5, "n_done": seq,
                                  "n_skipped": 0, "n_pending": 5 - seq})
            for seq in range(20)
        ]
        text = render_timeline(samples, limit=4)
        assert "20 samples" in text
        assert "16 earlier samples elided" in text
        assert "done 19/5" in text  # last sample rendered
