"""Behavioral tests of the data-retrieval family."""

import pytest

from repro.biodb import formats
from repro.modules.errors import InvalidInputError
from repro.modules.interfaces import invoke_via_interface
from repro.values import STRING, TypedValue


def _invoke(ctx, module, **payloads):
    bindings = {name: TypedValue(value, STRING) for name, value in payloads.items()}
    return invoke_via_interface(module, ctx, bindings)


class TestRecordRetrieval:
    def test_uniprot_record_matches_entity(self, ctx, catalog_by_id, universe):
        protein = universe.proteins[9]
        out = _invoke(ctx, catalog_by_id["ret.get_uniprot_record"], id=protein.uniprot)
        fields = formats.parse_uniprot_flat(out["record"].payload)
        assert fields["accession"] == protein.uniprot
        assert fields["sequence"] == protein.sequence

    def test_unknown_accession_rejected(self, ctx, catalog_by_id):
        with pytest.raises(InvalidInputError):
            _invoke(ctx, catalog_by_id["ret.get_uniprot_record"], id="P99999")

    def test_malformed_accession_rejected(self, ctx, catalog_by_id):
        with pytest.raises(InvalidInputError):
            _invoke(ctx, catalog_by_id["ret.get_uniprot_record"], id="banana")

    def test_foreign_scheme_rejected(self, ctx, catalog_by_id, universe):
        with pytest.raises(InvalidInputError):
            _invoke(
                ctx, catalog_by_id["ret.get_uniprot_record"],
                id=universe.genes[0].embl,
            )

    def test_embl_record_contains_gene_sequence(self, ctx, catalog_by_id, universe):
        gene = universe.genes[11]
        out = _invoke(ctx, catalog_by_id["ret.fetch_embl_record"], id=gene.embl)
        fields = formats.parse_embl_flat(out["record"].payload)
        assert fields["sequence"] == gene.dna_sequence

    def test_genbank_and_refseq_resolve_same_gene(self, ctx, catalog_by_id, universe):
        gene = universe.genes[4]
        genbank = _invoke(
            ctx, catalog_by_id["ret.fetch_genbank_record"], id=gene.genbank
        )
        refseq = _invoke(
            ctx, catalog_by_id["ret.fetch_refseq_record"], id=gene.refseq
        )
        a = formats.parse_genbank_flat(genbank["record"].payload)
        b = formats.parse_genbank_flat(refseq["record"].payload)
        assert a["sequence"] == b["sequence"] == gene.dna_sequence

    def test_pdb_record_carries_resolution(self, ctx, catalog_by_id, universe):
        structure = universe.structures[2]
        out = _invoke(ctx, catalog_by_id["ret.get_pdb_entry"], id=structure.pdb_id)
        fields = formats.parse_pdb_text(out["record"].payload)
        assert float(fields["resolution"]) == structure.resolution

    def test_kegg_gene_record_lists_pathways(self, ctx, catalog_by_id, universe):
        gene = universe.genes[6]
        out = _invoke(ctx, catalog_by_id["ret.get_kegg_gene"], id=gene.kegg_id)
        fields = formats.parse_kegg_flat(out["record"].payload)
        for pathway_ordinal in gene.pathway_ordinals:
            assert universe.pathways[pathway_ordinal].kegg_id in fields["pathways"]


class TestNormalizingRetrieval:
    def test_both_schemes_accepted(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["ret.get_protein_record"]
        protein = universe.proteins[3]
        via_uniprot = _invoke(ctx, module, id=protein.uniprot)
        via_pir = _invoke(ctx, module, id=protein.pir)
        # Same entity either way; the normalized record is identical.
        assert via_uniprot["record"].payload == via_pir["record"].payload

    def test_single_behavior_class(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["ret.get_protein_record"]
        assert module.behavior.n_classes == 1
        protein = universe.proteins[3]
        label_a = module.classify(
            ctx, {"id": TypedValue(protein.uniprot, STRING)}
        )
        label_b = module.classify(ctx, {"id": TypedValue(protein.pir, STRING)})
        assert label_a == label_b


class TestSequenceRetrieval:
    def test_biological_sequence_per_scheme(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["ret.get_biological_sequence"]
        protein = universe.proteins[5]
        gene = universe.genes[5]
        via_protein = _invoke(ctx, module, id=protein.uniprot)
        via_gene = _invoke(ctx, module, id=gene.kegg_id)
        assert via_protein["sequence"].payload == protein.sequence
        assert via_protein["sequence"].concept == "ProteinSequence"
        assert via_gene["sequence"].payload == gene.dna_sequence
        assert via_gene["sequence"].concept == "DNASequence"

    def test_structure_sequence_is_proteins(self, ctx, catalog_by_id, universe):
        structure = universe.structures[1]
        out = _invoke(
            ctx, catalog_by_id["ret.get_structure_sequence"], id=structure.pdb_id
        )
        assert out["sequence"].payload == universe.proteins[
            structure.protein_ordinal
        ].sequence

    def test_gene_rna_is_transcribed(self, ctx, catalog_by_id, universe):
        gene = universe.genes[5]
        out = _invoke(ctx, catalog_by_id["ret.get_gene_rna"], id=gene.refseq)
        assert "T" not in out["sequence"].payload
        assert out["sequence"].payload == gene.dna_sequence.replace("T", "U")


class TestTextRetrieval:
    def test_abstract_text(self, ctx, catalog_by_id, universe):
        publication = universe.publications[4]
        out = _invoke(
            ctx, catalog_by_id["ret.get_abstract_text"], id=publication.pubmed_id
        )
        assert out["text"].payload == publication.abstract

    def test_binfo_known_database(self, ctx, catalog_by_id):
        out = _invoke(ctx, catalog_by_id["ret.binfo"], database="kegg")
        assert "KEGG" in out["info"].payload
        assert out["info"].concept == "FullTextDocument"

    def test_binfo_unknown_database_rejected(self, ctx, catalog_by_id):
        with pytest.raises(InvalidInputError):
            _invoke(ctx, catalog_by_id["ret.binfo"], database="mystery-db")
