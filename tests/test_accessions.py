"""Unit tests for the accession schemes."""

import pytest

from repro.biodb.accessions import (
    SCHEMES,
    classify_accession,
    organism_count,
    scheme_for,
    species_code,
    species_name,
)


class TestSchemes:
    def test_every_scheme_mints_valid_accessions(self):
        for concept, scheme in SCHEMES.items():
            for ordinal in (0, 1, 17, 100):
                accession = scheme.mint(ordinal)
                assert scheme.is_valid(accession), (concept, accession)

    def test_mint_is_injective_over_small_range(self):
        for concept, scheme in SCHEMES.items():
            if concept == "ScientificOrganismName":
                continue  # only 8 organisms exist
            minted = {scheme.mint(i) for i in range(50)}
            assert len(minted) == 50, concept

    def test_schemes_are_pairwise_disjoint_on_minted_values(self):
        """Critical for the link-family dispatch: a minted accession must
        be valid under exactly one scheme."""
        for concept, scheme in SCHEMES.items():
            for ordinal in range(25):
                accession = scheme.mint(ordinal)
                matches = [
                    other
                    for other, other_scheme in SCHEMES.items()
                    if other_scheme.is_valid(accession)
                ]
                assert matches == [concept], (accession, matches)

    def test_scheme_for_unknown_concept(self):
        with pytest.raises(KeyError):
            scheme_for("NotAConcept")

    def test_invalid_accessions_rejected(self):
        assert not scheme_for("UniProtAccession").is_valid("banana")
        assert not scheme_for("GOTermIdentifier").is_valid("GO:12")
        assert not scheme_for("KEGGGeneId").is_valid("hsa1234")

    def test_validity_requires_full_match(self):
        scheme = scheme_for("EntrezGeneId")
        assert scheme.is_valid("5001")
        assert not scheme.is_valid("5001 ")
        assert not scheme.is_valid("x5001")


class TestClassification:
    def test_classify_minted_accessions(self):
        for concept, scheme in SCHEMES.items():
            assert classify_accession(scheme.mint(3)) == concept

    def test_classify_unknown_returns_none(self):
        assert classify_accession("???") is None


class TestSpecies:
    def test_species_tables_align(self):
        assert organism_count() == 8
        assert species_code(0) == "hsa"
        assert species_name(0) == "Homo sapiens"

    def test_species_wrap_around(self):
        assert species_code(8) == species_code(0)
        assert species_name(9) == species_name(1)
