"""Cross-process determinism of the whole reproduction.

Python randomizes ``str`` hashes per process; any leak of ``hash()`` into
value generation would make two runs disagree.  These tests pin the full
report byte-for-byte across fresh interpreter processes with different
``PYTHONHASHSEED`` values (regression guard for the realization factory's
list-instance seeding).
"""

import os
import subprocess
import sys

import pytest


def _run_snippet(snippet: str, hash_seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=hash_seed)
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True, text=True, env=env, check=True,
    )
    return result.stdout


_POOL_SNIPPET = """
from repro.ontology import build_mygrid_ontology
from repro.pool import InstancePool, default_factory
pool = InstancePool.bootstrap(default_factory(), build_mygrid_ontology())
for value in sorted((v.concept, str(v.payload)[:40]) for v in pool):
    print(value)
"""

_EXAMPLES_SNIPPET = """
import repro
report, evaluation = repro.quick_generate("map.link")
for example in report.examples:
    print(example.inputs[0].value.payload, "->",
          sorted(example.outputs[0].value.payload))
"""


@pytest.mark.slow
class TestCrossProcessDeterminism:
    def test_pool_identical_across_hash_seeds(self):
        first = _run_snippet(_POOL_SNIPPET, "0")
        second = _run_snippet(_POOL_SNIPPET, "424242")
        assert first == second

    def test_generated_examples_identical_across_hash_seeds(self):
        first = _run_snippet(_EXAMPLES_SNIPPET, "1")
        second = _run_snippet(_EXAMPLES_SNIPPET, "99999")
        assert first == second


class TestInProcessDeterminism:
    def test_two_fresh_worlds_agree(self):
        from repro.biodb.universe import BioUniverse
        from repro.modules.model import ModuleContext
        from repro.core.generation import ExampleGenerator
        from repro.modules.catalog.factory import build_catalog
        from repro.ontology import build_mygrid_ontology
        from repro.pool.pool import InstancePool
        from repro.pool.synthesis import RealizationFactory

        ontology = build_mygrid_ontology()

        def world():
            universe = BioUniverse(seed=2014)
            ctx = ModuleContext(universe=universe, ontology=ontology)
            pool = InstancePool.bootstrap(RealizationFactory(universe), ontology)
            generator = ExampleGenerator(ctx, pool)
            module = next(
                m for m in build_catalog() if m.module_id == "ret.get_kegg_gene"
            )
            return generator.generate(module).examples[0]

        first, second = world(), world()
        assert first.inputs[0].value.payload == second.inputs[0].value.payload
        assert first.outputs[0].value.payload == second.outputs[0].value.payload
