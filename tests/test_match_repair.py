"""Indexed end-to-end repair over the synthetic world."""

import pytest

from repro.match import (
    IndexedRepairPlanner,
    SignatureIndex,
    build_synthetic_catalog,
    render_repair_plan,
)
from repro.match.synth import SyntheticCatalogConfig
from repro.workflow.decay import broken_workflows, decay_fraction


@pytest.fixture(scope="module")
def repaired_world():
    world = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=80))
    index = SignatureIndex()
    for module in world.modules:
        index.add_module(module, world.examples_by_id[module.module_id])
    downed = decay_fraction(world.modules, 0.15)
    for module in world.modules:
        if not module.available:
            index.remove(module.module_id)
    planner = IndexedRepairPlanner(
        world.ctx,
        world.modules_by_id,
        world.examples_by_id,
        index,
        world.pool,
    )
    plan = planner.plan(world.workflows)
    return world, downed, plan


class TestDecayFraction:
    def test_decay_hits_roughly_the_fraction(self):
        world = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=80))
        decay_fraction(world.modules, 0.15)
        lost = sum(1 for m in world.modules if not m.available)
        assert 0.15 * len(world.modules) <= lost < 0.5 * len(world.modules)

    def test_decay_is_deterministic(self):
        a = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=80))
        b = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=80))
        assert decay_fraction(a.modules, 0.2) == decay_fraction(b.modules, 0.2)

    def test_fraction_bounds(self):
        world = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=8))
        with pytest.raises(ValueError):
            decay_fraction(world.modules, 0.0)
        with pytest.raises(ValueError):
            decay_fraction(world.modules, 1.0)


class TestIndexedRepair:
    def test_detection_finds_the_broken_workflows(self, repaired_world):
        world, _downed, plan = repaired_world
        broken = broken_workflows(world.workflows, world.modules_by_id)
        assert plan.decay.n_broken == len(broken)
        assert plan.decay.n_workflows == len(world.workflows)
        assert len(plan.decay.by_module) > 0

    def test_matching_was_pruned(self, repaired_world):
        _world, _downed, plan = repaired_world
        assert plan.accounting.candidate_pairs < plan.accounting.exhaustive_pairs
        assert plan.accounting.invocations > 0

    def test_most_workflows_repair_and_validate(self, repaired_world):
        _world, _downed, plan = repaired_world
        assert plan.n_full > 0
        assert plan.n_validated > 0
        assert plan.n_full + plan.n_partial + plan.n_unrepaired == len(
            plan.results
        )

    def test_substitutes_come_from_the_same_family(self, repaired_world):
        world, _downed, plan = repaired_world
        for result in plan.results:
            for _step, (old, new, _kind) in result.substitutions.items():
                assert world.family_of[old] == world.family_of[new]

    def test_substitutes_are_available(self, repaired_world):
        world, _downed, plan = repaired_world
        by_id = world.modules_by_id
        for result in plan.results:
            for _step, (_old, new, _kind) in result.substitutions.items():
                assert by_id[new].available

    def test_summary_and_render(self, repaired_world):
        _world, _downed, plan = repaired_world
        summary = plan.summary()
        assert summary["n_broken"] == plan.decay.n_broken
        assert summary["matching"]["invocations"] == plan.accounting.invocations
        text = render_repair_plan(plan)
        assert "Indexed repair plan" in text
        assert "candidate pairs" in text

    def test_no_decay_no_repairs(self):
        world = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=24))
        index = SignatureIndex()
        for module in world.modules:
            index.add_module(module, world.examples_by_id[module.module_id])
        planner = IndexedRepairPlanner(
            world.ctx,
            world.modules_by_id,
            world.examples_by_id,
            index,
            world.pool,
        )
        plan = planner.plan(world.workflows)
        assert plan.decay.n_broken == 0
        assert plan.results == []
        assert plan.accounting.invocations == 0
