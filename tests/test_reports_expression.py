"""Tests for analysis-report renderers and the expression substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.biodb import reports
from repro.biodb.expression import (
    differential_report,
    make_microarray,
    normalize_expression,
    parse_expression_table,
    render_expression_table,
)


class TestAlignmentReports:
    def test_score_rewards_matches(self):
        assert reports.score_alignment("AAAA", "AAAA") == 8
        assert reports.score_alignment("AAAA", "CCCC") == -4

    def test_score_pads_shorter_sequence(self):
        assert reports.score_alignment("AA", "AAAA") == 2 * 2 - 2

    def test_pairwise_report_contains_identity_line(self):
        text = reports.render_pairwise_alignment("a", "MKW", "b", "MKW", "needle")
        assert "# Identity: 3/3" in text
        assert "# Program: needle" in text

    def test_pairwise_markers_align(self):
        text = reports.render_pairwise_alignment("a", "MKW", "b", "MAW", "needle")
        lines = text.splitlines()
        markers = lines[-2][12:]
        assert markers == "| |"

    def test_multiple_alignment_pads_rows(self):
        text = reports.render_multiple_alignment([("a", "MK"), ("b", "MKWL")])
        rows = [l for l in text.splitlines() if l and not l.startswith("CLUSTAL")]
        assert rows[0].endswith("MK--")

    def test_multiple_alignment_of_empty_input(self):
        text = reports.render_multiple_alignment([])
        assert text.startswith("CLUSTAL")


class TestOtherReports:
    def test_homology_report_is_tabular(self):
        text = reports.render_homology_report(
            "q", [("P1", "kinase", 10)], "uniprot", "blastp"
        )
        assert "P1\tkinase\t10" in text
        assert text.startswith("# blastp")

    def test_motif_report_lists_hits(self):
        text = reports.render_motif_report("q", [("M1", 3)])
        assert "M1\t3" in text

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=2, max_size=6))
    def test_newick_balanced_and_terminated(self, leaves):
        tree = reports.render_newick(leaves)
        assert tree.endswith(";")
        assert tree.count("(") == tree.count(")") == len(leaves) - 1

    def test_newick_edge_cases(self):
        assert reports.render_newick([]) == "();"
        assert reports.render_newick(["x"]) == "(x);"

    def test_sequence_statistics_fields(self):
        text = reports.render_sequence_statistics("q", "GGCC")
        assert "gc_content\t1.000" in text
        assert "length\t4" in text

    def test_identification_report_fields(self):
        text = reports.render_identification_report("P1", "kinase", 4, 0.1)
        assert "identified\tP1" in text
        assert "matched_peptides\t4" in text


class TestExpression:
    def test_microarray_shape(self):
        table = make_microarray(["g1", "g2"], n_samples=3)
        genes, samples, values = parse_expression_table(table)
        assert genes == ["g1", "g2"]
        assert len(samples) == 3
        assert all(len(row) == 3 for row in values)

    def test_microarray_is_seed_deterministic(self):
        assert make_microarray(["g"], seed=5) == make_microarray(["g"], seed=5)
        assert make_microarray(["g"], seed=5) != make_microarray(["g"], seed=6)

    def test_parse_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            parse_expression_table("probe\ts1\ts2\ng1\t1.0\n")

    def test_parse_rejects_untabbed_header(self):
        with pytest.raises(ValueError):
            parse_expression_table("just text")

    def test_render_parse_round_trip(self):
        table = render_expression_table(["g1"], ["s1", "s2"], [[1.5, -0.25]])
        genes, samples, values = parse_expression_table(table)
        assert genes == ["g1"]
        assert values == [[1.5, -0.25]]

    def test_normalization_median_centers_columns(self):
        table = make_microarray(["g1", "g2", "g3"], n_samples=2)
        normalized = normalize_expression(table)
        _genes, _samples, values = parse_expression_table(normalized)
        for column in range(2):
            column_values = sorted(row[column] for row in values)
            assert column_values[len(column_values) // 2] == pytest.approx(0.0)

    def test_differential_report_thresholds(self):
        table = render_expression_table(
            ["up", "flat"], ["a", "b"], [[10.0, 0.0], [1.0, 1.0]]
        )
        report = differential_report(table, threshold=5.0)
        assert "up\t" in report
        assert "flat" not in report
