"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "list"])
        assert args.seed == 7

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_list_prints_catalog(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "ret.get_uniprot_record" in out
        assert len(out.strip().splitlines()) == 252

    def test_list_category_filter(self, capsys):
        assert main(["list", "--category", "filtering"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 27

    def test_list_interface_filter(self, capsys):
        assert main(["list", "--interface", "rest"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 60

    def test_show_module(self, capsys):
        assert main(["show", "map.link"]) == 0
        out = capsys.readouterr().out
        assert "classes of behavior: 9" in out
        assert "[20 partitions]" in out

    def test_show_unknown_module_exits(self):
        with pytest.raises(SystemExit, match="no module"):
            main(["show", "no.such"])

    def test_annotate_prints_examples(self, capsys):
        assert main(["annotate", "ret.get_uniprot_record"]) == 0
        out = capsys.readouterr().out
        assert "generated 1 data examples" in out
        assert "Data example for ret.get_uniprot_record" in out

    def test_annotate_max_limits_cards(self, capsys):
        assert main(["annotate", "map.link", "--max", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("Data example for") == 2

    def test_match_decayed_module(self, capsys):
        assert main(["match", "candidates", "old.get_kegg_gene_s"]) == 0
        out = capsys.readouterr().out
        assert "equivalent" in out
        assert "ret.get_kegg_gene" in out

    def test_match_incomparable_module_fails(self, capsys):
        assert main(["match", "candidates", "old.identify_report"]) == 1
        assert "no candidate" in capsys.readouterr().out

    def test_match_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match"])

    def test_suggest(self, capsys):
        assert main(["suggest", "ret.get_uniprot_record", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3

    def test_redundancy(self, capsys):
        assert main(["redundancy", "ret.get_protein_record"]) == 0
        out = capsys.readouterr().out
        assert "1 estimated classes (1 redundant)" in out


class TestDescribeCommand:
    def test_describe_legible_module(self, capsys):
        assert main(["describe", "map.uniprot_to_kegg"]) == 0
        out = capsys.readouterr().out
        assert "guessed kind: mapping identifiers" in out
        assert "actual kind:  mapping identifiers" in out

    def test_describe_opaque_module(self, capsys):
        assert main(["describe", "an.get_concept"]) == 0
        out = capsys.readouterr().out
        assert "not identifiable" in out


class TestValidateCommand:
    def test_valid_workflow_file(self, capsys, tmp_path):
        from repro.workflow.io import workflow_to_dict
        from repro.workflow.model import DataLink, Step, Workflow
        import json

        workflow = Workflow(
            "w-cli", "cli demo",
            steps=(Step("a", "map.kegg_to_uniprot"),
                   Step("b", "ret.get_uniprot_record")),
            links=(DataLink("a", "mapped", "b", "id"),),
        )
        path = tmp_path / "wf.json"
        path.write_text(json.dumps(workflow_to_dict(workflow)))
        assert main(["validate", str(path)]) == 0
        assert "w-cli: OK" in capsys.readouterr().out

    def test_invalid_workflow_file(self, capsys, tmp_path):
        from repro.workflow.io import workflow_to_xml
        from repro.workflow.model import Step, Workflow

        workflow = Workflow("w-bad", "bad", (Step("a", "ghost.module"),))
        path = tmp_path / "wf.xml"
        path.write_text(workflow_to_xml(workflow))
        assert main(["validate", str(path)]) == 1
        assert "unknown module" in capsys.readouterr().out

    def test_decayed_workflow_needs_flag(self, capsys, tmp_path):
        from repro.workflow.io import workflow_to_xml
        from repro.workflow.model import Step, Workflow

        workflow = Workflow("w-old", "old", (Step("a", "old.get_kegg_gene_s"),))
        path = tmp_path / "wf.xml"
        path.write_text(workflow_to_xml(workflow))
        assert main(["validate", str(path)]) == 1
        assert main(["validate", "--include-decayed", str(path)]) == 0


class TestEngineStats:
    def test_engine_stats_reports_cache_hits(self, capsys):
        assert main(["engine-stats", "--limit", "15", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "15 modules x 2 pass(es)" in out
        assert "Invocation engine — cost accounting" in out
        assert "cache:           15 hits" in out

    def test_engine_stats_parallel_with_faults(self, capsys):
        assert main([
            "engine-stats", "--limit", "10", "--repeat", "1",
            "--parallelism", "4", "--fault-rate", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "parallelism 4" in out

    def test_engine_stats_cache_disabled(self, capsys):
        assert main([
            "engine-stats", "--limit", "5", "--repeat", "2", "--cache-size", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "cache:           0 hits" in out


class TestEngineStatsJson:
    def test_json_output_is_parseable(self, capsys):
        import json

        assert main(["engine-stats", "--limit", "5", "--repeat", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["modules"] == 5
        assert payload["passes"] == 1
        assert "cache" in payload["stats"]
        assert "health" in payload["stats"]

    def test_module_filter(self, capsys):
        import json

        assert main([
            "engine-stats", "--module", "ret.get_uniprot_record", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["modules"] == 1

    def test_unknown_module_exits_nonzero(self, capsys):
        assert main(["engine-stats", "--module", "no.such"]) == 2
        assert "no module" in capsys.readouterr().err


class TestCampaignCli:
    def _db(self, tmp_path):
        return str(tmp_path / "campaigns.sqlite")

    def test_run_status_resume_round_trip(self, capsys, tmp_path):
        import json

        db = self._db(tmp_path)
        assert main(["campaign", "run", "c1", "--db", db, "--limit", "4"]) == 0
        run_out = capsys.readouterr().out
        assert "Campaign c1 (seed 2014)" in run_out
        assert "modules annotated: 4/4" in run_out
        assert "status: complete" in run_out

        assert main(["campaign", "status", "c1", "--db", db]) == 0
        status_out = capsys.readouterr().out
        assert "done 4/4" in status_out
        assert "complete" in status_out

        assert main(["campaign", "status", "c1", "--db", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_done"] == 4
        assert payload["n_pending"] == 0
        assert payload["status"] == "complete"

        # Resuming a finished campaign re-renders the identical report.
        assert main(["campaign", "resume", "c1", "--db", db]) == 0
        assert capsys.readouterr().out == run_out

    def test_duplicate_campaign_id_exits_nonzero(self, capsys, tmp_path):
        db = self._db(tmp_path)
        assert main(["campaign", "run", "c1", "--db", db, "--limit", "2"]) == 0
        capsys.readouterr()
        assert main(["campaign", "run", "c1", "--db", db, "--limit", "2"]) == 2
        assert "already exists" in capsys.readouterr().err

    def test_unknown_campaign_exits_nonzero(self, capsys, tmp_path):
        db = self._db(tmp_path)
        assert main(["campaign", "status", "ghost", "--db", db]) == 2
        assert "no campaign 'ghost'" in capsys.readouterr().err
        assert main(["campaign", "resume", "ghost", "--db", db]) == 2
        assert "no campaign 'ghost'" in capsys.readouterr().err

    def test_status_without_campaigns(self, capsys, tmp_path):
        import json

        db = self._db(tmp_path)
        assert main(["campaign", "status", "--db", db]) == 0
        assert "no campaigns" in capsys.readouterr().out
        assert main(["campaign", "status", "--db", db, "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == []

    def test_degraded_campaign_renders_manifest(self, capsys, tmp_path):
        db = self._db(tmp_path)
        assert main([
            "campaign", "run", "dark", "--db", db, "--limit", "4",
            "--permanent-blackout", "EBI", "--failure-threshold", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "status: degraded" in out
        assert "Degradation manifest" in out
        assert "coverage impact:  3/4 modules skipped" in out
        assert "provider EBI unreachable (breaker open)" in out
        assert main(["campaign", "status", "dark", "--db", db]) == 0
        status_out = capsys.readouterr().out
        assert "degraded" in status_out
        assert "skipped xf.uniprot_to_fasta" in status_out
