"""Behavioral tests of the format-transformation family."""

import pytest

from repro.biodb import formats, records
from repro.modules.errors import InvalidInputError
from repro.modules.interfaces import invoke_via_interface
from repro.values import (
    EMBL_FLAT,
    FASTA,
    GENBANK_FLAT,
    UNIPROT_FLAT,
    TypedValue,
)


@pytest.fixture(scope="module")
def uniprot_text(universe):
    fields = records.protein_fields(universe, universe.proteins[10])
    return formats.render_uniprot_flat(fields)


@pytest.fixture(scope="module")
def embl_text(universe):
    fields = records.gene_fields(universe, universe.genes[10])
    return formats.render_embl_flat(fields)


def _convert(ctx, module, payload, structural):
    value = TypedValue(payload, structural)
    return invoke_via_interface(module, ctx, {module.inputs[0].name: value})


class TestContentPreservation:
    def test_uniprot_to_fasta_keeps_sequence(self, ctx, catalog_by_id, uniprot_text):
        out = _convert(
            ctx, catalog_by_id["xf.uniprot_to_fasta"], uniprot_text, UNIPROT_FLAT
        )
        fasta = formats.parse_fasta(out["converted"].payload)
        source = formats.parse_uniprot_flat(uniprot_text)
        assert fasta["sequence"] == source["sequence"]
        assert fasta["accession"] == source["accession"]

    def test_embl_genbank_round_trip(self, ctx, catalog_by_id, embl_text):
        genbank = _convert(
            ctx, catalog_by_id["xf.embl_to_genbank"], embl_text, EMBL_FLAT
        )
        embl_again = _convert(
            ctx, catalog_by_id["xf.genbank_to_embl"],
            genbank["converted"].payload, GENBANK_FLAT,
        )
        original = formats.parse_embl_flat(embl_text)
        rebuilt = formats.parse_embl_flat(embl_again["converted"].payload)
        assert rebuilt["accession"] == original["accession"]
        assert rebuilt["sequence"] == original["sequence"]

    def test_xml_json_conversions_preserve_fields(
        self, ctx, catalog_by_id, uniprot_text
    ):
        xml = _convert(ctx, catalog_by_id["xf.uniprot_to_xml"], uniprot_text,
                       UNIPROT_FLAT)
        json_out = _convert(
            ctx, catalog_by_id["xf.protein_xml_to_json"],
            xml["converted"].payload, None or xml["converted"].structural,
        )
        fields = formats.parse_json(json_out["converted"].payload)
        assert fields["accession"] == formats.parse_uniprot_flat(uniprot_text)[
            "accession"
        ]

    def test_pdb_to_fasta_extracts_seqres(self, ctx, catalog_by_id, universe):
        structure = universe.structures[0]
        text = formats.render_pdb_text(records.structure_fields(universe, structure))
        out = _convert(ctx, catalog_by_id["xf.pdb_to_fasta"], text,
                       catalog_by_id["xf.pdb_to_fasta"].inputs[0].structural)
        fasta = formats.parse_fasta(out["converted"].payload)
        assert fasta["sequence"] == universe.proteins[structure.protein_ordinal].sequence
        assert out["converted"].concept == "ProteinSequenceRecord"


class TestRejection:
    def test_wrong_format_rejected_by_sniffing(self, ctx, catalog_by_id, embl_text):
        with pytest.raises(InvalidInputError):
            _convert(ctx, catalog_by_id["xf.genbank_to_embl"], embl_text,
                     GENBANK_FLAT)

    def test_garbage_rejected(self, ctx, catalog_by_id):
        with pytest.raises(InvalidInputError):
            _convert(ctx, catalog_by_id["xf.uniprot_to_fasta"],
                     "ID   but nothing else", UNIPROT_FLAT)


class TestFastaUtilities:
    def test_utility_processes_protein_and_nucleotide_identically(
        self, ctx, catalog_by_id, universe
    ):
        module = catalog_by_id["xf.fasta_to_tab"]
        protein_fasta = formats.render_fasta(
            records.protein_fields(universe, universe.proteins[1])
        )
        gene_fasta = formats.render_fasta(
            records.gene_fields(universe, universe.genes[1])
        )
        out_protein = _convert(ctx, module, protein_fasta, FASTA)
        out_gene = _convert(ctx, module, gene_fasta, FASTA)
        # One behavior class; output concepts track the actual content.
        assert module.behavior.n_classes == 1
        assert out_protein["converted"].concept == "ProteinSequenceRecord"
        assert out_gene["converted"].concept == "NucleotideSequenceRecord"

    def test_uppercase_utility(self, ctx, catalog_by_id):
        text = ">x test\nmkwl\n"
        out = _convert(ctx, catalog_by_id["xf.fasta_uppercase"], text, FASTA)
        assert "MKWL" in out["converted"].payload

    def test_header_clean_strips_description(self, ctx, catalog_by_id):
        text = ">x some long description\nMKWL\n"
        out = _convert(ctx, catalog_by_id["xf.fasta_header_clean"], text, FASTA)
        assert out["converted"].payload.splitlines()[0] == ">x"

    def test_fasta_to_plain_classifies_output(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["xf.fasta_to_plain"]
        gene_fasta = formats.render_fasta(
            records.gene_fields(universe, universe.genes[2])
        )
        out = _convert(ctx, module, gene_fasta, FASTA)
        assert out["sequence"].payload == universe.genes[2].dna_sequence
        assert out["sequence"].concept == "DNASequence"


class TestSpecialTransformations:
    def test_clustal_to_fasta_preserves_rows(self, ctx, catalog_by_id, universe):
        from repro.biodb.reports import render_multiple_alignment

        entries = [("seqA", "MKWL"), ("seqB", "MKWI")]
        text = render_multiple_alignment(entries)
        module = catalog_by_id["xf.clustal_to_fasta"]
        out = _convert(ctx, module, text, module.inputs[0].structural)
        assert out["converted"].payload.count(">") == 2

    def test_seq_to_fasta_wraps_sequence(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["xf.seq_to_fasta"]
        protein = universe.proteins[0]
        out = _convert(ctx, module, protein.sequence, module.inputs[0].structural)
        assert formats.parse_fasta(out["record"].payload)["sequence"] == protein.sequence

    def test_seq_to_fasta_rejects_dna(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["xf.seq_to_fasta"]
        with pytest.raises(InvalidInputError):
            _convert(ctx, module, universe.genes[0].dna_sequence,
                     module.inputs[0].structural)

    def test_homology_to_csv_counts_hits(self, ctx, catalog_by_id, universe):
        from repro.biodb.reports import render_homology_report

        report = render_homology_report(
            "q", [("P10000", "kinase", 12), ("P10001", "ligase", 8)],
            "uniprot", "blastp",
        )
        module = catalog_by_id["xf.homology_to_csv"]
        out = _convert(ctx, module, report, module.inputs[0].structural)
        assert "P10000" in out["converted"].payload
        assert out["converted"].payload.count("\n") == 2  # header + one row
