"""Unit tests for structural types and typed values."""

import pytest

from repro.values import (
    BOOLEAN,
    FASTA,
    FLOAT,
    GENBANK_FLAT,
    INTEGER,
    PLAIN_TEXT,
    STRING,
    UNIPROT_FLAT,
    TypedValue,
    all_types,
    by_name,
    compatible,
    list_of,
    list_value,
    string_value,
)


class TestStructuralTypes:
    def test_atomic_types_are_their_own_base(self):
        assert STRING.base == "String"
        assert INTEGER.base == "Integer"

    def test_format_types_refine_string(self):
        assert FASTA.is_textual
        assert UNIPROT_FLAT.base == "String"

    def test_integer_is_not_textual(self):
        assert not INTEGER.is_textual
        assert not FLOAT.is_textual

    def test_list_type_wraps_item(self):
        lst = list_of(STRING)
        assert lst.is_list
        assert lst.item == STRING
        assert str(lst) == "List[String]"

    def test_nested_list_types(self):
        nested = list_of(list_of(FLOAT))
        assert nested.item.is_list
        assert nested.item.item == FLOAT

    def test_by_name_round_trips_atomic(self):
        for t in all_types():
            assert by_name(t.name) == t

    def test_by_name_parses_list_syntax(self):
        assert by_name("List[Float]") == list_of(FLOAT)
        assert by_name("List[List[String]]") == list_of(list_of(STRING))

    def test_by_name_unknown_raises(self):
        with pytest.raises(KeyError):
            by_name("NoSuchType")

    def test_all_types_contains_every_format(self):
        names = {t.name for t in all_types()}
        assert {"FastaFormat", "UniProtFlatFormat", "XmlFormat"} <= names


class TestCompatibility:
    def test_identical_types_compatible(self):
        assert compatible(FASTA, FASTA)
        assert compatible(INTEGER, INTEGER)

    def test_any_text_format_feeds_plain_string(self):
        assert compatible(FASTA, STRING)
        assert compatible(GENBANK_FLAT, STRING)
        assert compatible(PLAIN_TEXT, STRING)

    def test_plain_string_does_not_feed_specific_format(self):
        assert not compatible(STRING, FASTA)

    def test_distinct_formats_incompatible(self):
        assert not compatible(FASTA, UNIPROT_FLAT)

    def test_numeric_types_do_not_cross(self):
        assert not compatible(INTEGER, FLOAT)
        assert not compatible(FLOAT, INTEGER)
        assert not compatible(BOOLEAN, INTEGER)

    def test_list_compatibility_is_elementwise(self):
        assert compatible(list_of(FASTA), list_of(STRING))
        assert not compatible(list_of(STRING), list_of(FASTA))

    def test_list_never_feeds_scalar(self):
        assert not compatible(list_of(STRING), STRING)
        assert not compatible(STRING, list_of(STRING))


class TestTypedValue:
    def test_scalar_value_roundtrip(self):
        value = TypedValue("ACGT", STRING, "DNASequence")
        assert value.payload == "ACGT"
        assert value.concept == "DNASequence"

    def test_list_value_requires_tuple(self):
        with pytest.raises(TypeError):
            TypedValue(["a", "b"], list_of(STRING))

    def test_list_value_accepts_tuple(self):
        value = TypedValue(("a", "b"), list_of(STRING))
        assert value.payload == ("a", "b")

    def test_feeds_delegates_to_compatible(self):
        value = TypedValue(">x\nMK\n", FASTA)
        assert value.feeds(STRING)
        assert value.feeds(FASTA)
        assert not value.feeds(UNIPROT_FLAT)

    def test_with_concept_returns_annotated_copy(self):
        value = TypedValue("P12345", STRING)
        annotated = value.with_concept("UniProtAccession")
        assert annotated.concept == "UniProtAccession"
        assert value.concept is None

    def test_render_truncates_long_text(self):
        value = TypedValue("A" * 200, STRING)
        assert len(value.render(limit=30)) == 30
        assert value.render(limit=30).endswith("...")

    def test_render_list_shows_ellipsis(self):
        value = TypedValue(tuple("ABCDE"), list_of(STRING))
        assert "..." in value.render()

    def test_render_short_list_has_no_ellipsis(self):
        value = TypedValue(("A", "B"), list_of(STRING))
        assert "..." not in value.render()

    def test_string_value_validates_payload(self):
        with pytest.raises(TypeError):
            string_value(42, STRING)

    def test_string_value_rejects_non_textual_type(self):
        with pytest.raises(TypeError):
            string_value("x", INTEGER)

    def test_list_value_builder(self):
        value = list_value(["x", "y"], list_of(STRING), "KeywordSet")
        assert value.payload == ("x", "y")
        assert value.concept == "KeywordSet"

    def test_list_value_rejects_scalar_type(self):
        with pytest.raises(TypeError):
            list_value(["x"], STRING)

    def test_values_are_hashable_and_frozen(self):
        value = TypedValue("x", STRING)
        with pytest.raises(AttributeError):
            value.payload = "y"
        assert hash(value) == hash(TypedValue("x", STRING))
