"""Tests for the automated behavior describer (§5 mechanized)."""

import pytest

from repro.core.description import (
    BehaviorDescriber,
    run_describer_study,
)
from repro.modules.model import Category


@pytest.fixture(scope="module")
def describer():
    return BehaviorDescriber()


@pytest.fixture(scope="module")
def examples(setup):
    return {mid: r.examples for mid, r in setup.reports.items()}


class TestSingleModuleDescriptions:
    def test_retrieval_described(self, describer, examples):
        desc = describer.describe(
            "ret.get_uniprot_record", examples["ret.get_uniprot_record"]
        )
        assert desc.guessed_category is Category.DATA_RETRIEVAL
        assert "identifier" in desc.text
        assert desc.confident

    def test_mapping_described_with_schemes(self, describer, examples):
        desc = describer.describe(
            "map.uniprot_to_kegg", examples["map.uniprot_to_kegg"]
        )
        assert desc.guessed_category is Category.MAPPING_IDENTIFIERS
        assert "UniProtAccession" in desc.text
        assert "KEGGGeneId" in desc.text

    def test_transformation_described(self, describer, examples):
        desc = describer.describe(
            "xf.uniprot_to_fasta", examples["xf.uniprot_to_fasta"]
        )
        assert desc.guessed_category is Category.FORMAT_TRANSFORMATION
        assert "FASTA" in desc.text

    def test_filtering_described(self, describer, examples):
        desc = describer.describe(
            "fl.filter_proteins_by_length",
            examples["fl.filter_proteins_by_length"],
        )
        assert desc.guessed_category is Category.FILTERING
        assert "subset" in desc.text

    def test_complex_analysis_opaque(self, describer, examples):
        """The paper's central §5 finding: data analysis does not reveal
        itself through data examples."""
        desc = describer.describe("an.get_concept", examples["an.get_concept"])
        assert desc.guessed_category is None
        assert not desc.confident

    def test_no_examples_is_undecidable(self, describer):
        desc = describer.describe("whatever", [])
        assert desc.guessed_category is None
        assert "no data examples" in desc.text


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self, setup, examples):
        return run_describer_study(setup.catalog, examples)

    def test_mapping_nearly_perfect(self, study):
        assert study.accuracy(Category.MAPPING_IDENTIFIERS) > 0.95

    def test_retrieval_high(self, study):
        assert study.accuracy(Category.DATA_RETRIEVAL) >= 0.75

    def test_transformation_high(self, study):
        assert study.accuracy(Category.FORMAT_TRANSFORMATION) >= 0.75

    def test_analysis_opaque(self, study):
        """Mirrors the paper: complex analysis is not identifiable from
        data examples."""
        assert study.accuracy(Category.DATA_ANALYSIS) <= 0.15

    def test_machine_beats_humans_on_filtering(self, study):
        """A deliberate divergence from the human study: detecting that
        the output is a *subset* of the input is mechanical, even though
        inferring the filtering criterion (what the paper's users were
        asked for) is not.  Documented in EXPERIMENTS.md."""
        assert study.accuracy(Category.FILTERING) > 5 / 27

    def test_every_category_scored(self, study):
        assert set(study.per_category) == set(Category)

    def test_totals_match_table3(self, study):
        totals = {c: t for c, (_k, t) in study.per_category.items()}
        assert totals[Category.FORMAT_TRANSFORMATION] == 53
        assert totals[Category.FILTERING] == 27
