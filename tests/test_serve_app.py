"""Tests of the annotation HTTP server: endpoint coverage and error
mapping, rate-limit / admission 429s with Retry-After, deadline 504s,
the Prometheus exposition's repro_http_* series, trace-id join into
engine spans, campaign endpoints over a real journal, and the
ServeError port-in-use regression for both server classes."""

from __future__ import annotations

import http.client
import json

import pytest
from tests.test_obs_metrics import parse_exposition

from repro.obs.metrics import MetricsExporter, MetricsServer, ServeError
from repro.serve import AnnotationServer, AnnotationService, ServeConfig

MODULE_A = "xf.uniprot_to_fasta"
MODULE_B = "xf.uniprot_to_xml"


@pytest.fixture(scope="module")
def service():
    return AnnotationService(memoize=True)


@pytest.fixture
def server(service):
    with AnnotationServer(service, ServeConfig(rate=None)) as running:
        yield running


def request(
    server,
    method: str,
    path: str,
    body=None,
    headers=None,
):
    """One request; returns (status, response headers, decoded body)."""
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=30.0
    )
    try:
        raw = None if body is None else json.dumps(body)
        connection.request(method, path, body=raw, headers=dict(headers or {}))
        response = connection.getresponse()
        payload = response.read()
        try:
            decoded = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            decoded = payload.decode(errors="replace")
        return response.status, dict(response.getheaders()), decoded
    finally:
        connection.close()


# ----------------------------------------------------------------------
# Happy paths
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self, server):
        status, headers, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert isinstance(body["registered_modules"], int)
        assert headers["X-Trace-Id"] == body["trace_id"]

    def test_register_is_idempotent(self, server):
        status, _, body = request(
            server, "POST", "/v1/modules", {"module_id": MODULE_A}
        )
        assert status in (200, 201)  # 201 unless another test got there first
        assert body["module_id"] == MODULE_A
        status, _, body = request(
            server, "POST", "/v1/modules", {"module_id": MODULE_A}
        )
        assert status == 200
        assert body["registered"] is False
        status, _, body = request(server, "GET", "/v1/modules")
        assert status == 200
        assert MODULE_A in body["modules"]

    def test_generate_then_cached(self, server):
        request(server, "POST", "/v1/modules", {"module_id": MODULE_A})
        status, _, body = request(
            server, "POST", "/v1/generate", {"module_id": MODULE_A}
        )
        assert status == 200
        assert body["module_id"] == MODULE_A
        assert body["n_examples"] > 0
        assert body["report"]["module_id"] == MODULE_A
        status, _, again = request(
            server, "POST", "/v1/generate", {"module_id": MODULE_A}
        )
        assert status == 200
        assert again["cached"] is True
        assert again["n_examples"] == body["n_examples"]

    def test_match_includes_an_equivalent_candidate(self, server):
        request(server, "POST", "/v1/modules", {"module_id": MODULE_A})
        status, _, body = request(
            server, "POST", "/v1/match", {"module_id": MODULE_A}
        )
        assert status == 200
        assert body["module_id"] == MODULE_A
        by_candidate = {m["candidate_id"]: m for m in body["matches"]}
        # A module always matches its own behavior.
        assert by_candidate[MODULE_A]["kind"] == "equivalent"


# ----------------------------------------------------------------------
# Error mapping
# ----------------------------------------------------------------------
class TestErrorMapping:
    def test_bad_json_body_is_400(self, server):
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30.0
        )
        try:
            connection.request("POST", "/v1/generate", body="{nope")
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 400
        assert "not JSON" in body["error"]

    def test_missing_module_id_is_400(self, server):
        status, _, body = request(server, "POST", "/v1/generate", {"oops": 1})
        assert status == 400
        assert "module_id" in body["error"]

    @pytest.mark.parametrize("bad", ["soon", "-5", "0"])
    def test_bad_deadline_header_is_400(self, server, bad):
        status, _, body = request(
            server,
            "POST",
            "/v1/generate",
            {"module_id": MODULE_A},
            headers={"X-Deadline-Ms": bad},
        )
        assert status == 400
        assert "X-Deadline-Ms" in body["error"]

    def test_unknown_module_is_404(self, server):
        for path in ("/v1/modules", "/v1/generate", "/v1/match"):
            status, _, body = request(
                server, "POST", path, {"module_id": "no.such_module"}
            )
            assert status == 404
            assert "no.such_module" in body["error"]

    def test_unknown_route_is_404(self, server):
        assert request(server, "GET", "/v2/anything")[0] == 404
        assert request(server, "GET", "/v1/nothing")[0] == 404

    def test_wrong_method_is_405(self, server):
        assert request(server, "GET", "/v1/generate")[0] == 405
        assert request(server, "GET", "/v1/match")[0] == 405
        assert request(server, "POST", "/v1/campaigns/nightly")[0] == 405

    def test_unregistered_module_is_409(self, server):
        # ret.* modules exist in the catalog but no test registers them.
        status, _, body = request(
            server, "POST", "/v1/generate", {"module_id": "ret.get_uniprot_record"}
        )
        assert status == 409
        assert "not registered" in body["error"]

    def test_campaigns_without_journal_is_404(self, server):
        status, _, body = request(server, "GET", "/v1/campaigns/nightly")
        assert status == 404
        assert "journal" in body["error"]


# ----------------------------------------------------------------------
# Backpressure: rate limiting, saturation, deadlines
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_rate_limited_tenant_gets_429_others_unaffected(self, service):
        config = ServeConfig(rate=0.001, burst=2)
        with AnnotationServer(service, config) as server:
            alice = {"X-Api-Key": "alice"}
            assert request(server, "GET", "/v1/modules", headers=alice)[0] == 200
            assert request(server, "GET", "/v1/modules", headers=alice)[0] == 200
            status, headers, body = request(
                server, "GET", "/v1/modules", headers=alice
            )
            assert status == 429
            assert body["reason"] == "rate-limited"
            assert body["retry_after_s"] > 0
            assert int(headers["Retry-After"]) >= 1
            # bob's bucket is untouched by alice's spending.
            assert (
                request(server, "GET", "/v1/modules", headers={"X-Api-Key": "bob"})[0]
                == 200
            )
            snapshot = server.http_snapshot()
            assert snapshot["rate_limited_by_tenant"] == {"alice": 1}
            assert snapshot["tenants"]["alice"]["limited"] == 1
            assert snapshot["tenants"]["bob"]["limited"] == 0

    def test_saturated_server_sheds_with_retry_after(self, service):
        config = ServeConfig(max_inflight=1, max_queue=0, rate=None)
        with AnnotationServer(service, config) as server:
            server.admission.acquire()  # wedge the only slot
            try:
                status, headers, body = request(server, "GET", "/v1/modules")
                assert status == 429
                assert body["reason"] == "saturated"
                assert int(headers["Retry-After"]) >= 1
                # Health and metrics bypass admission: a saturated
                # server stays observable.
                assert request(server, "GET", "/healthz")[0] == 200
                assert request(server, "GET", "/metrics")[0] == 200
            finally:
                server.admission.release()
            assert request(server, "GET", "/v1/modules")[0] == 200
            snapshot = server.http_snapshot()
            assert snapshot["shed_total"] == 1

    def test_spent_deadline_is_504(self):
        service = AnnotationService(memoize=False, latency_ms=20.0)
        with AnnotationServer(service, ServeConfig(rate=None)) as server:
            request(server, "POST", "/v1/modules", {"module_id": MODULE_A})
            status, _, body = request(
                server,
                "POST",
                "/v1/generate",
                {"module_id": MODULE_A},
                headers={"X-Deadline-Ms": "5"},
            )
            assert status == 504
            assert body["reason"] == "deadline"
            assert server.http_snapshot()["deadline_exceeded_total"] == 1
            # Without the header the same request succeeds.
            status, _, body = request(
                server, "POST", "/v1/generate", {"module_id": MODULE_A}
            )
            assert status == 200
            assert body["n_examples"] > 0


# ----------------------------------------------------------------------
# Observability: exposition, trace join, access log
# ----------------------------------------------------------------------
class TestObservability:
    def test_exposition_carries_http_series(self, server):
        request(server, "GET", "/healthz")
        request(server, "POST", "/v1/modules", {"module_id": MODULE_A})
        server.sampler.sample()
        status, headers, text = request(server, "GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        types, samples = parse_exposition(text)
        assert types["repro_http_requests_total"] == "counter"
        assert types["repro_http_request_latency_ms"] == "histogram"
        assert types["repro_http_inflight"] == "gauge"
        assert types["repro_http_shed_total"] == "counter"
        assert types["repro_slo_burn_rate"] == "gauge"
        healthz_key = (
            "repro_http_requests_total",
            (("endpoint", "/healthz"), ("method", "GET"), ("status", "200")),
        )
        assert samples[healthz_key] >= 1
        assert samples[("repro_http_inflight_limit", ())] == 8
        no_5xx = [
            key
            for key in samples
            if key[0] == "repro_http_requests_total"
            and dict(key[1])["status"].startswith("5")
        ]
        assert no_5xx == []

    def test_metrics_json_merges_http_and_slo(self, server):
        request(server, "GET", "/healthz")
        status, _, body = request(server, "GET", "/metrics.json")
        assert status == 200
        assert body["http"]["requests_total"] >= 1
        assert "slo" in body
        assert body["http"]["max_inflight"] == 8

    def test_trace_id_joins_engine_spans(self):
        service = AnnotationService(memoize=False)
        with AnnotationServer(service, ServeConfig(rate=None)) as server:
            request(server, "POST", "/v1/modules", {"module_id": MODULE_B})
            status, headers, body = request(
                server,
                "POST",
                "/v1/generate",
                {"module_id": MODULE_B},
                headers={"X-Api-Key": "acme"},
            )
            assert status == 200
            trace_id = headers["X-Trace-Id"]
            assert body["trace_id"] == trace_id
            attributes = [
                span.attributes for span in service.engine.tracer.traces()
            ]
        tagged = [
            attrs
            for attrs in attributes
            if attrs.get("http_trace_id") == trace_id
        ]
        # Every invocation made on this request's behalf carries its id.
        assert tagged
        assert all(attrs["http_tenant"] == "acme" for attrs in tagged)

    def test_access_log_is_structured(self, service):
        class Stream:
            def __init__(self):
                self.lines = []

            def write(self, line):
                self.lines.append(line)

            def flush(self):
                pass

        stream = Stream()
        config = ServeConfig(rate=None, log_stream=stream)
        with AnnotationServer(service, config) as server:
            status, headers, _ = request(
                server, "GET", "/healthz", headers={"X-Api-Key": "ops"}
            )
            assert status == 200
            entries = [json.loads(line) for line in stream.lines]
            assert entries == list(server.access_log)
        entry = entries[-1]
        assert entry["trace_id"] == headers["X-Trace-Id"]
        assert entry["tenant"] == "ops"
        assert entry["method"] == "GET"
        assert entry["path"] == "/healthz"
        assert entry["status"] == 200
        assert entry["elapsed_ms"] >= 0


# ----------------------------------------------------------------------
# Campaign endpoints over a real journal
# ----------------------------------------------------------------------
class TestCampaignEndpoints:
    def test_progress_and_alerts_from_the_journal(self, service, tmp_path):
        config = ServeConfig(rate=None, journal_db=str(tmp_path / "serve.sqlite"))
        with AnnotationServer(service, config) as server:
            request(server, "GET", "/healthz")
            server.sampler.sample()
            status, _, body = request(server, "GET", "/v1/campaigns/http-server")
            assert status == 200
            assert body["campaign_id"] == "http-server"
            assert body["n_planned"] == 0
            status, _, body = request(
                server, "GET", "/v1/campaigns/http-server/alerts"
            )
            assert status == 200
            assert body["campaign_id"] == "http-server"
            assert isinstance(body["alerts"], list)
            status, _, body = request(server, "GET", "/v1/campaigns/nope")
            assert status == 404
            assert "nope" in body["error"]
            assert (
                request(server, "GET", "/v1/campaigns/http-server/bogus")[0]
                == 404
            )


# ----------------------------------------------------------------------
# Port-in-use regression: both server classes must refuse with a
# ServeError naming the squatted port, not a bare OSError traceback.
# ----------------------------------------------------------------------
class TestPortInUse:
    def test_annotation_server_reports_squatted_port(self, service):
        with AnnotationServer(service, ServeConfig()) as holder:
            port = holder.port
            with pytest.raises(ServeError, match=str(port)):
                AnnotationServer(service, ServeConfig(port=port))

    def test_metrics_server_reports_squatted_port(self, service):
        with AnnotationServer(service, ServeConfig()) as holder:
            port = holder.port
            with pytest.raises(ServeError, match=str(port)):
                MetricsServer(MetricsExporter(service.engine), port=port)
