"""Tests of the resilience layer: circuit breaker, module health, and
the retry × blackout interplay."""

from __future__ import annotations

import pytest

from repro.engine import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    CircuitBreakingInvoker,
    CircuitOpenError,
    EngineConfig,
    FaultPlan,
    InvocationEngine,
    ModuleHealthRegistry,
    RetryPolicy,
)
from repro.modules.errors import InvalidInputError, ModuleUnavailableError


class ScriptedInvoker:
    """An invoker that replays a script of outcomes, then succeeds."""

    def __init__(self, script=(), outputs=None):
        self.script = list(script)
        self.outputs = outputs if outputs is not None else {}
        self.calls = 0

    def invoke(self, module, ctx, bindings):
        self.calls += 1
        if self.script:
            outcome = self.script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
        return dict(self.outputs)


class FakeClock:
    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds


@pytest.fixture
def module(catalog_by_id):
    return catalog_by_id["ret.get_uniprot_record"]


@pytest.fixture
def good_bindings(ctx, pool, module):
    value = pool.get_instance(
        module.inputs[0].concept, module.inputs[0].structural
    )
    assert value is not None
    return {module.inputs[0].name: value}


# ----------------------------------------------------------------------
# The breaker state machine
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_starts_closed_and_trips_at_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3), clock=clock)
        assert breaker.state("EBI") is BreakerState.CLOSED
        for _ in range(2):
            breaker.record_failure("EBI")
        assert breaker.state("EBI") is BreakerState.CLOSED
        breaker.record_failure("EBI")
        assert breaker.state("EBI") is BreakerState.OPEN

    def test_success_resets_the_failure_run(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure("EBI")
        breaker.record_success("EBI")
        breaker.record_failure("EBI")
        assert breaker.state("EBI") is BreakerState.CLOSED

    def test_open_fast_fails_until_probe_interval(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=10.0), clock=clock
        )
        breaker.record_failure("EBI")
        assert not breaker.allow("EBI")
        clock.now = 9.9
        assert not breaker.allow("EBI")
        clock.now = 10.0
        assert breaker.allow("EBI")  # the probe
        assert breaker.state("EBI") is BreakerState.HALF_OPEN

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=5.0), clock=clock
        )
        breaker.record_failure("EBI")
        clock.now = 5.0
        assert breaker.allow("EBI")
        breaker.record_failure("EBI")
        assert breaker.state("EBI") is BreakerState.OPEN
        # The re-opened circuit waits a full probe interval again.
        clock.now = 9.9
        assert not breaker.allow("EBI")
        clock.now = 10.0
        assert breaker.allow("EBI")

    def test_half_open_closes_after_enough_successes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=1, probe_interval=1.0, half_open_successes=2
            ),
            clock=clock,
        )
        breaker.record_failure("EBI")
        clock.now = 1.0
        assert breaker.allow("EBI")
        breaker.record_success("EBI")
        assert breaker.state("EBI") is BreakerState.HALF_OPEN
        breaker.record_success("EBI")
        assert breaker.state("EBI") is BreakerState.CLOSED

    def test_circuits_are_per_provider(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        breaker.record_failure("EBI")
        assert breaker.state("EBI") is BreakerState.OPEN
        assert breaker.state("NCBI") is BreakerState.CLOSED
        assert breaker.open_providers() == ["EBI"]

    def test_transitions_are_reported(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, probe_interval=1.0),
            clock=clock,
            on_transition=lambda p, old, new: seen.append((p, old, new)),
        )
        breaker.record_failure("EBI")
        clock.now = 1.0
        breaker.allow("EBI")
        breaker.record_success("EBI")
        breaker.record_success("EBI")
        states = [(old.value, new.value) for _p, old, new in seen]
        assert states == [
            ("closed", "open"),
            ("open", "half-open"),
            ("half-open", "closed"),
        ]

    def test_snapshot_counts_fast_failures(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1))
        breaker.record_failure("EBI")
        for _ in range(4):
            breaker.allow("EBI")
        snap = breaker.snapshot()
        assert snap["EBI"]["state"] == "open"
        assert snap["EBI"]["fast_failures"] == 4
        assert snap["EBI"]["times_opened"] == 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(probe_interval=-1)
        with pytest.raises(ValueError):
            BreakerPolicy(half_open_successes=0)


# ----------------------------------------------------------------------
# The breaking invoker
# ----------------------------------------------------------------------
class TestCircuitBreakingInvoker:
    def test_open_circuit_never_reaches_the_inner_invoker(
        self, module, ctx, good_bindings
    ):
        clock = FakeClock()
        inner = ScriptedInvoker([ModuleUnavailableError("down")] * 50)
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=2, probe_interval=1000.0), clock=clock
        )
        invoker = CircuitBreakingInvoker(inner, breaker)
        for _ in range(2):
            with pytest.raises(ModuleUnavailableError):
                invoker.invoke(module, ctx, good_bindings)
        for _ in range(20):
            with pytest.raises(CircuitOpenError):
                invoker.invoke(module, ctx, good_bindings)
        # 22 caller-visible failures, but only 2 provider round trips.
        assert inner.calls == 2

    def test_invalid_input_counts_as_an_answer(self, module, ctx, good_bindings):
        inner = ScriptedInvoker(
            [ModuleUnavailableError("down"), InvalidInputError("bad")] * 3
        )
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        invoker = CircuitBreakingInvoker(inner, breaker)
        for error in (ModuleUnavailableError, InvalidInputError) * 3:
            with pytest.raises(error):
                invoker.invoke(module, ctx, good_bindings)
        # The rejections keep resetting the failure run: never trips.
        assert breaker.state(module.provider) is BreakerState.CLOSED

    def test_probe_success_readmits_the_provider(self, module, ctx, good_bindings):
        clock = FakeClock()
        inner = ScriptedInvoker(
            [ModuleUnavailableError("down")] * 2, outputs={"ok": 1}
        )
        breaker = CircuitBreaker(
            BreakerPolicy(
                failure_threshold=2, probe_interval=5.0, half_open_successes=1
            ),
            clock=clock,
        )
        invoker = CircuitBreakingInvoker(inner, breaker)
        for _ in range(2):
            with pytest.raises(ModuleUnavailableError):
                invoker.invoke(module, ctx, good_bindings)
        assert breaker.state(module.provider) is BreakerState.OPEN
        clock.now = 5.0
        assert invoker.invoke(module, ctx, good_bindings) == {"ok": 1}
        assert breaker.state(module.provider) is BreakerState.CLOSED


# ----------------------------------------------------------------------
# Retry × blackout interplay (satellite)
# ----------------------------------------------------------------------
class TestRetryBlackoutInterplay:
    def test_retry_rides_out_exactly_blackout_calls_failures(
        self, module, ctx, good_bindings
    ):
        """A blackout of N calls costs exactly N failed attempts; the
        (N+1)-th attempt is the recovery."""
        blackout_calls = 3
        clock = FakeClock()
        engine = InvocationEngine(
            EngineConfig(
                retry=RetryPolicy(max_attempts=blackout_calls + 1),
                fault_plan=FaultPlan(
                    blackout_providers=frozenset({module.provider}),
                    blackout_calls=blackout_calls,
                ),
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        outputs = engine.invoke(module, ctx, good_bindings)
        assert outputs  # the real module answered after the blackout
        assert engine.telemetry.counter("faults_injected") == blackout_calls
        assert engine.telemetry.counter("retries") == blackout_calls
        assert engine.telemetry.counter("ok") == 1

    def test_one_fewer_attempt_than_the_blackout_fails(
        self, module, ctx, good_bindings
    ):
        blackout_calls = 3
        clock = FakeClock()
        engine = InvocationEngine(
            EngineConfig(
                retry=RetryPolicy(max_attempts=blackout_calls),
                fault_plan=FaultPlan(
                    blackout_providers=frozenset({module.provider}),
                    blackout_calls=blackout_calls,
                ),
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        with pytest.raises(ModuleUnavailableError):
            engine.invoke(module, ctx, good_bindings)
        assert engine.telemetry.counter("retries_exhausted") == 1

    def test_breaker_caps_total_calls_to_an_open_provider(
        self, module, ctx, good_bindings
    ):
        """With a provider permanently dark, the breaker bounds the
        provider round trips at threshold × retry budget; every further
        invocation is a fast failure that costs nothing."""
        clock = FakeClock()
        max_attempts, threshold = 3, 2
        engine = InvocationEngine(
            EngineConfig(
                retry=RetryPolicy(max_attempts=max_attempts),
                fault_plan=FaultPlan(
                    permanent_blackout_providers=frozenset({module.provider}),
                ),
                breaker=BreakerPolicy(
                    failure_threshold=threshold, probe_interval=1000.0
                ),
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        for _ in range(50):
            with pytest.raises(ModuleUnavailableError):
                engine.invoke(module, ctx, good_bindings)
        assert (
            engine.telemetry.counter("faults_injected")
            == max_attempts * threshold
        )
        assert engine.telemetry.counter("breaker_fast_fails") == 50 - threshold
        assert engine.telemetry.counter("breaker_opened") == 1

    def test_probe_interval_bounds_wasted_calls_over_time(
        self, module, ctx, good_bindings
    ):
        """Across a long dark period, provider round trips grow with the
        number of probe intervals, not with the number of invocations."""
        clock = FakeClock()
        engine = InvocationEngine(
            EngineConfig(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0),
                fault_plan=FaultPlan(
                    permanent_blackout_providers=frozenset({module.provider}),
                ),
                breaker=BreakerPolicy(failure_threshold=1, probe_interval=10.0),
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        for step in range(100):
            clock.now = step * 1.0  # 100 invocations over 10 probe windows
            with pytest.raises(ModuleUnavailableError):
                engine.invoke(module, ctx, good_bindings)
        # 1 trip call + ~1 probe per 10s window, each costing 2 attempts.
        assert engine.telemetry.counter("faults_injected") <= 2 * 11


# ----------------------------------------------------------------------
# Module health
# ----------------------------------------------------------------------
class TestModuleHealth:
    def test_outcomes_accumulate(self):
        health = ModuleHealthRegistry()
        health.observe("m1", "EBI", "ok", 2.0)
        health.observe("m1", "EBI", "invalid", 1.0)
        health.observe("m1", "EBI", "unavailable", 0.0)
        record = health.record("m1")
        assert record.calls == 3
        assert record.answered == 2
        assert record.availability == pytest.approx(2 / 3)
        assert record.mean_latency_ms == pytest.approx(1.0)

    def test_dead_needs_consecutive_failures(self):
        health = ModuleHealthRegistry(dead_after=3)
        for _ in range(2):
            health.observe("m1", "EBI", "unavailable")
        health.observe("m1", "EBI", "ok")
        for _ in range(2):
            health.observe("m1", "EBI", "unavailable")
        assert not health.is_dead("m1")
        health.observe("m1", "EBI", "unavailable")
        assert health.is_dead("m1")
        assert health.dead_modules() == ["m1"]

    def test_provider_rollup(self):
        health = ModuleHealthRegistry(dead_after=1)
        health.observe("m1", "EBI", "ok")
        health.observe("m2", "EBI", "unavailable")
        health.observe("m3", "NCBI", "ok")
        summary = health.provider_summary()
        assert summary["EBI"]["calls"] == 2
        assert summary["EBI"]["availability"] == 0.5
        assert summary["EBI"]["dead_modules"] == 1
        assert summary["NCBI"]["availability"] == 1.0
        assert "observed-dead:     1" in health.render()

    def test_engine_feeds_health(self, module, ctx, good_bindings):
        engine = InvocationEngine()
        engine.invoke(module, ctx, good_bindings)
        with pytest.raises(InvalidInputError):
            engine.invoke(module, ctx, {})
        record = engine.health.record(module.module_id)
        assert record.ok == 1
        assert record.invalid == 1
        assert engine.stats()["health"]["n_modules"] == 1

    def test_health_drives_decay_analysis(self, catalog_by_id):
        from repro.workflow.model import Step, Workflow
        from repro.workflow.monitoring import analyze_decay

        module = catalog_by_id["ret.get_uniprot_record"]
        workflow = Workflow(
            "w1", "uses m", steps=(Step("a", module.module_id),)
        )
        health = ModuleHealthRegistry(dead_after=2)
        report = analyze_decay([workflow], catalog_by_id, health=health)
        assert report.n_broken == 0
        for _ in range(2):
            health.observe(module.module_id, module.provider, "unavailable")
        report = analyze_decay([workflow], catalog_by_id, health=health)
        assert report.n_broken == 1
        assert report.observed_dead == [module.module_id]
        assert report.by_provider == {module.provider: 1}

    def test_validation(self):
        with pytest.raises(ValueError):
            ModuleHealthRegistry(dead_after=0)

    def test_rollup_memoized_per_observation_generation(self):
        """Repeated readers are O(modules) once per batch of
        observations — not O(invocations) and not per call."""
        health = ModuleHealthRegistry()
        for index in range(20):
            health.observe(f"m{index}", "EBI", "ok")
        first = health.provider_summary()
        assert health.rollup_computations == 1
        # Quiet registry: any number of reads reuses the rollup.
        for _ in range(50):
            assert health.provider_summary() == first
        assert health.rollup_computations == 1
        # One new observation invalidates it exactly once.
        health.observe("m0", "EBI", "unavailable")
        changed = health.provider_summary()
        health.provider_summary()
        assert health.rollup_computations == 2
        assert changed["EBI"]["calls"] == first["EBI"]["calls"] + 1

    def test_rollup_hands_out_fresh_copies(self):
        health = ModuleHealthRegistry()
        health.observe("m1", "EBI", "ok")
        stolen = health.provider_summary()
        stolen["EBI"]["calls"] = 10_000
        stolen["EBI"]["availability"] = 0.0
        clean = health.provider_summary()
        assert clean["EBI"]["calls"] == 1
        assert clean["EBI"]["availability"] == 1.0
        # Mutating the copy never forced a recomputation either.
        assert health.rollup_computations == 1
