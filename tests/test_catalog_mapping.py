"""Behavioral tests of the identifier-mapping family."""

import pytest

from repro.modules.errors import InvalidInputError
from repro.modules.interfaces import invoke_via_interface
from repro.values import STRING, TypedValue


def _map(ctx, module, accession):
    return invoke_via_interface(module, ctx, {"id": TypedValue(accession, STRING)})


class TestLeafMappings:
    def test_uniprot_to_kegg_follows_the_gene(self, ctx, catalog_by_id, universe):
        protein = universe.proteins[7]
        out = _map(ctx, catalog_by_id["map.uniprot_to_kegg"], protein.uniprot)
        assert out["mapped"].payload == universe.gene_for_protein(protein).kegg_id

    def test_inverse_mappings_round_trip(self, ctx, catalog_by_id, universe):
        protein = universe.proteins[8]
        pir = _map(ctx, catalog_by_id["map.uniprot_to_pir"], protein.uniprot)
        back = _map(ctx, catalog_by_id["map.pir_to_uniprot"], pir["mapped"].payload)
        assert back["mapped"].payload == protein.uniprot

    def test_gene_scheme_triangle(self, ctx, catalog_by_id, universe):
        gene = universe.genes[9]
        entrez = _map(ctx, catalog_by_id["map.kegg_to_entrez"], gene.kegg_id)
        ensembl = _map(
            ctx, catalog_by_id["map.entrez_to_ensembl"], entrez["mapped"].payload
        )
        kegg = _map(
            ctx, catalog_by_id["map.ensembl_to_kegg"], ensembl["mapped"].payload
        )
        assert kegg["mapped"].payload == gene.kegg_id

    def test_pathway_genes_are_symmetric(self, ctx, catalog_by_id, universe):
        pathway = universe.pathways[3]
        genes = _map(ctx, catalog_by_id["map.pathway_to_genes"], pathway.kegg_id)
        assert genes["mapped"].payload
        for kegg_id in genes["mapped"].payload:
            pathways = _map(ctx, catalog_by_id["map.gene_to_pathways"], kegg_id)
            assert pathway.kegg_id in pathways["mapped"].payload

    def test_get_genes_by_enzyme_emits_kegg_ids_only(
        self, ctx, catalog_by_id, universe
    ):
        enzyme = universe.enzymes[2]
        out = _map(ctx, catalog_by_id["map.get_genes_by_enzyme"], enzyme.ec_number)
        assert out["mapped"].concept == "KEGGGeneId"
        assert set(out["mapped"].payload) == {
            universe.genes[o].kegg_id for o in enzyme.gene_ordinals
        }

    def test_go_to_interpro_round_trip(self, ctx, catalog_by_id, universe):
        term = universe.go_terms[4]
        interpro = _map(ctx, catalog_by_id["map.go_to_interpro"], term.go_id)
        back = _map(
            ctx, catalog_by_id["map.interpro_to_go"], interpro["mapped"].payload
        )
        assert back["mapped"].payload == term.go_id

    def test_mapping_rejects_wrong_scheme(self, ctx, catalog_by_id, universe):
        with pytest.raises(InvalidInputError):
            _map(ctx, catalog_by_id["map.uniprot_to_kegg"], universe.genes[0].kegg_id)


class TestNormalizingMappings:
    def test_protein_schemes_map_to_same_gene(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["map.any_protein_to_gene"]
        protein = universe.proteins[6]
        via_uniprot = _map(ctx, module, protein.uniprot)
        via_pir = _map(ctx, module, protein.pir)
        assert via_uniprot["mapped"].payload == via_pir["mapped"].payload

    def test_organism_normalizer_accepts_both_forms(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["map.normalize_organism"]
        taxon = universe.taxon_for_organism(0)
        via_taxon = _map(ctx, module, taxon)
        via_name = _map(ctx, module, "Homo sapiens")
        assert via_taxon["mapped"].payload == via_name["mapped"].payload == taxon


class TestLinkFamily:
    def test_link_dispatches_per_family(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["map.link"]
        protein = universe.proteins[2]
        pathway = universe.pathways[2]
        protein_links = _map(ctx, module, protein.uniprot)
        pathway_links = _map(ctx, module, pathway.kegg_id)
        # protein family -> gene ids; pathway family -> gene ids of pathway
        assert protein_links["links"].payload == (
            universe.gene_for_protein(protein).kegg_id,
        )
        assert set(pathway_links["links"].payload) == {
            universe.genes[o].kegg_id for o in pathway.gene_ordinals
        }

    def test_link_accepts_every_scheme(self, ctx, catalog_by_id, factory, ontology):
        module = catalog_by_id["map.link"]
        accepted = 0
        for concept in ontology.partitions_of("DatabaseAccession"):
            if not ontology.has_realization(concept):
                continue
            value = factory.instances(concept)[0]
            invoke_via_interface(module, ctx, {"id": value})
            accepted += 1
        assert accepted == 20

    def test_link_variants_disagree(self, ctx, catalog_by_id, universe):
        """The seven link utilities are not equivalent to each other."""
        protein = universe.proteins[2]
        link = _map(ctx, catalog_by_id["map.link"], protein.uniprot)
        dblinks = _map(ctx, catalog_by_id["map.dblinks"], protein.uniprot)
        assert link["links"].payload != dblinks["links"].payload

    def test_link_classes_are_families(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["map.link"]
        assert module.behavior.n_classes == 9
        label_uniprot = module.classify(
            ctx, {"id": TypedValue(universe.proteins[1].uniprot, STRING)}
        )
        label_pir = module.classify(
            ctx, {"id": TypedValue(universe.proteins[1].pir, STRING)}
        )
        assert label_uniprot == label_pir == "link-protein"
