"""Tests for the §8 future-work redundancy detector."""

import pytest

from repro.core.examples import Binding, DataExample
from repro.core.redundancy import (
    RedundancyDetector,
    estimate_conciseness,
    jaccard,
    normalize_token,
    tokenize_value,
)
from repro.values import STRING, TABULAR, TypedValue, list_of


def _example(module_id, in_payload, out_payload, in_concept="UniProtAccession",
             out_concept="ProteinSequenceRecord", structural=TABULAR):
    return DataExample(
        module_id=module_id,
        inputs=(Binding("id", TypedValue(in_payload, STRING, in_concept)),),
        outputs=(Binding("out", TypedValue(out_payload, structural, out_concept)),),
    )


class TestTokenization:
    def test_numbers_normalize_to_placeholder(self):
        assert normalize_token("42") == "<NUM>"
        assert normalize_token("3.14") == "<NUM>"
        assert normalize_token("-7") == "<NUM>"

    def test_accessions_normalize_to_scheme(self):
        assert normalize_token("P10000") == "<UniProtAccession>"
        assert normalize_token("GO:0008000") == "<GOTermIdentifier>"

    def test_long_alpha_runs_are_sequences(self):
        assert normalize_token("MKWLASEDFHIKLMNPQ") == "<SEQ>"

    def test_ordinary_words_lowercased(self):
        assert normalize_token("Kinase") == "kinase"

    def test_tokenize_includes_type_evidence(self):
        value = TypedValue("x", TABULAR, "GOAnnotationSet")
        tokens = tokenize_value(value)
        assert "structural:TabularFormat" in tokens
        assert "concept:GOAnnotationSet" in tokens

    def test_tokenize_list_payloads(self):
        value = TypedValue(("P10000", "P10001"), list_of(STRING), "UniProtAccession")
        assert "<UniProtAccession>" in tokenize_value(value)

    def test_jaccard_edges(self):
        assert jaccard(frozenset(), frozenset()) == 1.0
        assert jaccard(frozenset("ab"), frozenset("ab")) == 1.0
        assert jaccard(frozenset("a"), frozenset("b")) == 0.0


class TestDetector:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RedundancyDetector(0.0)
        with pytest.raises(ValueError):
            RedundancyDetector(1.5)

    def test_same_shape_examples_cluster(self):
        detector = RedundancyDetector(0.6)
        examples = [
            _example("m", "P10000", "name\tKinase 1\nlength\t30\n"),
            _example("m", "A20002", "name\tLigase 3\nlength\t44\n",
                     in_concept="PIRAccession"),
        ]
        report = detector.detect("m", examples)
        assert len(report.clusters) == 1
        assert report.estimated_redundant == 1

    def test_different_shape_examples_stay_apart(self):
        detector = RedundancyDetector(0.6)
        examples = [
            _example("m", "P10000", "name\tKinase 1\nlength\t30\n"),
            _example("m", "P10001", "helix\t0.4\nsheet\t0.2\nturns\t0.1\n"),
        ]
        report = detector.detect("m", examples)
        assert len(report.clusters) == 2
        assert report.estimated_redundant == 0

    def test_input_echoes_are_masked(self):
        """Outputs that merely echo the input accession still cluster."""
        detector = RedundancyDetector(0.6)
        examples = [
            _example("m", "P10000", "entry\tP10000\nstatus\tok\n"),
            _example("m", "P10055", "entry\tP10055\nstatus\tok\n"),
        ]
        assert len(detector.detect("m", examples).clusters) == 1

    def test_empty_example_list(self):
        report = RedundancyDetector().detect("m", [])
        assert report.n_examples == 0
        assert report.estimated_conciseness == 1.0

    def test_prune_keeps_one_per_cluster(self):
        detector = RedundancyDetector(0.6)
        examples = [
            _example("m", "P10000", "name\ta\nlength\t1\n"),
            _example("m", "P10001", "name\tb\nlength\t2\n"),
            _example("m", "P10002", "helix\t0.5\n"),
        ]
        pruned = detector.prune("m", examples)
        assert len(pruned) == 2
        assert pruned[0] is examples[0]

    def test_clustering_is_transitive(self):
        """A~B and B~C implies one cluster even when A and C differ more."""
        detector = RedundancyDetector(0.55)
        a = _example("m", "P10000", "alpha\t1\nbeta\t2\ngamma\t3\n")
        b = _example("m", "P10001", "alpha\t1\nbeta\t2\ndelta\t4\n")
        c = _example("m", "P10002", "alpha\t1\ndelta\t4\nepsilon\t5\n")
        report = detector.detect("m", [a, b, c])
        assert len(report.clusters) == 1


class TestAgainstGroundTruth:
    """The detector must recover the catalog's engineered redundancy."""

    @pytest.fixture(scope="class")
    def detector(self):
        return RedundancyDetector(0.5)

    def test_over_partitioned_retrieval_detected(self, setup, detector):
        examples = setup.reports["ret.get_protein_record"].examples
        report = detector.detect("ret.get_protein_record", examples)
        assert report.estimated_redundant == 1  # 2 examples, 1 class

    def test_clean_module_not_flagged(self, setup, detector):
        examples = setup.reports["an.translate_dna"].examples
        report = detector.detect("an.translate_dna", examples)
        assert report.estimated_redundant == 0

    def test_known_false_positive_documented(self, setup, detector):
        """GetBiologicalSequence's ground truth declares one class per
        source database, but that distinction lives in the *input* scheme
        — invisible in the outputs, which are just sequences.  The
        detector necessarily flags it; this is the inherent limit of
        output-based record linkage the paper's future work runs into."""
        examples = setup.reports["ret.get_biological_sequence"].examples
        report = detector.detect("ret.get_biological_sequence", examples)
        assert report.estimated_redundant > 0
        assert setup.evaluations["ret.get_biological_sequence"].conciseness == 1.0

    def test_one_class_analysis_collapses(self, setup, detector):
        examples = setup.reports["an.sequence_checksum"].examples
        report = detector.detect("an.sequence_checksum", examples)
        assert len(report.clusters) == 1  # 5 examples, 1 class

    def test_population_level_quality(self, setup, detector):
        """Module-level redundancy screening: precision and recall both
        above 0.75 over the full 252-module catalog."""
        tp = fp = fn = 0
        for module in setup.catalog:
            examples = setup.reports[module.module_id].examples
            truth = len(examples) - setup.evaluations[module.module_id].classes_covered
            estimate = detector.detect(
                module.module_id, examples
            ).estimated_redundant
            if truth > 0 and estimate > 0:
                tp += 1
            elif truth == 0 and estimate > 0:
                fp += 1
            elif truth > 0 and estimate == 0:
                fn += 1
        assert tp / (tp + fp) > 0.75
        assert tp / (tp + fn) > 0.75

    def test_estimate_conciseness_bulk_api(self, setup):
        examples = {
            module_id: report.examples
            for module_id, report in setup.reports.items()
        }
        estimates = estimate_conciseness(examples, threshold=0.5)
        assert len(estimates) == 252
        assert all(0.0 < value <= 1.0 for value in estimates.values())
