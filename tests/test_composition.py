"""Tests for the §8 future-work composition advisor."""

import pytest

from repro.core.composition import CompositionAdvisor
from repro.workflow.model import link_is_valid


@pytest.fixture(scope="module")
def advisor(setup):
    return CompositionAdvisor(setup.ctx, setup.catalog, setup.pool)


class TestConsumersOfValue:
    def test_uniprot_accession_consumers(self, advisor, setup):
        value = setup.pool.get_instance("UniProtAccession")
        consumers = {m.module_id for m, _input in advisor.consumers_of_value(value)}
        assert "ret.get_uniprot_record" in consumers
        assert "map.uniprot_to_kegg" in consumers
        assert "map.link" in consumers

    def test_consumers_are_verified_not_just_compatible(self, advisor, setup):
        """A PIR accession structurally fits every STRING input, but only
        modules that actually accept PIR values are suggested."""
        value = setup.pool.get_instance("PIRAccession")
        consumers = {m.module_id for m, _input in advisor.consumers_of_value(value)}
        assert "map.pir_to_uniprot" in consumers
        assert "ret.get_uniprot_record" not in consumers  # rejects PIR ids

    def test_limit_respected(self, advisor, setup):
        value = setup.pool.get_instance("UniProtAccession")
        assert len(advisor.consumers_of_value(value, limit=3)) == 3

    def test_semantic_filter_blocks_cross_domain(self, setup):
        """Without the filter, a record string can leak into DatabaseName
        inputs; the filter removes such accidental acceptances."""
        record = setup.pool.get_instance("ProteinSequenceRecord")
        unfiltered = CompositionAdvisor(
            setup.ctx, setup.catalog, setup.pool, semantic_filter=False
        )
        filtered = CompositionAdvisor(setup.ctx, setup.catalog, setup.pool)
        loose = {
            (m.module_id, i) for m, i in unfiltered.consumers_of_value(record)
        }
        strict = {
            (m.module_id, i) for m, i in filtered.consumers_of_value(record)
        }
        assert strict <= loose
        assert ("an.blastp", "database") in loose - strict


class TestSuggestSuccessors:
    def test_record_retrieval_successors(self, advisor, setup):
        producer = next(
            m for m in setup.catalog if m.module_id == "ret.get_uniprot_record"
        )
        suggestions = advisor.suggest_successors(
            producer, setup.reports[producer.module_id].examples
        )
        consumers = {s.consumer_id for s in suggestions}
        assert "xf.uniprot_to_fasta" in consumers
        assert "an.search_simple" in consumers

    def test_value_level_admits_what_annotations_reject(self, advisor, setup):
        """FastaRewrap's output is annotated SequenceRecord, so annotation
        checking rejects feeding it to ProteinSequenceRecord inputs — but
        the actual value is a protein FASTA and works (the Figure 7
        pattern at composition time)."""
        producer = next(m for m in setup.catalog if m.module_id == "xf.fasta_rewrap")
        suggestions = advisor.suggest_successors(
            producer, setup.reports[producer.module_id].examples
        )
        by_consumer = {s.consumer_id: s for s in suggestions}
        assert "xf.fasta_to_uniprot" in by_consumer
        suggestion = by_consumer["xf.fasta_to_uniprot"]
        assert not suggestion.annotation_compatible
        consumer = next(
            m for m in setup.catalog if m.module_id == "xf.fasta_to_uniprot"
        )
        assert not link_is_valid(
            setup.ctx.ontology, producer, "converted", consumer, "record"
        )

    def test_no_self_suggestions(self, advisor, setup):
        producer = next(m for m in setup.catalog if m.module_id == "an.transcribe_dna")
        suggestions = advisor.suggest_successors(
            producer, setup.reports[producer.module_id].examples
        )
        assert all(s.consumer_id != producer.module_id for s in suggestions)

    def test_suggestions_deduplicated(self, advisor, setup):
        producer = next(m for m in setup.catalog if m.module_id == "map.link")
        suggestions = advisor.suggest_successors(
            producer, setup.reports[producer.module_id].examples
        )
        keys = [(s.output, s.consumer_id, s.input) for s in suggestions]
        assert len(set(keys)) == len(keys)

    def test_limit_short_circuits(self, advisor, setup):
        producer = next(
            m for m in setup.catalog if m.module_id == "map.kegg_to_uniprot"
        )
        suggestions = advisor.suggest_successors(
            producer, setup.reports[producer.module_id].examples, limit=4
        )
        assert len(suggestions) == 4

    def test_suggested_links_actually_enact(self, advisor, setup):
        """End-to-end: a suggested composition runs as a workflow."""
        from repro.workflow.enactment import Enactor
        from repro.workflow.model import DataLink, Step, Workflow

        producer = next(
            m for m in setup.catalog if m.module_id == "ret.get_uniprot_record"
        )
        suggestions = advisor.suggest_successors(
            producer, setup.reports[producer.module_id].examples, limit=3
        )
        enactor = Enactor(setup.ctx, setup.modules_by_id, setup.pool)
        for suggestion in suggestions:
            workflow = Workflow(
                workflow_id=f"compose-{suggestion.consumer_id}",
                name="suggested",
                steps=(Step("a", suggestion.producer_id),
                       Step("b", suggestion.consumer_id)),
                links=(DataLink("a", suggestion.output, "b", suggestion.input),),
            )
            assert enactor.try_enact(workflow).succeeded, suggestion
