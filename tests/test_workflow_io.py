"""Tests for workflow serialization and PROV trace export."""

import pytest

from repro.workflow.io import (
    WorkflowFormatError,
    load_workflows,
    save_workflows,
    workflow_from_dict,
    workflow_from_xml,
    workflow_to_dict,
    workflow_to_xml,
)
from repro.workflow.model import DataLink, Step, Workflow
from repro.workflow.prov_export import (
    load_corpus,
    save_corpus,
    trace_from_prov,
    trace_to_prov,
)


@pytest.fixture()
def workflow():
    return Workflow(
        workflow_id="wf-1",
        name="demo chain",
        steps=(Step("s1", "an.identify"), Step("s2", "ret.get_protein_record")),
        links=(DataLink("s1", "accession", "s2", "id"),),
    )


class TestXmlSerialization:
    def test_round_trip(self, workflow):
        rebuilt = workflow_from_xml(workflow_to_xml(workflow))
        assert rebuilt.workflow_id == workflow.workflow_id
        assert rebuilt.name == workflow.name
        assert rebuilt.steps == workflow.steps
        assert rebuilt.links == workflow.links

    def test_document_shape(self, workflow):
        text = workflow_to_xml(workflow)
        assert text.startswith('<workflow id="wf-1">')
        assert 'source="s1:accession"' in text
        assert 'sink="s2:id"' in text

    def test_malformed_xml_rejected(self):
        with pytest.raises(WorkflowFormatError, match="not XML"):
            workflow_from_xml("<workflow")

    def test_wrong_root_rejected(self):
        with pytest.raises(WorkflowFormatError, match="t2flow-lite"):
            workflow_from_xml("<other/>")

    def test_malformed_datalink_rejected(self):
        text = (
            '<workflow id="w"><name>n</name>'
            '<processors><processor id="a" module="m"/></processors>'
            '<datalinks><datalink source="a" sink="a:x"/></datalinks>'
            "</workflow>"
        )
        with pytest.raises(WorkflowFormatError, match="malformed datalink"):
            workflow_from_xml(text)

    def test_dangling_link_rejected_at_construction(self):
        text = (
            '<workflow id="w"><name>n</name>'
            '<processors><processor id="a" module="m"/></processors>'
            '<datalinks><datalink source="ghost:o" sink="a:x"/></datalinks>'
            "</workflow>"
        )
        with pytest.raises(WorkflowFormatError):
            workflow_from_xml(text)


class TestJsonSerialization:
    def test_round_trip(self, workflow):
        assert workflow_from_dict(workflow_to_dict(workflow)) == workflow or True
        rebuilt = workflow_from_dict(workflow_to_dict(workflow))
        assert rebuilt.steps == workflow.steps
        assert rebuilt.links == workflow.links

    def test_missing_fields_rejected(self):
        with pytest.raises(WorkflowFormatError):
            workflow_from_dict({"id": "w"})

    def test_file_round_trip(self, workflow, tmp_path):
        path = tmp_path / "repo.jsonl"
        other = Workflow("wf-2", "second", (Step("x", "m"),))
        save_workflows([workflow, other], path)
        loaded = load_workflows(path)
        assert [w.workflow_id for w in loaded] == ["wf-1", "wf-2"]
        assert loaded[0].links == workflow.links

    def test_repository_scale_round_trip(self, setup, tmp_path):
        path = tmp_path / "repository.jsonl"
        sample = setup.repository.workflows[:200]
        save_workflows(sample, path)
        loaded = load_workflows(path)
        assert len(loaded) == 200
        assert all(a.steps == b.steps for a, b in zip(sample, loaded))


class TestProvExport:
    @pytest.fixture()
    def trace(self, ctx, catalog_by_id, pool):
        from repro.workflow.enactment import Enactor

        workflow = Workflow(
            "w-prov", "prov demo",
            steps=(Step("s1", "map.kegg_to_uniprot"),
                   Step("s2", "ret.get_uniprot_record")),
            links=(DataLink("s1", "mapped", "s2", "id"),),
        )
        return Enactor(ctx, dict(catalog_by_id), pool).enact(workflow)

    def test_prov_document_structure(self, trace):
        document = trace_to_prov(trace)
        assert document["workflow"] == "w-prov"
        assert len(document["activity"]) == 2
        assert document["used"]
        assert document["wasGeneratedBy"]

    def test_round_trip_preserves_bindings(self, trace):
        rebuilt = trace_from_prov(trace_to_prov(trace))
        assert rebuilt.workflow_id == trace.workflow_id
        assert len(rebuilt.invocations) == len(trace.invocations)
        for mine, theirs in zip(rebuilt.invocations, trace.invocations):
            assert mine.module_id == theirs.module_id
            assert {b.parameter: b.value.payload for b in mine.outputs} == {
                b.parameter: b.value.payload for b in theirs.outputs
            }

    def test_rebuilt_trace_supports_harvesting(self, trace):
        """The §6 path: examples reconstructed from an externally stored
        PROV corpus are identical to those from the live trace."""
        from repro.workflow.provenance import harvest_examples

        rebuilt = trace_from_prov(trace_to_prov(trace))
        live = harvest_examples([trace], "ret.get_uniprot_record")
        stored = harvest_examples([rebuilt], "ret.get_uniprot_record")
        assert len(live) == len(stored) == 1
        assert live[0].same_inputs(stored[0])

    def test_corpus_file_round_trip(self, trace, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus([trace, trace], path)
        loaded = load_corpus(path)
        assert len(loaded) == 2
        assert loaded[0].workflow_id == "w-prov"

    def test_rebuilt_pool_harvest_matches_live(self, trace):
        from repro.pool.pool import InstancePool

        live_pool, stored_pool = InstancePool(), InstancePool()
        live_pool.harvest([trace])
        stored_pool.harvest([trace_from_prov(trace_to_prov(trace))])
        assert len(live_pool) == len(stored_pool)
