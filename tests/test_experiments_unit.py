"""Unit tests for the experiment harness internals."""

from repro.experiments.coverage import render_coverage, run_coverage
from repro.experiments.describer import render_describer, run_describer
from repro.experiments.figure5 import render_figure5, run_figure5
from repro.experiments.figure8 import render_figure8, run_figure8
from repro.experiments.reporting import (
    fmt_pct,
    fmt_ratio,
    render_bar_chart,
    render_table,
)
from repro.experiments.robustness import RobustnessResult
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3


class TestReportingHelpers:
    def test_render_table_aligns_columns(self):
        text = render_table("T", ["a", "bbbb"], [["xx", 1], ["y", 22]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_render_table_without_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text

    def test_fmt_ratio_strips_trailing_zeros(self):
        assert fmt_ratio(0.5) == "0.5"
        assert fmt_ratio(1.0) == "1"
        assert fmt_ratio(0.625, 3) == "0.625"

    def test_fmt_pct(self):
        assert fmt_pct(0.5) == "50.00"

    def test_bar_chart_scales_to_peak(self):
        text = render_bar_chart("B", [("a", 10.0), ("b", 5.0)], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("#") == 5

    def test_bar_chart_empty_series(self):
        assert render_bar_chart("B", []) == "B"

    def test_bar_chart_zero_values(self):
        text = render_bar_chart("B", [("a", 0.0)])
        assert "#" not in text


class TestRenderers:
    def test_coverage_renderer_names_exceptions(self, setup):
        text = render_coverage(run_coverage(setup))
        assert "233/252" in text
        assert "get_genes_by_enzyme" in text

    def test_table1_renderer_includes_paper_column(self, setup):
        text = render_table1(run_table1(setup))
        assert "paper #" in text
        assert "0.625" in text

    def test_table2_renderer_maps_045_to_paper_047_bucket(self, setup):
        text = render_table2(run_table2(setup))
        line = next(l for l in text.splitlines() if "| 0.45" in l)
        assert line.rstrip().endswith("7")

    def test_table3_renderer_reports_shim_share(self, setup):
        text = render_table3(run_table3(setup))
        assert "66%" in text

    def test_figure5_renderer_has_chart(self, setup):
        text = render_figure5(run_figure5(setup))
        assert "Figure 5 (bar view)" in text
        assert "user1 without" in text

    def test_figure8_renderer_has_chart(self, setup):
        text = render_figure8(run_figure8(setup))
        assert "Figure 8 (bar view)" in text
        assert "equivalent" in text

    def test_describer_renderer_compares_to_human(self, setup):
        text = render_describer(run_describer(setup))
        assert "human (paper)" in text
        assert "0/59" in text  # machine on analysis


class TestRobustnessResult:
    def _base(self, **overrides):
        values = dict(
            seed=1,
            full_input_coverage=True,
            n_output_shortfall=19,
            completeness_hist={1.0: 234, 0.75: 8, 0.625: 4, 0.6: 4, 0.5: 2},
            conciseness_hist={1.0: 192, 0.5: 32, 0.45: 7, 0.4: 4, 0.33: 4,
                              0.2: 8, 0.17: 4, 0.1: 1},
            match_split={"equivalent": 16, "overlapping": 23, "none": 33},
        )
        values.update(overrides)
        return RobustnessResult(**values)

    def test_paper_shape_accepted(self):
        assert self._base().same_shape_as_paper()

    def test_coverage_violation_rejected(self):
        assert not self._base(full_input_coverage=False).same_shape_as_paper()

    def test_shortfall_drift_rejected(self):
        assert not self._base(n_output_shortfall=18).same_shape_as_paper()

    def test_match_split_drift_rejected(self):
        assert not self._base(
            match_split={"equivalent": 15, "overlapping": 24, "none": 33}
        ).same_shape_as_paper()


class TestSetupFixture:
    def test_lazy_pieces_are_cached(self, setup):
        assert setup.repository is setup.repository
        assert setup.matches is setup.matches
        assert setup.repairs is setup.repairs

    def test_registry_holds_all_examples(self, setup):
        total = sum(
            len(setup.registry.examples_of(m.module_id)) for m in setup.catalog
        )
        assert total == sum(r.n_examples for r in setup.reports.values())

    def test_decayed_examples_cover_all_72(self, setup):
        setup.repository  # triggers the pre-decay harvest
        assert len(setup.decayed_examples) == 72
        assert all(examples for examples in setup.decayed_examples.values())
