"""Tests for the §4.2 metrics against known-structure catalog modules."""

import pytest

from repro.core.generation import ExampleGenerator
from repro.core.metrics import evaluate_module, histogram


@pytest.fixture(scope="module")
def generator(ctx, pool):
    return ExampleGenerator(ctx, pool)


def _evaluate(ctx, generator, module):
    return evaluate_module(ctx, module, generator.generate(module).examples)


class TestCleanModules:
    def test_leaf_retrieval_is_perfect(self, ctx, generator, catalog_by_id):
        evaluation = _evaluate(ctx, generator, catalog_by_id["ret.get_uniprot_record"])
        assert evaluation.coverage == 1.0
        assert evaluation.completeness == 1.0
        assert evaluation.conciseness == 1.0
        assert evaluation.n_examples == 1

    def test_biological_sequence_retrieval_has_output_shortfall(
        self, ctx, generator, catalog_by_id
    ):
        evaluation = _evaluate(
            ctx, generator, catalog_by_id["ret.get_biological_sequence"]
        )
        assert evaluation.input_coverage == 1.0
        # Output annotated BiologicalSequence (5 partitions), only protein
        # and DNA ever emitted.
        assert evaluation.output_coverage == pytest.approx(2 / 5)
        assert evaluation.completeness == 1.0
        assert evaluation.conciseness == 1.0


class TestConcisenessTail:
    @pytest.mark.parametrize(
        "module_id,expected",
        [
            ("ret.get_protein_record", 0.5),
            ("map.any_protein_to_gene", 0.5),
            ("xf.fasta_to_tab", 0.5),
            ("map.link", 9 / 20),
            ("an.molecular_weight", 2 / 5),
            ("an.gc_content", 1 / 3),
            ("an.sequence_length", 1 / 5),
            ("an.codon_usage_bias", 1 / 6),
            ("an.novelty_score", 1 / 10),
        ],
    )
    def test_engineered_conciseness(
        self, ctx, generator, catalog_by_id, module_id, expected
    ):
        evaluation = _evaluate(ctx, generator, catalog_by_id[module_id])
        assert evaluation.conciseness == pytest.approx(expected)
        # Over-partitioned modules remain complete: the redundant examples
        # still cover all (collapsed) classes.
        assert evaluation.completeness == 1.0


class TestCompletenessTail:
    @pytest.mark.parametrize(
        "module_id,expected",
        [
            ("fl.filter_nuc_by_gc", 3 / 4),
            ("an.scan_sequence_motifs", 5 / 8),
            ("fl.filter_nuc_window_gc", 3 / 5),
            ("fl.filter_proteins_by_weight", 1 / 2),
        ],
    )
    def test_engineered_completeness(
        self, ctx, generator, catalog_by_id, module_id, expected
    ):
        evaluation = _evaluate(ctx, generator, catalog_by_id[module_id])
        assert evaluation.completeness == pytest.approx(expected)
        # Under-partitioned modules remain concise: each example exhibits
        # a distinct class.
        assert evaluation.conciseness == 1.0

    def test_hidden_classes_are_executable(self, ctx, catalog_by_id, pool):
        """The hidden empty-input class really exists: feeding an empty
        list exhibits it."""
        from repro.values import STRING, TypedValue, list_of

        module = catalog_by_id["fl.filter_proteins_by_weight"]
        bindings = {
            "items": TypedValue((), list_of(STRING), "ProteinSequence"),
            "cutoff": pool.get_instance("ScoreThreshold"),
        }
        assert module.classify(ctx, bindings) == "empty-input"


class TestMetricEdgeCases:
    def test_no_examples_scores_zero_coverage(self, ctx, catalog_by_id):
        module = catalog_by_id["ret.get_uniprot_record"]
        evaluation = evaluate_module(ctx, module, [])
        assert evaluation.coverage == 0.0
        assert evaluation.completeness == 0.0
        assert evaluation.conciseness == 1.0  # vacuously concise

    def test_histogram_sorts_best_first(self):
        rows = histogram([1.0, 0.5, 1.0, 0.25])
        assert rows == [(1.0, 2), (0.5, 1), (0.25, 1)]

    def test_histogram_rounds_to_precision(self):
        rows = histogram([0.333333, 0.334], precision=2)
        assert rows == [(0.33, 2)]

    def test_evaluation_counts_partitions(self, ctx, generator, catalog_by_id):
        module = catalog_by_id["map.link"]
        evaluation = _evaluate(ctx, generator, module)
        # 20 input partitions + 20 output partitions (DatabaseAccession).
        assert evaluation.n_partitions == 40
        assert evaluation.n_examples == 20
