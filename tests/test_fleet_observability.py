"""End-to-end acceptance of the fleet observability plane.

One serve fleet (two SO_REUSEPORT replicas) and one sharded campaign
(two spawned shard workers) share a single trace id — the campaign's
derived ``campaign_trace_id`` — and every span lands in SQLite journals.
The tests then reconstruct the cross-process trace, the unified metrics
fold, and the merged sampling profiles *from the journals alone*,
including after one replica is SIGKILLed mid-run.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import time

import pytest

from repro.campaign import CampaignConfig, CampaignJournal, CampaignSupervisor
from repro.campaign.sharding import shard_campaign_id, shard_journal_path
from repro.engine.telemetry import merge_stats_snapshots
from repro.obs.aggregate import (
    MetricsAggregator,
    collect_fleet_spans,
    render_fleet_trace,
    spans_for_trace,
)
from repro.obs.profiler import PROFILE_EVENT_KIND
from repro.obs.propagation import (
    TRACE_ID_MAX_LEN,
    campaign_trace_id,
    normalize_trace_id,
)
from repro.serve import (
    AnnotationServer,
    AnnotationService,
    FleetConfig,
    ServeConfig,
    ServeSupervisor,
)

CAMPAIGN = "fleetobs"
TRACE = campaign_trace_id(CAMPAIGN)

FAST = dict(heartbeat_interval=0.2, restart_backoff=0.05, drain_timeout=5.0)


def _fetch(host, port, method="GET", path="/healthz", body=None,
           headers=None, timeout=15.0):
    """One request on a fresh connection; (status, headers, body)."""
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = json.loads(response.read() or b"{}")
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


def _wait(supervisor, predicate, timeout=45.0, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        supervisor.poll()
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"{message} not reached within {timeout}s")


def _supervisor(db, replicas=2, **fleet_kwargs):
    config = ServeConfig(host="127.0.0.1", port=0, state_db=str(db), rate=None)
    fleet = FleetConfig(replicas=replicas, **{**FAST, **fleet_kwargs})
    # memoize=False: every /v1/generate invokes the engine (cache hits
    # answer from the store without opening a span), so each request
    # journals a span on whichever replica the kernel picked.
    return ServeSupervisor(
        config, fleet, service={"seed": 2014, "memoize": False},
        register_all=True,
    )


@pytest.fixture(scope="module")
def fleet_world(tmp_path_factory, catalog):
    """The whole acceptance scenario, built once.

    Two traced replicas answer client requests carrying the campaign's
    derived trace id; one replica is SIGKILLed after its spans are
    journaled; then a two-worker sharded campaign runs against the same
    SQLite file under the same (derived) trace id.  Both process pools
    run with ``REPRO_PROFILE_HZ`` armed so every process journals a
    sampling profile on exit.
    """
    db = tmp_path_factory.mktemp("fleetobs") / "fleet.db"
    os.environ["REPRO_PROFILE_HZ"] = "100"
    killed_pid = None
    try:
        supervisor = _supervisor(db).start()
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 2,
                message="2 healthy replicas",
            )
            module_id = supervisor.store.module_ids()[0]

            def replicas_with_spans():
                return {
                    span["_replica"] for span in supervisor.store.spans()
                }

            deadline = time.time() + 60.0
            while len(replicas_with_spans()) < 2:
                if time.time() > deadline:
                    pytest.fail("kernel never spread requests to both "
                                "replicas within 60s")
                status, _, _ = _fetch(
                    supervisor.host, supervisor.port, "POST", "/v1/generate",
                    body=json.dumps({"module_id": module_id}),
                    headers={
                        "Content-Type": "application/json",
                        "X-Trace-Id": TRACE,
                    },
                )
                assert status == 200
                supervisor.poll()

            # SIGKILL one replica: its journaled spans must survive and
            # the fleet trace must still assemble from the file alone.
            victim = sorted(supervisor.pids)[0]
            killed_pid = supervisor.pids[victim]
            os.kill(killed_pid, signal.SIGKILL)
            # Two waits: the kill lands asynchronously, so demand the
            # victim's pid is gone (crash detected, restart scheduled)
            # before asking for two healthy replicas again — otherwise
            # the second predicate is satisfied by the corpse.
            _wait(
                supervisor,
                lambda: killed_pid not in supervisor.pids.values(),
                message="SIGKILL detected",
            )
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 2,
                message="replica restarted after SIGKILL",
            )
        finally:
            supervisor.drain()
            supervisor.close()

        result = CampaignSupervisor(
            db,
            [module.module_id for module in catalog],
            CampaignConfig(
                limit=6, workers=2, trace=True,
                heartbeat_interval=0.2, restart_backoff=0.05,
            ),
        ).run(CAMPAIGN)
        assert result.status == "complete"
    finally:
        os.environ.pop("REPRO_PROFILE_HZ", None)
    return {"db": str(db), "killed_pid": killed_pid}


# ----------------------------------------------------------------------
# The tentpole acceptance: one trace across the whole fleet
# ----------------------------------------------------------------------
class TestFleetTraceAssembly:
    def test_one_trace_covers_replicas_and_shard_workers(self, fleet_world):
        spans = collect_fleet_spans(
            fleet_world["db"], fleet_world["db"], CAMPAIGN
        )
        mine = spans_for_trace(TRACE, spans)
        assert mine
        hops = {
            (
                span.attributes.get("process_role"),
                span.attributes.get("process_id"),
            )
            for span in mine
        }
        replica_hops = {hop for hop in hops if hop[0] == "replica"}
        worker_hops = {hop for hop in hops if hop[0] == "shard-worker"}
        assert len(replica_hops) >= 2
        assert worker_hops == {("shard-worker", 0), ("shard-worker", 1)}

    def test_spans_survive_the_sigkilled_replica(self, fleet_world):
        # The victim's spans were journaled before the SIGKILL; the
        # reader never needed the process, only the file.
        assert fleet_world["killed_pid"] is not None
        spans = collect_fleet_spans(
            fleet_world["db"], fleet_world["db"], CAMPAIGN
        )
        assert spans_for_trace(TRACE, spans)

    def test_render_groups_by_process_hop(self, fleet_world):
        spans = collect_fleet_spans(
            fleet_world["db"], fleet_world["db"], CAMPAIGN
        )
        text = render_fleet_trace(TRACE, spans_for_trace(TRACE, spans))
        assert f"trace {TRACE}" in text
        assert "[shard-worker 0]" in text
        assert "[shard-worker 1]" in text
        assert text.count("[replica ") >= 2

    def test_cli_resolves_the_campaign_id_to_its_trace(
        self, fleet_world, capsys
    ):
        from repro.cli import main

        code = main(["trace", CAMPAIGN, "--db", fleet_world["db"], "--fleet"])
        out = capsys.readouterr().out
        assert code == 0
        assert f"trace {TRACE}" in out
        assert "process hop" in out

    def test_cli_slowest_ranks_across_processes(self, fleet_world, capsys):
        from repro.cli import main

        code = main([
            "trace", CAMPAIGN, "--db", fleet_world["db"], "--fleet",
            "--slowest", "5",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "shard-worker" in out

    def test_cli_json_spans_carry_role_and_trace(self, fleet_world, capsys):
        from repro.cli import main

        code = main([
            "trace", CAMPAIGN, "--db", fleet_world["db"], "--fleet", "--json",
        ])
        out = capsys.readouterr().out
        assert code == 0
        rows = json.loads(out)
        assert rows
        roles = {row["attributes"]["process_role"] for row in rows}
        assert "replica" in roles and "shard-worker" in roles


# ----------------------------------------------------------------------
# The unified scrape
# ----------------------------------------------------------------------
class TestUnifiedScrape:
    def test_supervisor_scrape_equals_the_manual_fold(self, tmp_path):
        """The fleet /metrics endpoint is digest-identical to folding
        the per-replica journaled stats by hand."""
        supervisor = _supervisor(
            tmp_path / "scrape.db", metrics_port=0
        ).start()
        try:
            _wait(
                supervisor, lambda: supervisor.healthy_replicas() == 2,
                message="2 healthy replicas",
            )
            module_id = supervisor.store.module_ids()[0]
            for _ in range(4):
                status, _, _ = _fetch(
                    supervisor.host, supervisor.port, "POST", "/v1/generate",
                    body=json.dumps({"module_id": module_id}),
                    headers={"Content-Type": "application/json"},
                )
                assert status == 200
            # Wait for every replica's heartbeat to journal a stats
            # snapshot that has seen the traffic.
            _wait(
                supervisor,
                lambda: len(supervisor.store.replica_stats()) == 2,
                message="both replicas journaled stats",
            )
            time.sleep(0.5)  # one more beat: snapshots include the calls
            server = supervisor.metrics_server
            assert server is not None
            status, _, scraped = _fetch(
                server.host, server.port, path="/metrics.json"
            )
            assert status == 200
            manual = merge_stats_snapshots(
                [
                    snapshot
                    for _, snapshot in sorted(
                        supervisor.store.replica_stats().items()
                    )
                ]
            )
            fold = {
                "counters": manual.get("counters"),
                "latency": manual.get("latency"),
            }
            seen = {
                "counters": scraped.get("counters"),
                "latency": scraped.get("latency"),
            }
            assert json.dumps(seen, sort_keys=True) == json.dumps(
                fold, sort_keys=True
            )
            assert scraped["fleet"]["replica_snapshots"] == 2
        finally:
            supervisor.drain()
            supervisor.close()

    def test_metrics_cli_folds_offline_from_the_journal(
        self, fleet_world, capsys
    ):
        from repro.cli import main

        code = main([
            "metrics", "--fleet", "--db", fleet_world["db"],
            "--campaign", CAMPAIGN,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "repro_invocations_total" in out

    def test_fleet_snapshot_reports_its_sources(self, fleet_world):
        snapshot = MetricsAggregator(
            state_db=fleet_world["db"],
            journal_db=fleet_world["db"],
            campaign_id=CAMPAIGN,
        ).snapshot()
        assert snapshot["fleet"]["replica_snapshots"] >= 2
        assert snapshot["fleet"]["worker_snapshots"] == 2


# ----------------------------------------------------------------------
# Continuous profiling, journaled per process
# ----------------------------------------------------------------------
class TestFleetProfiles:
    def test_shard_workers_journal_their_profiles(self, fleet_world):
        for shard in range(2):
            journal = CampaignJournal(
                shard_journal_path(fleet_world["db"], shard)
            )
            try:
                events = journal.worker_events(
                    shard_campaign_id(CAMPAIGN, shard)
                )
            finally:
                journal.close()
            profiles = [
                event for event in events
                if event["kind"] == PROFILE_EVENT_KIND
            ]
            assert profiles, f"shard {shard} journaled no profile"
            payload = json.loads(profiles[-1]["detail"])
            assert payload["hz"] == 100.0
            assert "stacks" in payload

    def test_draining_replicas_journal_their_profiles(self, fleet_world):
        from repro.serve.state import ServeStateStore

        store = ServeStateStore(fleet_world["db"])
        try:
            profiles = [
                event for event in store.events()
                if event["kind"] == PROFILE_EVENT_KIND
            ]
        finally:
            store.close()
        # The SIGKILLed replica never drains (no profile); its restarted
        # successor and the sibling both do.
        assert len(profiles) >= 2

    def test_profile_cli_merges_the_campaign_fleet(self, fleet_world, capsys):
        from repro.cli import main

        code = main([
            "profile", "--campaign", CAMPAIGN, "--db", fleet_world["db"],
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "samples" in out

    def test_profile_cli_serve_side(self, fleet_world, capsys):
        from repro.cli import main

        code = main(["profile", "--serve", "--db", fleet_world["db"]])
        out = capsys.readouterr().out
        assert code == 0
        assert "samples" in out


# ----------------------------------------------------------------------
# The trace-id cardinality bound at the HTTP boundary (satellite)
# ----------------------------------------------------------------------
class TestTraceHeaderBoundary:
    @pytest.fixture()
    def server(self):
        with AnnotationServer(
            AnnotationService(memoize=True), ServeConfig(rate=None)
        ) as running:
            yield running

    def _healthz(self, server, headers):
        return _fetch(
            server.host, server.port, path="/healthz", headers=headers
        )

    def test_oversized_id_is_truncated_not_stored_verbatim(self, server):
        status, headers, _ = self._healthz(
            server, {"X-Trace-Id": "a" * 5000}
        )
        assert status == 200
        echoed = headers["X-Trace-Id"]
        assert len(echoed) == TRACE_ID_MAX_LEN

    def test_unusable_id_falls_back_to_a_generated_one(self, server):
        status, headers, _ = self._healthz(
            server, {"X-Trace-Id": "zzzz-????!!"}
        )
        assert status == 200
        echoed = headers["X-Trace-Id"]
        assert echoed == normalize_trace_id(echoed)
        assert len(echoed) == 32  # freshly minted, not the hostile input

    def test_hostile_id_keeps_only_its_hex(self, server):
        status, headers, _ = self._healthz(
            server, {"X-Trace-Id": "DROP TABLE spans; --"}
        )
        assert status == 200
        assert headers["X-Trace-Id"] == "dabea"

    def test_client_id_is_normalized_on_echo(self, server):
        status, headers, _ = self._healthz(
            server, {"X-Trace-Id": "DEADBEEF42"}
        )
        assert status == 200
        assert headers["X-Trace-Id"] == "deadbeef42"

    def test_body_trace_id_matches_the_header(self, server):
        status, headers, body = self._healthz(
            server, {"X-Trace-Id": "abc123"}
        )
        assert status == 200
        assert body["trace_id"] == headers["X-Trace-Id"] == "abc123"
