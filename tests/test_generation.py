"""Tests for the data-example generation heuristic (§3.2)."""

import pytest

from repro.core.generation import ExampleGenerator
from repro.core.partitioning import (
    count_partitions,
    module_partitions,
    parameter_partitions,
    realizable_partitions,
)
from repro.modules.model import Parameter
from repro.values import STRING


@pytest.fixture(scope="module")
def generator(ctx, pool):
    return ExampleGenerator(ctx, pool)


class TestPartitioning:
    def test_realizable_partitions_drop_covered_concepts(self, ontology):
        partitions = realizable_partitions(ontology, "ProteinAccession")
        assert "ProteinAccession" not in partitions
        assert set(partitions) == {"UniProtAccession", "PIRAccession"}

    def test_leaf_concept_is_its_own_partition(self, ontology):
        assert realizable_partitions(ontology, "UniProtAccession") == (
            "UniProtAccession",
        )

    def test_depth_cap_limits_descent(self, ontology):
        capped = realizable_partitions(ontology, "BiologicalSequence", max_depth=1)
        assert set(capped) == {
            "BiologicalSequence", "NucleotideSequence", "ProteinSequence",
        }

    def test_depth_zero_keeps_only_realizable_root(self, ontology):
        assert realizable_partitions(ontology, "BiologicalSequence", max_depth=0) == (
            "BiologicalSequence",
        )
        assert realizable_partitions(ontology, "ProteinAccession", max_depth=0) == ()

    def test_parameter_partitions(self, ontology):
        parameter = Parameter("id", STRING, "OrganismIdentifier")
        assert set(parameter_partitions(ontology, parameter)) == {
            "NCBITaxonId", "ScientificOrganismName",
        }

    def test_module_partitions_prefix_sides(self, ontology, catalog_by_id):
        module = catalog_by_id["ret.get_uniprot_record"]
        partitions = module_partitions(ontology, module)
        assert set(partitions) == {"in:id", "out:record"}

    def test_count_partitions(self, ontology, catalog_by_id):
        module = catalog_by_id["ret.get_uniprot_record"]
        assert count_partitions(ontology, module) == 2

    def test_unknown_concept_raises(self, ontology):
        with pytest.raises(KeyError):
            realizable_partitions(ontology, "Nope")


class TestGeneration:
    def test_single_partition_module_gets_one_example(
        self, generator, catalog_by_id
    ):
        report = generator.generate(catalog_by_id["ret.get_uniprot_record"])
        assert report.n_examples == 1
        example = report.examples[0]
        assert example.inputs[0].partition == "UniProtAccession"
        assert example.outputs[0].value.concept == "ProteinSequenceRecord"

    def test_parent_annotated_module_gets_one_example_per_partition(
        self, generator, catalog_by_id
    ):
        report = generator.generate(catalog_by_id["ret.get_protein_record"])
        assert report.n_examples == 2
        partitions = {e.inputs[0].partition for e in report.examples}
        assert partitions == {"UniProtAccession", "PIRAccession"}

    def test_multi_input_module_generates_combinations(
        self, generator, catalog_by_id
    ):
        module = catalog_by_id["an.novelty_score"]  # BiologicalSequence x Organism
        report = generator.generate(module)
        assert report.n_examples == 10  # 5 x 2

    def test_sequence_database_module_covers_eight_schemes(
        self, generator, catalog_by_id
    ):
        report = generator.generate(catalog_by_id["ret.get_biological_sequence"])
        assert report.n_examples == 8
        assert report.invalid_combinations == 0

    def test_link_module_accepts_all_twenty_partitions(
        self, generator, catalog_by_id
    ):
        report = generator.generate(catalog_by_id["map.link"])
        assert report.n_examples == 20
        assert report.invalid_combinations == 0

    def test_selected_values_recorded_per_partition(self, generator, catalog_by_id):
        report = generator.generate(catalog_by_id["ret.get_protein_record"])
        assert set(report.selected["id"]) == {"UniProtAccession", "PIRAccession"}

    def test_examples_record_outputs(self, generator, catalog_by_id):
        report = generator.generate(catalog_by_id["an.translate_dna"])
        example = report.examples[0]
        assert example.output_value("result").concept == "ProteinSequence"

    def test_unrealized_partition_reported(self, ctx, catalog_by_id):
        from repro.pool.pool import InstancePool

        empty = InstancePool()
        generator = ExampleGenerator(ctx, empty)
        report = generator.generate(catalog_by_id["ret.get_uniprot_record"])
        assert report.n_examples == 0
        assert ("id", "UniProtAccession") in report.unrealized_partitions

    def test_generate_many_keys_by_module_id(self, generator, catalog_by_id):
        modules = [catalog_by_id["ret.get_uniprot_record"],
                   catalog_by_id["an.translate_dna"]]
        reports = generator.generate_many(modules)
        assert set(reports) == {m.module_id for m in modules}

    def test_generation_is_deterministic(self, ctx, pool, catalog_by_id):
        module = catalog_by_id["map.link"]
        a = ExampleGenerator(ctx, pool).generate(module)
        b = ExampleGenerator(ctx, pool).generate(module)
        assert [e.inputs for e in a.examples] == [e.inputs for e in b.examples]
        assert [
            tuple(o.value.payload for o in e.outputs) for e in a.examples
        ] == [tuple(o.value.payload for o in e.outputs) for e in b.examples]


class TestDepthCapAblation:
    def test_depth_cap_reduces_examples(self, ctx, pool, catalog_by_id):
        module = catalog_by_id["an.sequence_length"]  # BiologicalSequence input
        full = ExampleGenerator(ctx, pool).generate(module)
        capped = ExampleGenerator(ctx, pool, max_depth=0).generate(module)
        assert full.n_examples == 5
        assert capped.n_examples == 1


class TestRandomSelectionAblation:
    def test_random_strategy_draws_k_values(self, ctx, pool, catalog_by_id):
        module = catalog_by_id["ret.get_protein_record"]
        generator = ExampleGenerator(ctx, pool, selection="random", random_k=2)
        report = generator.generate(module)
        assert 1 <= report.n_examples <= 2

    def test_random_strategy_is_seeded(self, ctx, pool, catalog_by_id):
        module = catalog_by_id["map.link"]
        a = ExampleGenerator(ctx, pool, selection="random", seed=5).generate(module)
        b = ExampleGenerator(ctx, pool, selection="random", seed=5).generate(module)
        assert [e.inputs for e in a.examples] == [e.inputs for e in b.examples]

    def test_unknown_strategy_rejected(self, ctx, pool):
        with pytest.raises(ValueError):
            ExampleGenerator(ctx, pool, selection="magic")
