"""Unit tests of the serving layer's building blocks: admission
control, per-tenant token buckets, HTTP request accounting, endpoint
normalization, and the ambient request deadline (deadline_scope +
watchdog clamp)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import WatchdogInvoker, WatchdogPolicy, deadline_scope, remaining_deadline
from repro.modules.errors import ModuleTimeoutError
from repro.serve import (
    ANONYMOUS_TENANT,
    AdmissionController,
    HttpMetrics,
    SaturatedError,
    TenantRateLimiter,
    TokenBucket,
    normalize_endpoint,
)


class FakeClock:
    """A hand-cranked monotonic clock."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def module(catalog_by_id):
    return catalog_by_id["ret.get_uniprot_record"]


@pytest.fixture
def good_bindings(ctx, pool, module):
    value = pool.get_instance(
        module.inputs[0].concept, module.inputs[0].structural
    )
    assert value is not None
    return {module.inputs[0].name: value}


class BlockingInvoker:
    """An invoker that blocks until released, then succeeds."""

    def __init__(self):
        self.release = threading.Event()
        self.calls = 0

    def invoke(self, module, ctx, bindings):
        self.calls += 1
        self.release.wait(30.0)
        return {}


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_argument_validation(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=-1)
        with pytest.raises(ValueError, match="queue_timeout"):
            AdmissionController(queue_timeout=0.0)
        with pytest.raises(ValueError, match="retry_after"):
            AdmissionController(retry_after=0.0)

    def test_admits_up_to_max_inflight(self):
        controller = AdmissionController(max_inflight=3, max_queue=0)
        for _ in range(3):
            controller.acquire()
        snap = controller.snapshot()
        assert snap["inflight"] == 3
        assert snap["admitted_total"] == 3
        assert snap["shed_total"] == 0

    def test_full_queue_sheds_immediately(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.acquire()
        started = time.monotonic()
        with pytest.raises(SaturatedError) as excinfo:
            controller.acquire()
        # Shedding is the fast path: no queue slot means no waiting.
        assert time.monotonic() - started < 0.5
        assert excinfo.value.retry_after_s > 0
        assert controller.snapshot()["shed_total"] == 1

    def test_release_frees_a_slot(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.acquire()
        controller.release()
        controller.acquire()  # does not raise
        snap = controller.snapshot()
        assert snap["inflight"] == 1
        assert snap["admitted_total"] == 2

    def test_queue_wait_timeout_sheds(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=4, queue_timeout=0.05
        )
        controller.acquire()
        with pytest.raises(SaturatedError, match="queue wait exceeded"):
            controller.acquire()
        snap = controller.snapshot()
        assert snap["shed_total"] == 1
        assert snap["queue_depth"] == 0  # the waiter left the queue

    def test_zero_max_wait_sheds_without_queueing(self):
        # A request whose deadline is already spent must not wait at all.
        controller = AdmissionController(max_inflight=1, max_queue=8)
        controller.acquire()
        with pytest.raises(SaturatedError):
            controller.acquire(max_wait=0.0)
        assert controller.snapshot()["queue_depth"] == 0

    def test_queued_waiter_admitted_on_release(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=2, queue_timeout=5.0
        )
        controller.acquire()
        admitted = threading.Event()

        def waiter():
            controller.acquire()
            admitted.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        deadline = time.monotonic() + 5.0
        while controller.snapshot()["queue_depth"] < 1:
            assert time.monotonic() < deadline, "waiter never queued"
            time.sleep(0.005)
        assert not admitted.is_set()
        controller.release()
        assert admitted.wait(5.0)
        thread.join(5.0)
        snap = controller.snapshot()
        assert snap["admitted_total"] == 2
        assert snap["shed_total"] == 0
        assert snap["peak_queue_depth"] == 1

    def test_retry_after_scales_with_queue_depth(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=2, queue_timeout=5.0, retry_after=1.0,
            jitter=0.0,
        )
        controller.acquire()
        threads = [
            threading.Thread(target=controller.acquire, daemon=True)
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5.0
        while controller.snapshot()["queue_depth"] < 2:
            assert time.monotonic() < deadline, "waiters never queued"
            time.sleep(0.005)
        # Queue full at depth 2/2: the hint doubles the base value.
        with pytest.raises(SaturatedError) as excinfo:
            controller.acquire()
        assert excinfo.value.retry_after_s == pytest.approx(2.0)
        controller.release()
        controller.release()
        for thread in threads:
            thread.join(5.0)
        snap = controller.snapshot()
        assert snap["peak_queue_depth"] == 2
        assert snap["peak_inflight"] == 1
        assert snap["shed_total"] == 1
        assert snap["admitted_total"] == 3

    def test_retry_after_jitter_spreads_the_herd(self):
        # A shed wavefront all told the same Retry-After re-arrives in
        # lockstep; the jitter must spread the hints without ever
        # *shortening* them below the queue-depth-scaled base.
        def shed_hints(seed, n=6):
            controller = AdmissionController(
                max_inflight=1, max_queue=0, retry_after=1.0,
                jitter=0.5, seed=seed,
            )
            controller.acquire()
            hints = []
            for _ in range(n):
                with pytest.raises(SaturatedError) as excinfo:
                    controller.acquire(max_wait=0.0)
                hints.append(excinfo.value.retry_after_s)
            return hints

        hints = shed_hints(seed=2014)
        assert all(1.0 <= hint <= 1.5 for hint in hints)
        assert len(set(hints)) > 1, "jitter left the herd synchronized"
        assert shed_hints(seed=7) == shed_hints(seed=7)  # seeded, reproducible


# ----------------------------------------------------------------------
# Token buckets / tenant isolation
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_argument_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0)

    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_acquire()[0] for _ in range(3)] == [True] * 3
        allowed, retry_after = bucket.try_acquire()
        assert not allowed
        assert retry_after == pytest.approx(1.0)
        snap = bucket.snapshot()
        assert snap["allowed"] == 3
        assert snap["limited"] == 1

    def test_refill_restores_budget(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]
        clock.advance(0.5)  # 2 tokens/s * 0.5s = 1 token back
        allowed, retry_after = bucket.try_acquire()
        assert allowed
        assert retry_after == 0.0

    def test_refill_never_exceeds_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire()[0]
        assert bucket.try_acquire()[0]
        assert not bucket.try_acquire()[0]


class TestTenantRateLimiter:
    def test_tenant_isolation(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(rate=1.0, burst=2, clock=clock)
        assert limiter.check("alice")[0]
        assert limiter.check("alice")[0]
        allowed, retry_after = limiter.check("alice")
        assert not allowed and retry_after > 0
        # alice being broke costs bob nothing.
        assert limiter.check("bob")[0]
        snap = limiter.snapshot()
        assert snap["alice"]["limited"] == 1
        assert snap["bob"]["limited"] == 0

    def test_rate_none_disables_limiting(self):
        limiter = TenantRateLimiter(rate=None)
        assert not limiter.enabled
        for _ in range(1000):
            assert limiter.check(ANONYMOUS_TENANT) == (True, 0.0)
        assert limiter.snapshot() == {}

    def test_configure_gives_bespoke_budget(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(rate=1.0, burst=1, clock=clock)
        limiter.configure("batch", rate=100.0, burst=50)
        for _ in range(50):
            assert limiter.check("batch")[0]
        assert not limiter.check("batch")[0]
        snap = limiter.snapshot()
        assert snap["batch"]["burst"] == 50.0
        assert snap["batch"]["rate"] == 100.0


# ----------------------------------------------------------------------
# Endpoint normalization + request accounting
# ----------------------------------------------------------------------
class TestNormalizeEndpoint:
    @pytest.mark.parametrize(
        ("path", "expected"),
        [
            ("/healthz", "/healthz"),
            ("/v1/generate", "/v1/generate"),
            ("/v1/generate/", "/v1/generate"),
            ("/v1/campaigns/nightly", "/v1/campaigns/{id}"),
            ("/v1/campaigns/nightly/", "/v1/campaigns/{id}"),
            ("/v1/campaigns/http-server/alerts", "/v1/campaigns/{id}/alerts"),
            ("/", "/"),
        ],
    )
    def test_normalize(self, path, expected):
        assert normalize_endpoint(path) == expected


class TestHttpMetrics:
    def test_observe_and_snapshot(self):
        metrics = HttpMetrics()
        metrics.observe("/v1/generate", "POST", 200, 12.0)
        metrics.observe("/v1/generate", "POST", 200, 8.0)
        metrics.observe("/v1/generate", "POST", 404, 1.0)
        metrics.observe("/healthz", "GET", 200, 0.5)
        snap = metrics.snapshot()
        assert snap["requests_total"] == 4
        assert snap["status_classes"] == {"2xx": 3, "3xx": 0, "4xx": 1, "5xx": 0}
        assert snap["requests"] == [
            {"endpoint": "/healthz", "method": "GET", "status": 200, "count": 1},
            {"endpoint": "/v1/generate", "method": "POST", "status": 200, "count": 2},
            {"endpoint": "/v1/generate", "method": "POST", "status": 404, "count": 1},
        ]
        latency = snap["latency"]
        assert latency["count"] == 4
        assert latency["sum_ms"] == pytest.approx(21.5)
        # Quantiles are histogram-bucket upper bounds: monotone in q,
        # but possibly above the exact max.
        assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert latency["max_ms"] == pytest.approx(12.0)
        buckets = latency["cumulative_buckets"]
        assert buckets[-1][0] == "+Inf"
        assert buckets[-1][1] == 4

    def test_pressure_counters(self):
        metrics = HttpMetrics()
        metrics.record_shed()
        metrics.record_shed()
        metrics.record_rate_limited("alice")
        metrics.record_rate_limited("alice")
        metrics.record_rate_limited("bob")
        metrics.record_deadline_exceeded()
        snap = metrics.snapshot()
        assert snap["shed_total"] == 2
        assert snap["rate_limited_total"] == 3
        assert snap["rate_limited_by_tenant"] == {"alice": 2, "bob": 1}
        assert snap["deadline_exceeded_total"] == 1

    def test_empty_snapshot_shape(self):
        snap = HttpMetrics().snapshot()
        assert snap["requests"] == []
        assert snap["requests_total"] == 0
        assert snap["latency"]["count"] == 0


# ----------------------------------------------------------------------
# Deadline propagation: scope semantics + watchdog clamp
# ----------------------------------------------------------------------
class TestDeadlineScope:
    def test_no_scope_means_no_deadline(self):
        assert remaining_deadline() is None

    def test_none_scope_is_a_noop(self):
        with deadline_scope(None):
            assert remaining_deadline() is None

    def test_remaining_tracks_the_clock(self):
        clock = FakeClock()
        with deadline_scope(2.0, clock=clock):
            assert remaining_deadline(clock=clock) == pytest.approx(2.0)
            clock.advance(1.5)
            assert remaining_deadline(clock=clock) == pytest.approx(0.5)
            clock.advance(1.0)
            # Past the deadline the remainder goes negative, not None.
            assert remaining_deadline(clock=clock) == pytest.approx(-0.5)
        assert remaining_deadline(clock=clock) is None

    def test_nested_scopes_take_the_tighter_deadline(self):
        clock = FakeClock()
        with deadline_scope(1.0, clock=clock):
            with deadline_scope(5.0, clock=clock):
                # A looser inner scope cannot extend the outer deadline.
                assert remaining_deadline(clock=clock) == pytest.approx(1.0)
            with deadline_scope(0.25, clock=clock):
                assert remaining_deadline(clock=clock) == pytest.approx(0.25)
            # Inner scopes restore the outer deadline on exit.
            assert remaining_deadline(clock=clock) == pytest.approx(1.0)

    def test_scope_restores_on_exception(self):
        clock = FakeClock()
        with pytest.raises(RuntimeError):
            with deadline_scope(1.0, clock=clock):
                raise RuntimeError("boom")
        assert remaining_deadline(clock=clock) is None


class TestWatchdogDeadlineClamp:
    def test_deadline_clamps_the_watchdog_budget(
        self, module, ctx, good_bindings
    ):
        inner = BlockingInvoker()
        watchdog = WatchdogInvoker(inner, WatchdogPolicy(budget=10.0))
        try:
            started = time.monotonic()
            with deadline_scope(0.05):
                with pytest.raises(ModuleTimeoutError) as excinfo:
                    watchdog.invoke(module, ctx, good_bindings)
            elapsed = time.monotonic() - started
        finally:
            inner.release.set()
        # The 10s policy budget was clamped to the 50ms deadline.
        assert excinfo.value.budget <= 0.05
        assert elapsed < 5.0
        assert watchdog.stats.timeouts == 1

    def test_exhausted_deadline_preempts_before_any_work(
        self, module, ctx, good_bindings
    ):
        inner = BlockingInvoker()
        watchdog = WatchdogInvoker(inner, WatchdogPolicy(budget=10.0))
        with deadline_scope(0.005):
            time.sleep(0.02)
            with pytest.raises(ModuleTimeoutError, match="deadline exhausted"):
                watchdog.invoke(module, ctx, good_bindings)
        # No worker thread was ever spawned.
        assert inner.calls == 0
        assert watchdog.stats.deadline_preempted == 1
        assert watchdog.stats.timeouts == 0
        assert watchdog.snapshot()["deadline_preempted"] == 1
