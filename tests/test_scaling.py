"""Tests for the universe-scaling invariance experiment."""

import pytest

from repro.experiments.scaling import (
    histograms_invariant,
    measure_at_scale,
    run_scale_sweep,
)


class TestScaling:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_scale_sweep((30, 120, 480))

    def test_histograms_invariant_across_sizes(self, sweep):
        assert histograms_invariant(sweep)

    def test_tables_match_the_paper_at_every_size(self, sweep):
        for point in sweep:
            assert point.completeness_hist == {
                1.0: 234, 0.75: 8, 0.625: 4, 0.6: 4, 0.5: 2,
            }
            assert point.conciseness_hist[0.5] == 32
            assert point.conciseness_hist[0.45] == 7

    def test_example_count_is_size_independent(self, sweep):
        counts = {point.n_examples_total for point in sweep}
        assert len(counts) == 1

    def test_minimum_viable_universe(self):
        point = measure_at_scale(12)
        assert point.completeness_hist[1.0] == 234

    def test_invariance_helper_edges(self, sweep):
        assert histograms_invariant([])
        assert histograms_invariant(sweep[:1])
