"""The byzantine acceptance e2e: a seeded campaign over a catalog slice
whose providers hang, answer with the wrong arity, and answer
nondeterministically — the campaign completes within its deadline with
zero hangs, reports per-cause counts, admits no quarantined example, and
a killed-and-resumed run renders byte-identically."""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    render_campaign_report,
)
from repro.core.quarantine import (
    CAUSE_MALFORMED,
    CAUSE_NONDETERMINISTIC,
    CAUSE_TIMEOUT,
)
from repro.workflow.model import Step, Workflow
from repro.workflow.monitoring import analyze_decay

# The byzantine weather over the first 12 planned modules, whose
# providers are exactly EBI (hangs), Manchester-lab (wrong arity) and
# NCBI (nondeterministic).  One attempt per call and a breaker threshold
# above the failure count keep every module journaled as *done*: a
# byzantine module is decayed evidence, not a degradation.
BYZ = dict(
    limit=12,
    max_attempts=1,
    retry_base_delay=0.0,
    failure_threshold=99,
    probe_interval=0.05,
    watchdog_budget=0.05,
    probe_rate=1.0,
    hang_providers=("EBI",),
    corrupt_providers=("Manchester-lab",),
    nondeterministic_providers=("NCBI",),
)

DEADLINE_S = 30.0


def make_runner(ctx, catalog, pool, journal, **overrides):
    return CampaignRunner(
        ctx, catalog, pool, journal, CampaignConfig(**{**BYZ, **overrides})
    )


def _release(runner):
    if runner.engine.fault_injector is not None:
        runner.engine.fault_injector.release_hangs()


@pytest.fixture(scope="module")
def byzantine_reference(ctx, catalog, pool, tmp_path_factory):
    """The reference: one byzantine campaign driven to completion."""
    path = tmp_path_factory.mktemp("byzantine") / "reference.sqlite"
    journal = CampaignJournal(path)
    runner = make_runner(ctx, catalog, pool, journal)
    started = time.monotonic()
    try:
        result = runner.run("byz")
    finally:
        _release(runner)
        journal.close()
    return result, render_campaign_report(result), time.monotonic() - started


class _KilledMidRun(RuntimeError):
    """Stands in for SIGKILL: raised *before* a journal write commits."""


class _CrashingJournal(CampaignJournal):
    """Dies at a chosen journal boundary, like a kill -9 would."""

    def __init__(self, path, crash_after: int) -> None:
        super().__init__(path)
        self.crash_after = crash_after
        self.done_writes = 0

    def record_done(self, campaign_id, report):
        if self.done_writes >= self.crash_after:
            raise _KilledMidRun(f"killed before write {self.done_writes + 1}")
        super().record_done(campaign_id, report)
        self.done_writes += 1


class TestByzantineCampaign:
    def test_completes_within_deadline_despite_hangs(self, byzantine_reference):
        result, _, elapsed = byzantine_reference
        assert result.status == "complete"
        assert not result.skipped
        assert elapsed < DEADLINE_S

    def test_per_cause_counts(self, byzantine_reference):
        result, _, _ = byzantine_reference
        assert result.timed_out_combinations == 5
        assert result.quarantined_combinations == 7
        log = result.quarantine_log()
        assert len(log) == 12
        assert log.counts_by_cause() == {
            CAUSE_MALFORMED: 5,
            CAUSE_NONDETERMINISTIC: 2,
            CAUSE_TIMEOUT: 5,
        }

    def test_no_byzantine_module_produced_admitted_examples(
        self, byzantine_reference
    ):
        result, _, _ = byzantine_reference
        # Every planned module is byzantine: zero admitted examples, and
        # no quarantined input combination leaks into any example list.
        assert sum(r.n_examples for r in result.reports.values()) == 0
        for report in result.reports.values():
            admitted = {
                tuple((b.parameter, b.value.payload) for b in e.inputs)
                for e in report.examples
            }
            for record in report.quarantined:
                withheld = tuple(
                    (b.parameter, b.value.payload) for b in record.inputs
                )
                assert withheld not in admitted

    def test_quarantine_feeds_the_decay_monitor(
        self, byzantine_reference, catalog
    ):
        result, _, _ = byzantine_reference
        log = result.quarantine_log()
        by_provider = {
            m.module_id: m.provider for m in catalog[: BYZ["limit"]]
        }
        decayed = log.semantically_decayed()
        # Lying providers are semantically decayed; hanging ones are an
        # availability problem, not a semantic one.
        assert decayed
        assert {by_provider[m] for m in decayed} == {"Manchester-lab", "NCBI"}

        modules = {m.module_id: m for m in catalog}
        liar = decayed[0]
        wedged = next(
            r.module_id for r in log.records() if r.cause == CAUSE_TIMEOUT
        )
        workflows = [
            Workflow("w-liar", "w-liar", (Step("s", liar),)),
            Workflow("w-wedged", "w-wedged", (Step("s", wedged),)),
        ]
        report = analyze_decay(workflows, modules, quarantine=log)
        assert report.semantically_decayed == decayed
        assert liar in report.by_module
        assert wedged not in report.by_module  # health's job, not ours
        assert report.n_broken == 1

    def test_report_renders_withheld_counts(self, byzantine_reference):
        _, text, _ = byzantine_reference
        assert "withheld:          5 timed out, 7 quarantined" in text
        assert "timed_out=" in text and "quarantined=" in text

    def test_kill_then_resume_is_byte_identical_and_quarantine_aware(
        self, ctx, catalog, pool, tmp_path, byzantine_reference
    ):
        reference, reference_text, _ = byzantine_reference
        path = tmp_path / "killed.sqlite"
        crashing = _CrashingJournal(path, crash_after=6)
        runner = make_runner(ctx, catalog, pool, crashing)
        try:
            with pytest.raises(_KilledMidRun):
                runner.run("byz")
        finally:
            _release(runner)
            crashing.close()

        journal = CampaignJournal(path)
        runner = make_runner(ctx, catalog, pool, journal)
        try:
            result = runner.resume("byz")
        finally:
            _release(runner)
            journal.close()
        assert result.status == "complete"
        assert result.digest() == reference.digest()
        assert render_campaign_report(result) == reference_text
        assert result.timed_out_combinations == 5
        assert result.quarantined_combinations == 7


# ----------------------------------------------------------------------
# The real thing: a subprocess campaign under byzantine flags, SIGKILLed
# mid-run, resumed, and compared byte-for-byte against a serial run.
# ----------------------------------------------------------------------
BYZ_FLAGS = [
    "--limit", "12",
    "--latency-ms", "10",
    "--watchdog-budget", "0.1",
    "--probe-rate", "1.0",
    "--hang", "EBI",
    "--corrupt-output", "Manchester-lab",
    "--nondeterministic", "NCBI",
    "--failure-threshold", "99",
    "--probe-interval", "0.05",
]


def _cli(*args):
    root = Path(__file__).resolve().parents[1]
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        timeout=300,
    )


def test_sigkill_mid_byzantine_campaign_then_resume(tmp_path):
    root = Path(__file__).resolve().parents[1]
    db = tmp_path / "killed.sqlite"
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", "run", "byz",
         "--db", str(db), *BYZ_FLAGS],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    try:
        # Wait for at least two journaled modules, then kill -9.
        deadline = time.time() + 120
        while time.time() < deadline:
            done = 0
            if db.exists():
                try:
                    done = sqlite3.connect(db).execute(
                        "SELECT COUNT(*) FROM campaign_entries "
                        "WHERE status = 'done'"
                    ).fetchone()[0]
                except sqlite3.OperationalError:
                    done = 0  # schema not committed yet
            if done >= 2 or victim.poll() is not None:
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign never journaled progress")
    finally:
        victim.kill()  # SIGKILL
        victim.wait()

    resumed = _cli("campaign", "resume", "byz", "--db", str(db))
    assert resumed.returncode == 0, resumed.stderr
    reference_db = tmp_path / "reference.sqlite"
    reference = _cli(
        "campaign", "run", "byz", "--db", str(reference_db), *BYZ_FLAGS
    )
    assert reference.returncode == 0, reference.stderr
    assert resumed.stdout == reference.stdout  # byte-identical report
    assert "status: complete" in resumed.stdout
    assert "withheld:" in resumed.stdout

    # campaign status --json carries the per-cause counters.
    status = _cli("campaign", "status", "--db", str(db), "--json")
    assert status.returncode == 0, status.stderr
    payload = json.loads(status.stdout)
    entry = next(e for e in payload if e["campaign_id"] == "byz")
    assert entry["timed_out_combinations"] == 5
    assert entry["quarantined_combinations"] == 7

    text_status = _cli("campaign", "status", "--db", str(db))
    assert "timed_out 5" in text_status.stdout
    assert "quarantined 7" in text_status.stdout
