"""Tests for the data-example model."""

import pytest

from repro.core.examples import Binding, DataExample
from repro.values import STRING, TypedValue


@pytest.fixture()
def example():
    return DataExample(
        module_id="t.m",
        inputs=(
            Binding("id", TypedValue("P10000", STRING, "UniProtAccession"),
                    partition="UniProtAccession"),
        ),
        outputs=(Binding("record", TypedValue("REC", STRING, "ProteinSequenceRecord")),),
    )


class TestDataExample:
    def test_input_value_lookup(self, example):
        assert example.input_value("id").payload == "P10000"
        with pytest.raises(KeyError):
            example.input_value("nope")

    def test_output_value_lookup(self, example):
        assert example.output_value("record").payload == "REC"
        with pytest.raises(KeyError):
            example.output_value("nope")

    def test_input_partitions(self, example):
        assert example.input_partitions() == ("UniProtAccession",)

    def test_same_inputs_ignores_outputs_and_partitions(self, example):
        other = DataExample(
            module_id="t.other",
            inputs=(Binding("id", TypedValue("P10000", STRING)),),
            outputs=(),
        )
        assert example.same_inputs(other)

    def test_same_inputs_detects_differences(self, example):
        other = DataExample(
            module_id="t.m",
            inputs=(Binding("id", TypedValue("P10001", STRING)),),
            outputs=(),
        )
        assert not example.same_inputs(other)

    def test_render_shows_both_sides(self, example):
        card = example.render()
        assert "in  id" in card
        assert "out record" in card
        assert "P10000" in card

    def test_examples_are_frozen(self, example):
        with pytest.raises(AttributeError):
            example.module_id = "x"
