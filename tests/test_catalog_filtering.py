"""Behavioral tests of the filtering family."""

from repro.modules.interfaces import invoke_via_interface
from repro.values import FLOAT, INTEGER, STRING, TABULAR, TypedValue, list_of

LIST_STRING = list_of(STRING)


def _filter(ctx, module, **bindings):
    return invoke_via_interface(module, ctx, bindings)


class TestSimpleFilters:
    def test_length_filter_keeps_long_items(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_proteins_by_length"]
        items = TypedValue(("MKW", "M" + "K" * 30), LIST_STRING, "ProteinSequence")
        out = _filter(ctx, module, items=items,
                      threshold=TypedValue(10, INTEGER, "LengthThreshold"))
        assert out["filtered"].payload == ("M" + "K" * 30,)

    def test_filter_output_is_subset(self, ctx, catalog_by_id, factory):
        module = catalog_by_id["fl.filter_proteins_by_length"]
        items = factory.list_instance("ProteinSequence")
        out = _filter(ctx, module, items=items,
                      threshold=TypedValue(25, INTEGER, "LengthThreshold"))
        assert set(out["filtered"].payload) <= set(items.payload)

    def test_met_filter(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_proteins_met"]
        items = TypedValue(("MKWL", "KWLM"), LIST_STRING, "ProteinSequence")
        out = _filter(ctx, module, items=items)
        assert out["filtered"].payload == ("MKWL",)

    def test_duplicate_filter_keeps_first_occurrence(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_duplicates"]
        items = TypedValue(("MKW", "MLL", "MKW"), LIST_STRING, "ProteinSequence")
        out = _filter(ctx, module, items=items)
        assert out["filtered"].payload == ("MKW", "MLL")

    def test_peptide_mass_filter(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_short_peptides"]
        masses = TypedValue((100.0, 900.0, 2000.0), list_of(FLOAT), "PeptideMassList")
        out = _filter(ctx, module, masses=masses,
                      cutoff=TypedValue(500.0, FLOAT, "ScoreThreshold"))
        assert out["filtered"].payload == (900.0, 2000.0)

    def test_structure_filter_consults_universe(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["fl.filter_with_structure"]
        with_structure = universe.proteins[0].uniprot  # ordinal 0 -> structure
        without = universe.proteins[1].uniprot  # ordinal 1 -> none
        items = TypedValue((with_structure, without), LIST_STRING, "UniProtAccession")
        out = _filter(ctx, module, items=items)
        assert out["filtered"].payload == (with_structure,)

    def test_organism_filter(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["fl.filter_genes_by_organism"]
        items = TypedValue(
            tuple(g.kegg_id for g in universe.genes[:4]), LIST_STRING, "KEGGGeneId"
        )
        organism = TypedValue(universe.taxon_for_organism(2), STRING, "NCBITaxonId")
        out = _filter(ctx, module, items=items, organism=organism)
        assert out["filtered"].payload == (universe.genes[2].kegg_id,)


class TestReportFilters:
    def test_score_filter_keeps_comments(self, ctx, catalog_by_id):
        from repro.biodb.reports import render_homology_report

        report = render_homology_report(
            "q", [("P10000", "a", 50), ("P10001", "b", 5)], "db", "blastp"
        )
        module = catalog_by_id["fl.filter_hits_by_score"]
        out = _filter(
            ctx, module,
            report=TypedValue(report, TABULAR, "HomologySearchReport"),
            threshold=TypedValue(20.0, FLOAT, "ScoreThreshold"),
        )
        lines = out["filtered"].payload.splitlines()
        assert any(line.startswith("#") for line in lines)
        assert any("P10000" in line for line in lines)
        assert not any("P10001" in line for line in lines)

    def test_expression_variance_filter(self, ctx, catalog_by_id):
        from repro.biodb.expression import render_expression_table

        table = render_expression_table(
            ["wild", "flat"], ["a", "b"], [[0.0, 9.0], [1.0, 1.2]]
        )
        module = catalog_by_id["fl.filter_expression_variance"]
        out = _filter(
            ctx, module,
            table=TypedValue(table, TABULAR, "ExpressionMatrix"),
            threshold=TypedValue(5.0, FLOAT, "ScoreThreshold"),
        )
        assert "wild" in out["filtered"].payload
        assert "flat" not in out["filtered"].payload


class TestHiddenClasses:
    """Table 1's under-partitioning: edge-case classes exist and are
    executable but never exhibited by pool sampling."""

    def test_empty_input_class(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_nuc_by_gc"]
        bindings = {
            "items": TypedValue((), LIST_STRING, "NucleotideSequence"),
            "threshold": TypedValue(25, INTEGER, "LengthThreshold"),
        }
        assert module.classify(ctx, bindings) == "empty-input"
        out = module.invoke(ctx, bindings)
        assert out["filtered"].payload == "EMPTY-INPUT"

    def test_per_kind_classes_distinct(self, ctx, catalog_by_id, factory):
        module = catalog_by_id["fl.filter_nuc_by_gc"]
        labels = set()
        for concept in ("DNASequence", "RNASequence", "NucleotideSequence"):
            items = factory.list_instance(concept)
            bindings = {
                "items": items,
                "threshold": TypedValue(25, INTEGER, "LengthThreshold"),
            }
            labels.add(module.classify(ctx, bindings))
        assert len(labels) == 3

    def test_nothing_passes_class(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_nuc_window_gc"]
        # All-A sequences have zero GC in any window: nothing passes.
        items = TypedValue(("AAAA", "AATA"), LIST_STRING, "DNASequence")
        bindings = {
            "items": items,
            "threshold": TypedValue(25, INTEGER, "LengthThreshold"),
        }
        assert module.classify(ctx, bindings) == "nothing-passes"
        out = module.invoke(ctx, bindings)
        assert out["filtered"].payload == "NO-MATCH"

    def test_weight_filter_hidden_class(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_proteins_by_weight"]
        assert module.behavior.n_classes == 2
        bindings = {
            "items": TypedValue((), LIST_STRING, "ProteinSequence"),
            "cutoff": TypedValue(20.0, FLOAT, "ScoreThreshold"),
        }
        assert module.classify(ctx, bindings) == "empty-input"

    def test_weight_filter_main_class(self, ctx, catalog_by_id):
        module = catalog_by_id["fl.filter_proteins_by_weight"]
        items = TypedValue(("MKWLE",), LIST_STRING, "ProteinSequence")
        out = module.invoke(
            ctx,
            {"items": items, "cutoff": TypedValue(20.0, FLOAT, "ScoreThreshold")},
        )
        assert out["filtered"].payload == ("MKWLE",)
