"""Tests of the quarantine layer: the QuarantinedExample record, the
QuarantineLog accumulator, and generation reports that withhold
byzantine evidence instead of admitting it."""

from __future__ import annotations

import pytest

from repro.core.examples import Binding
from repro.core.generation import ExampleGenerator
from repro.core.quarantine import (
    CAUSE_MALFORMED,
    CAUSE_NONDETERMINISTIC,
    CAUSE_TIMEOUT,
    QuarantinedExample,
    QuarantineLog,
)
from repro.engine import (
    ConformancePolicy,
    EngineConfig,
    FaultPlan,
    InvocationEngine,
    WatchdogPolicy,
)
from repro.values import STRING, TypedValue


def _record(module_id, cause, parameter="in", payload="x", outputs=()):
    value = TypedValue(payload=payload, structural=STRING, concept=None)
    return QuarantinedExample(
        module_id=module_id,
        inputs=(Binding(parameter=parameter, value=value),),
        cause=cause,
        detail=f"{module_id} failed",
        outputs=outputs,
    )


class TestQuarantinedExample:
    def test_semantic_split(self):
        assert not _record("m", CAUSE_TIMEOUT).semantic
        assert _record("m", CAUSE_MALFORMED).semantic
        assert _record("m", CAUSE_NONDETERMINISTIC).semantic

    def test_render_shows_cause_inputs_and_detail(self):
        value = TypedValue(payload="lie", structural=STRING, concept=None)
        record = _record(
            "xf.liar",
            CAUSE_MALFORMED,
            outputs=(Binding(parameter="out", value=value),),
        )
        text = record.render()
        assert "[malformed-output] xf.liar" in text
        assert "in  " in text and "out " in text
        assert "xf.liar failed" in text


class TestQuarantineLog:
    def test_accumulates_and_groups(self):
        log = QuarantineLog()
        log.add(_record("m1", CAUSE_TIMEOUT))
        log.extend([_record("m2", CAUSE_MALFORMED), _record("m1", CAUSE_TIMEOUT)])
        assert len(log) == 3
        grouped = log.by_module()
        assert list(grouped) == ["m1", "m2"]
        assert len(grouped["m1"]) == 2
        assert log.counts_by_cause() == {
            CAUSE_MALFORMED: 1,
            CAUSE_TIMEOUT: 2,
        }

    def test_timeout_only_modules_are_not_semantically_decayed(self):
        log = QuarantineLog()
        log.add(_record("m.wedged", CAUSE_TIMEOUT))
        log.add(_record("m.liar", CAUSE_MALFORMED))
        log.add(_record("m.flaky", CAUSE_NONDETERMINISTIC))
        log.add(_record("m.liar", CAUSE_MALFORMED))  # dedup to one id
        assert log.semantically_decayed() == ["m.flaky", "m.liar"]

    def test_render(self):
        log = QuarantineLog()
        log.add(_record("m.liar", CAUSE_MALFORMED))
        text = log.render()
        assert "quarantined:       1" in text
        assert CAUSE_MALFORMED in text
        assert "m.liar" in text


class TestGenerationQuarantine:
    @pytest.fixture
    def module(self, catalog_by_id):
        return catalog_by_id["ret.get_uniprot_record"]

    def _generate(self, ctx, pool, module, fault_field):
        engine = InvocationEngine(
            EngineConfig(
                fault_plan=FaultPlan(
                    **{fault_field: frozenset({module.provider})},
                    hang_duration_s=30.0,
                ),
                conformance=ConformancePolicy(probe_rate=1.0),
                watchdog=WatchdogPolicy(budget=0.05),
            )
        )
        generator = ExampleGenerator(ctx, pool, engine=engine)
        try:
            return generator.generate(module)
        finally:
            if engine.fault_injector is not None:
                engine.fault_injector.release_hangs()

    def test_hanging_module_yields_timeout_quarantines(self, ctx, pool, module):
        report = self._generate(ctx, pool, module, "hang_providers")
        assert report.examples == []
        assert report.timed_out_combinations == len(report.quarantined) > 0
        assert report.quarantined_combinations == 0
        for record in report.quarantined:
            assert record.cause == CAUSE_TIMEOUT
            assert record.outputs == ()
            assert record.inputs  # the combination survives for forensics
        # A wedged module is decayed, not busy: the report is *done*.
        assert report.complete

    def test_lying_module_yields_semantic_quarantines(self, ctx, pool, module):
        report = self._generate(ctx, pool, module, "corrupt_output_providers")
        assert report.examples == []
        assert report.quarantined_combinations == len(report.quarantined) > 0
        assert report.timed_out_combinations == 0
        for record in report.quarantined:
            assert record.cause == CAUSE_MALFORMED
            # Single-output catalog modules lose their only output to the
            # arity lie; the detail names the mismatch instead.
            assert "output names" in record.detail
        assert report.complete

    def test_nondeterministic_module_captures_the_first_answer(
        self, ctx, pool, module
    ):
        report = self._generate(ctx, pool, module, "nondeterministic_providers")
        assert report.examples == []
        assert report.quarantined_combinations == len(report.quarantined) > 0
        for record in report.quarantined:
            assert record.cause == CAUSE_NONDETERMINISTIC
            assert record.outputs  # the disputed answer is captured
        assert report.complete

    def test_quarantine_log_ingests_reports(self, ctx, pool, module):
        report = self._generate(ctx, pool, module, "corrupt_output_providers")
        log = QuarantineLog()
        assert log.ingest_report(report) == len(report.quarantined)
        assert log.semantically_decayed() == [module.module_id]

    def test_honest_module_quarantines_nothing(self, ctx, pool, module):
        engine = InvocationEngine(
            EngineConfig(
                conformance=ConformancePolicy(probe_rate=1.0),
                watchdog=WatchdogPolicy(budget=30.0),
            )
        )
        report = ExampleGenerator(ctx, pool, engine=engine).generate(module)
        assert report.quarantined == []
        assert report.n_examples > 0
        assert report.complete
