"""Unit tests for behavior tokens, minhash signatures and LSH banding."""

import pytest

from repro.core.examples import Binding, DataExample
from repro.match.signature import (
    EMPTY_ROW,
    MinHashSignature,
    SignatureConfig,
    band_keys,
    behavior_token,
    behavior_tokens,
    compute_signature,
    input_token,
    input_tokens,
)
from repro.values import STRING, string_value


def example(module_id, inputs, outputs):
    return DataExample(
        module_id=module_id,
        inputs=tuple(
            Binding(name, string_value(payload, STRING))
            for name, payload in inputs
        ),
        outputs=tuple(
            Binding(name, string_value(payload, STRING))
            for name, payload in outputs
        ),
    )


class TestBehaviorToken:
    def test_deterministic(self):
        a = example("m", [("x", "P1")], [("y", "Q1")])
        b = example("m", [("x", "P1")], [("y", "Q1")])
        assert behavior_token(a) == behavior_token(b)

    def test_parameter_names_erased(self):
        a = example("m1", [("id", "P1")], [("record", "Q1")])
        b = example("m2", [("identifier", "P1")], [("result", "Q1")])
        assert behavior_token(a) == behavior_token(b)

    def test_payloads_matter(self):
        a = example("m", [("x", "P1")], [("y", "Q1")])
        b = example("m", [("x", "P1")], [("y", "Q2")])
        assert behavior_token(a) != behavior_token(b)

    def test_input_token_erases_outputs(self):
        a = example("m1", [("x", "P1")], [("y", "Q1")])
        b = example("m2", [("x", "P1")], [("y", "DIFFERENT")])
        assert input_token(a) == input_token(b)
        assert behavior_token(a) != behavior_token(b)

    def test_token_sets_collapse_duplicates(self):
        a = example("m", [("x", "P1")], [("y", "Q1")])
        b = example("m", [("x", "P1")], [("y", "Q1")])
        assert len(behavior_tokens([a, b])) == 1
        assert len(input_tokens([a, b])) == 1


class TestSignatureConfig:
    def test_defaults_valid(self):
        config = SignatureConfig()
        assert config.rows_per_band * config.bands == config.width

    def test_bands_must_divide_width(self):
        with pytest.raises(ValueError, match="divide"):
            SignatureConfig(width=64, bands=7)

    def test_positive_width_and_bands(self):
        with pytest.raises(ValueError):
            SignatureConfig(width=0)
        with pytest.raises(ValueError):
            SignatureConfig(bands=0)


class TestComputeSignature:
    def test_empty_examples_are_empty_signature(self):
        signature = compute_signature([])
        assert signature.is_empty
        assert signature.values == (EMPTY_ROW,) * 64
        assert band_keys(signature, SignatureConfig()) == ()

    def test_deterministic_across_calls(self):
        examples = [example("m", [("x", f"P{i}")], [("y", f"Q{i}")])
                    for i in range(4)]
        assert compute_signature(examples) == compute_signature(examples)

    def test_seed_changes_signature(self):
        examples = [example("m", [("x", "P1")], [("y", "Q1")])]
        a = compute_signature(examples, SignatureConfig(seed=1))
        b = compute_signature(examples, SignatureConfig(seed=2))
        assert a != b

    def test_identical_token_sets_estimate_one(self):
        examples = [example("m", [("x", f"P{i}")], [("y", f"Q{i}")])
                    for i in range(5)]
        a = compute_signature(examples)
        b = compute_signature(list(reversed(examples)))
        assert a.estimate_jaccard(b) == 1.0

    def test_disjoint_token_sets_estimate_near_zero(self):
        a = compute_signature(
            [example("m", [("x", f"A{i}")], [("y", f"B{i}")]) for i in range(5)]
        )
        b = compute_signature(
            [example("m", [("x", f"C{i}")], [("y", f"D{i}")]) for i in range(5)]
        )
        assert a.estimate_jaccard(b) < 0.2

    def test_empty_signature_estimates_zero(self):
        a = compute_signature([])
        b = compute_signature([example("m", [("x", "P")], [("y", "Q")])])
        assert a.estimate_jaccard(b) == 0.0
        assert a.estimate_jaccard(compute_signature([])) == 0.0

    def test_width_mismatch_raises(self):
        a = compute_signature([], SignatureConfig(width=64))
        b = compute_signature([], SignatureConfig(width=32, bands=8))
        with pytest.raises(ValueError, match="widths differ"):
            a.estimate_jaccard(b)


class TestBandKeys:
    def test_one_key_per_band(self):
        config = SignatureConfig(width=64, bands=16)
        signature = compute_signature(
            [example("m", [("x", "P")], [("y", "Q")])], config
        )
        assert len(band_keys(signature, config)) == 16

    def test_identical_signatures_share_all_bands(self):
        config = SignatureConfig()
        examples = [example("m", [("x", "P")], [("y", "Q")])]
        a = compute_signature(examples, config)
        b = compute_signature(examples, config)
        assert band_keys(a, config) == band_keys(b, config)

    def test_stable_against_process_hash_randomization(self):
        # blake2b-based hashing must not depend on PYTHONHASHSEED; pin
        # one token so journaled signatures stay loadable forever.
        token = behavior_token(example("m", [("x", "P1")], [("y", "Q1")]))
        assert token == behavior_token(example("m", [("x", "P1")], [("y", "Q1")]))
        assert isinstance(token, int)
        assert 0 <= token < 2 ** 64


class TestMinHashSignatureModel:
    def test_is_empty_flag(self):
        assert MinHashSignature(values=(EMPTY_ROW,) * 4, n_tokens=0).is_empty
        assert not MinHashSignature(values=(1, 2, 3, 4), n_tokens=2).is_empty
