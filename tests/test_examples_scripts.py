"""Smoke tests: every shipped example script runs to completion.

The scripts are executed in-process (runpy) so they share the session's
cached universes; each still exercises its full code path and its printed
claims are spot-checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, capsys, argv: "list[str] | None" = None) -> str:
    old_argv = sys.argv
    sys.argv = [script] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.slow
class TestExampleScripts:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "GetUniProtRecord" in out
        assert "completeness: 1.00" in out

    def test_protein_identification(self, capsys):
        out = _run("protein_identification.py", capsys)
        assert "succeeded=True" in out
        assert "final alignment report" in out

    def test_module_matching(self, capsys):
        out = _run("module_matching.py", capsys)
        assert "equivalent" in out
        assert "overlapping" in out

    def test_workflow_repair(self, capsys):
        out = _run("workflow_repair.py", capsys)
        assert "72 modules became unavailable" in out
        assert "validated against history: True" in out

    def test_annotate_catalog(self, capsys, tmp_path):
        out = _run("annotate_catalog.py", capsys, [str(tmp_path / "reg.db")])
        assert "annotated 252 modules" in out
        assert "reloaded 252 modules" in out

    def test_future_work(self, capsys):
        out = _run("future_work.py", capsys)
        assert "estimated classes" in out
        assert "value-level only" in out

    def test_decay_monitoring(self, capsys):
        out = _run("decay_monitoring.py", capsys)
        assert "Decay report" in out
        assert "broken:" in out

    def test_user_study_session(self, capsys, tmp_path):
        out = _run("user_study_session.py", capsys, [str(tmp_path)])
        assert "questionnaire with 252 cards" in out
        assert "user1: 47 without examples, 169 with" in out

    def test_engine_tuning(self, capsys):
        out = _run("engine_tuning.py", capsys)
        assert "warm pass (cache hits)" in out
        assert "Invocation engine — cost accounting" in out
        assert "examples generated anyway" in out
