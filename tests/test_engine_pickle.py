"""Tests of what must cross the spawn boundary into shard workers:
pickling of the fault plan / engine config / fault injector, the
process-chaos knobs, and the injectable terminate hook."""

from __future__ import annotations

import pickle

import pytest

from repro.engine import (
    ConformancePolicy,
    EngineConfig,
    FaultPlan,
    RetryPolicy,
    WatchdogPolicy,
)
from repro.engine.faults import FaultInjectingInvoker


class _EchoInvoker:
    """Answers every call with empty outputs; counts the calls."""

    def __init__(self):
        self.calls = 0

    def invoke(self, module, ctx, bindings):
        self.calls += 1
        return {}


def _chaos_injector(module, plan, **kwargs):
    return FaultInjectingInvoker(_EchoInvoker(), plan, **kwargs)


# ----------------------------------------------------------------------
# Chaos plan validation + arming
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_defaults_are_chaos_free(self):
        assert not FaultPlan().process_chaos

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_at_invocation": 3},
            {"kill_rate": 0.25},
            {"stall_heartbeat_after": 1},
        ],
    )
    def test_any_chaos_knob_arms_the_plan(self, kwargs):
        assert FaultPlan(**kwargs).process_chaos

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kill_rate": -0.1},
            {"kill_rate": 1.5},
            {"kill_at_invocation": -1},
            {"stall_heartbeat_after": -1},
        ],
    )
    def test_invalid_chaos_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)


class TestProcessChaos:
    def test_kill_at_invocation_fires_exactly_once(self, ctx, catalog):
        killed = []
        injector = _chaos_injector(
            catalog[0],
            FaultPlan(kill_at_invocation=2),
            terminate=lambda: killed.append(True),
        )
        injector.invoke(catalog[0], ctx, {})
        assert not killed
        injector.invoke(catalog[0], ctx, {})
        assert killed == [True]
        # Past the kill point the worker (had it survived, as unit tests
        # do) keeps serving.
        injector.invoke(catalog[0], ctx, {})
        assert killed == [True]
        assert injector.invocations == 3

    def test_kill_rate_is_seeded_and_deterministic(self, ctx, catalog):
        def run():
            killed = []
            injector = _chaos_injector(
                catalog[0],
                FaultPlan(seed=7, kill_rate=0.3),
                terminate=lambda: killed.append(injector.invocations),
            )
            for _ in range(20):
                injector.invoke(catalog[0], ctx, {})
            return killed

        first, second = run(), run()
        assert first == second
        assert first  # 20 draws at 0.3 kill at least once

    def test_zero_kill_rate_consumes_no_rng(self, ctx, catalog):
        """The short-circuit matters: a disabled kill coin must not
        shift the RNG draws of other fault features between serial and
        sharded configurations."""
        injector = _chaos_injector(catalog[0], FaultPlan(kill_rate=0.0))
        before = injector._rng.getstate()
        injector.invoke(catalog[0], ctx, {})
        assert injector._rng.getstate() == before

    def test_stall_heartbeat_raises_the_flag_but_keeps_serving(
        self, ctx, catalog
    ):
        injector = _chaos_injector(
            catalog[0], FaultPlan(stall_heartbeat_after=2)
        )
        injector.invoke(catalog[0], ctx, {})
        assert not injector.heartbeat_stalled.is_set()
        injector.invoke(catalog[0], ctx, {})
        assert injector.heartbeat_stalled.is_set()
        assert injector.invoke(catalog[0], ctx, {}) == {}


# ----------------------------------------------------------------------
# Pickling across the spawn boundary
# ----------------------------------------------------------------------
class TestPickling:
    def test_fault_plan_round_trips(self):
        plan = FaultPlan(
            seed=42,
            transient_failure_rate=0.1,
            latency_ms=5.0,
            blackout_providers=frozenset({"EBI"}),
            kill_at_invocation=9,
            kill_rate=0.05,
            stall_heartbeat_after=4,
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_engine_config_round_trips(self):
        config = EngineConfig(
            parallelism=2,
            cache_size=128,
            retry=RetryPolicy(seed=1),
            fault_plan=FaultPlan(seed=1, latency_ms=2.0),
            conformance=ConformancePolicy(probe_rate=0.5, probe_seed=1),
            watchdog=WatchdogPolicy(budget=1.0),
        )
        rebuilt = pickle.loads(pickle.dumps(config))
        assert rebuilt.parallelism == config.parallelism
        assert rebuilt.fault_plan == config.fault_plan
        assert rebuilt.retry == config.retry

    def test_injector_preserves_rng_and_counters(self, ctx, catalog):
        plan = FaultPlan(seed=11, transient_failure_rate=0.4)
        original = _chaos_injector(catalog[0], plan)

        def outcomes(injector, n):
            results = []
            for _ in range(n):
                try:
                    injector.invoke(catalog[0], ctx, {})
                    results.append("ok")
                except Exception:
                    results.append("fault")
            return results

        prefix = outcomes(original, 5)
        clone = pickle.loads(pickle.dumps(original))
        clone.inner = _EchoInvoker()  # inner is rebuilt by the engine
        assert clone.invocations == original.invocations
        # The clone continues the seeded fault sequence exactly where
        # the original would have.
        assert outcomes(clone, 5) == outcomes(original, 5)
        assert prefix  # the prefix actually exercised the RNG

    def test_injector_pickle_preserves_stalled_flag(self, ctx, catalog):
        injector = _chaos_injector(
            catalog[0], FaultPlan(stall_heartbeat_after=1)
        )
        injector.invoke(catalog[0], ctx, {})
        assert injector.heartbeat_stalled.is_set()
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.heartbeat_stalled.is_set()

    def test_unpickled_injector_restores_default_wiring(self, ctx, catalog):
        injector = _chaos_injector(
            catalog[0],
            FaultPlan(),
            terminate=lambda: None,
            on_fault=lambda module, detail: None,
        )
        clone = pickle.loads(pickle.dumps(injector))
        # Process-local callables are dropped and replaced by the real
        # defaults (os._exit for terminate, time.sleep for sleep).
        assert clone._terminate is not injector._terminate
        assert clone._on_fault is None
        clone.inner = _EchoInvoker()
        assert clone.invoke(catalog[0], ctx, {}) == {}
