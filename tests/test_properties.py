"""Hypothesis property tests over core data structures and invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import histogram
from repro.modules.interfaces import value_from_wire, value_to_wire
from repro.ontology import Concept, Ontology
from repro.pool.pool import InstancePool
from repro.values import FLOAT, STRING, TypedValue, list_of


# ----------------------------------------------------------------------
# Random forest ontologies
# ----------------------------------------------------------------------
@st.composite
def forests(draw):
    """A random ontology: each concept's parent is any earlier concept."""
    size = draw(st.integers(min_value=1, max_value=25))
    concepts = [Concept("c0")]
    for index in range(1, size):
        parent_index = draw(st.integers(min_value=0, max_value=index - 1))
        covered = draw(st.booleans())
        concepts.append(
            Concept(
                f"c{index}",
                parents=(f"c{parent_index}",),
                covered_by_children=covered,
            )
        )
    return Ontology(concepts)


class TestOntologyProperties:
    @given(forests())
    @settings(max_examples=50)
    def test_subsumption_is_a_partial_order(self, ontology):
        names = ontology.names()
        rng = random.Random(0)
        sample = [rng.choice(names) for _ in range(6)]
        for a in sample:
            assert ontology.subsumes(a, a)
            for b in sample:
                if ontology.subsumes(a, b) and ontology.subsumes(b, a):
                    assert a == b

    @given(forests())
    @settings(max_examples=50)
    def test_partitions_are_subsumed_by_root_concept(self, ontology):
        for name in ontology.names():
            for partition in ontology.partitions_of(name):
                assert ontology.subsumes(name, partition)

    @given(forests())
    @settings(max_examples=50)
    def test_descendants_and_ancestors_are_inverse(self, ontology):
        for name in ontology.names():
            for descendant in ontology.descendants(name):
                assert name in ontology.ancestors(descendant)

    @given(forests(), st.integers(min_value=0, max_value=4))
    @settings(max_examples=50)
    def test_depth_cap_monotone(self, ontology, cap):
        for name in ontology.names():
            capped = set(ontology.partitions_of(name, max_depth=cap))
            fuller = set(ontology.partitions_of(name, max_depth=cap + 1))
            full = set(ontology.partitions_of(name))
            assert capped <= fuller <= full


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
scalar_values = st.one_of(
    st.text(max_size=50).map(lambda s: TypedValue(s, STRING, "KeywordSet")),
    st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=5
    ).map(lambda xs: TypedValue(tuple(xs), list_of(FLOAT), "PeptideMassList")),
)


class TestWireProperties:
    @given(scalar_values)
    def test_wire_round_trip_is_identity(self, value):
        assert value_from_wire(value_to_wire(value)) == value


# ----------------------------------------------------------------------
# Pool invariants
# ----------------------------------------------------------------------
class TestPoolProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B", "C"]),
                st.text(alphabet="xyz", min_size=1, max_size=4),
            ),
            max_size=30,
        )
    )
    def test_pool_size_counts_distinct_values(self, entries):
        pool = InstancePool()
        distinct = set()
        for concept, payload in entries:
            pool.add(TypedValue(payload, STRING, concept))
            distinct.add((concept, payload))
        assert len(pool) == len(distinct)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A", "B"]),
                st.text(alphabet="xy", min_size=1, max_size=3),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_get_instance_returns_earliest_added(self, entries):
        pool = InstancePool()
        first_of: dict[str, str] = {}
        for concept, payload in entries:
            if pool.add(TypedValue(payload, STRING, concept)):
                first_of.setdefault(concept, payload)
        for concept, payload in first_of.items():
            assert pool.get_instance(concept).payload == payload


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1, width=32), min_size=1))
    def test_histogram_preserves_total(self, values):
        rows = histogram(list(values))
        assert sum(count for _v, count in rows) == len(values)

    @given(st.lists(st.floats(min_value=0, max_value=1, width=32), min_size=1))
    def test_histogram_is_sorted_descending(self, values):
        rows = histogram(list(values))
        keys = [v for v, _c in rows]
        assert keys == sorted(keys, reverse=True)
