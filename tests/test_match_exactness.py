"""The exactness property: pruning never changes a §6 classification.

Banded-LSH candidate pruning followed by exact verification must yield
byte-identical match classifications to exhaustive pairwise comparison —
on the 252-module paper catalog (witnessed by a sha256 digest over the
full match set) and on synthetic catalogs with known ground truth.
"""

import pytest

from repro.match import (
    CandidateMatcher,
    SignatureIndex,
    build_synthetic_catalog,
    classification_digest,
    exhaustive_match_all,
)
from repro.match.synth import SyntheticCatalogConfig


class TestPaperCatalogExactness:
    def test_indexed_matches_equal_exhaustive(self, setup):
        """The digest-pinned witness over the 72 decayed paper modules."""
        indexed = setup.indexed_matches
        exhaustive = exhaustive_match_all(
            setup.ctx,
            setup.decayed,
            setup.decayed_examples,
            setup.catalog,
            engine=setup.engine,
        )
        assert classification_digest(indexed.matches) == classification_digest(
            exhaustive.matches
        )

    def test_indexed_matches_equal_legacy_find_matches(self, setup):
        """The indexed match set agrees with the §6 reference
        implementation the experiments report on."""
        assert classification_digest(setup.indexed_matches.matches) == (
            classification_digest(setup.matches)
        )

    def test_pruning_saves_work(self, setup):
        accounting = setup.indexed_matches.accounting
        assert accounting.candidate_pairs < accounting.exhaustive_pairs
        assert accounting.pruning_ratio > 0.5

    def test_every_decayed_module_was_matched(self, setup):
        assert set(setup.indexed_matches.matches) == {
            m.module_id for m in setup.decayed
        }


class TestSyntheticExactness:
    @pytest.mark.parametrize("n_modules,seed", [(60, 2014), (90, 7)])
    def test_digest_equality(self, n_modules, seed):
        world = build_synthetic_catalog(
            SyntheticCatalogConfig(n_modules=n_modules, seed=seed)
        )
        index = SignatureIndex()
        for module in world.modules:
            index.add_module(module, world.examples_by_id[module.module_id])
        matcher = CandidateMatcher(
            world.ctx, world.modules_by_id, world.examples_by_id, index
        )
        pruned = matcher.match_all()
        exhaustive = exhaustive_match_all(
            world.ctx, world.modules, world.examples_by_id, world.modules
        )
        assert classification_digest(pruned.matches) == classification_digest(
            exhaustive.matches
        )
        assert pruned.accounting.invocations < (
            exhaustive.accounting.invocations / 2
        )


class TestEdgeCases:
    def test_empty_catalog(self):
        index = SignatureIndex()
        matcher = CandidateMatcher(None, {}, {}, index)
        run = matcher.match_all()
        assert run.matches == {}
        assert run.accounting.exhaustive_pairs == 0
        assert run.accounting.pruning_ratio == 0.0
        assert classification_digest(run.matches) == classification_digest({})

    def test_singleton_catalog_has_no_candidates(self):
        world = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=1))
        index = SignatureIndex()
        module = world.modules[0]
        index.add_module(module, world.examples_by_id[module.module_id])
        matcher = CandidateMatcher(
            world.ctx, world.modules_by_id, world.examples_by_id, index
        )
        run = matcher.match_all()
        assert run.matches == {module.module_id: []}
        assert run.accounting.invocations == 0

    def test_module_without_examples_matches_nothing(self):
        world = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=12))
        index = SignatureIndex()
        for module in world.modules:
            index.add_module(module, world.examples_by_id[module.module_id])
        ghost = world.modules[0]
        index.remove(ghost.module_id)
        index.add_module(ghost, [])
        matcher = CandidateMatcher(
            world.ctx,
            world.modules_by_id,
            dict(world.examples_by_id, **{ghost.module_id: []}),
            index,
        )
        assert matcher.match_module(ghost.module_id) == []

    def test_digest_ignores_disjoint_by_default(self):
        world = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=24))
        exhaustive = exhaustive_match_all(
            world.ctx, world.modules, world.examples_by_id, world.modules
        )
        with_disjoint = classification_digest(
            exhaustive.matches, include_disjoint=True
        )
        without = classification_digest(exhaustive.matches)
        assert with_disjoint != without
