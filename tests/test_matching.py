"""Tests for the §6 behavior matcher."""

import pytest

from repro.core.generation import ExampleGenerator
from repro.core.matching import (
    MatchKind,
    best_match,
    compare_behavior,
    find_matches,
    map_parameters,
)
from repro.modules.catalog.decayed import (
    CONTEXT_SAFE_OVERLAP_IDS,
    DECAYED_PROVIDERS,
    build_decayed_modules,
)
from repro.workflow.decay import shut_down_providers


@pytest.fixture(scope="module")
def decayed_world(ctx, pool, catalog):
    """Decayed modules with their pre-decay examples, already shut down."""
    decayed = build_decayed_modules()
    generator = ExampleGenerator(ctx, pool)
    examples = {m.module_id: generator.generate(m).examples for m in decayed}
    shut_down_providers(decayed, DECAYED_PROVIDERS)
    return {m.module_id: m for m in decayed}, examples


class TestParameterMapping:
    def test_exact_mapping_of_twin(self, ontology, decayed_world, catalog_by_id):
        decayed, _examples = decayed_world
        mapping = map_parameters(
            ontology, decayed["old.get_kegg_gene_s"], catalog_by_id["ret.get_kegg_gene"]
        )
        assert mapping is not None
        assert not mapping.relaxed
        assert mapping.inputs == {"id": "id"}
        assert mapping.outputs == {"record": "record"}

    def test_relaxed_mapping_figure7(self, ontology, decayed_world, catalog_by_id):
        """GetProteinSequence maps onto GetBiologicalSequence through
        strict super-concepts on both sides (Figure 7)."""
        decayed, _examples = decayed_world
        mapping = map_parameters(
            ontology,
            decayed["old.get_protein_sequence"],
            catalog_by_id["ret.get_biological_sequence"],
        )
        assert mapping is not None
        assert mapping.relaxed

    def test_relaxation_is_directional(self, ontology, decayed_world, catalog_by_id):
        """The broad module does NOT map onto the narrow one."""
        decayed, _examples = decayed_world
        assert (
            map_parameters(
                ontology,
                catalog_by_id["ret.get_biological_sequence"],
                decayed["old.get_protein_sequence"],
            )
            is None
        )

    def test_arity_mismatch_rejected(self, ontology, catalog_by_id):
        assert (
            map_parameters(
                ontology, catalog_by_id["an.blastp"], catalog_by_id["an.blast_any"]
            )
            is None
        )

    def test_structural_mismatch_rejected(self, ontology, catalog_by_id):
        # Same record concept, different flat-file formats.
        assert (
            map_parameters(
                ontology,
                catalog_by_id["xf.uniprot_to_fasta"],
                catalog_by_id["xf.fasta_to_uniprot"],
            )
            is None
        )

    def test_exact_match_preferred_over_relaxed(self, ontology, catalog_by_id):
        mapping = map_parameters(
            ontology, catalog_by_id["an.smith_waterman"], catalog_by_id["an.needleman"]
        )
        assert mapping is not None
        assert not mapping.relaxed


class TestComparison:
    def test_twin_is_equivalent(self, ctx, decayed_world, catalog_by_id):
        decayed, examples = decayed_world
        module = decayed["old.get_kegg_gene_s"]
        candidate = catalog_by_id["ret.get_kegg_gene"]
        mapping = map_parameters(ctx.ontology, module, candidate)
        report = compare_behavior(
            ctx, module, examples[module.module_id], candidate, mapping
        )
        assert report.kind is MatchKind.EQUIVALENT
        assert report.n_agreeing == report.n_examples

    def test_relaxed_full_agreement_is_overlapping(
        self, ctx, decayed_world, catalog_by_id
    ):
        """Figure 7: full agreement on the narrow sub-domain is only
        *overlapping* — the candidate behaves differently elsewhere."""
        decayed, examples = decayed_world
        module = decayed["old.get_protein_sequence"]
        candidate = catalog_by_id["ret.get_biological_sequence"]
        mapping = map_parameters(ctx.ontology, module, candidate)
        report = compare_behavior(
            ctx, module, examples[module.module_id], candidate, mapping
        )
        assert report.kind is MatchKind.OVERLAPPING
        assert report.n_agreeing == report.n_examples
        assert report.agreement_domain["id"] == {"UniProtAccession"}

    def test_legacy_variant_partial_agreement(self, ctx, decayed_world, catalog_by_id):
        decayed, examples = decayed_world
        module = decayed["old.get_protein_record"]
        candidate = catalog_by_id["ret.get_protein_record"]
        mapping = map_parameters(ctx.ontology, module, candidate)
        report = compare_behavior(
            ctx, module, examples[module.module_id], candidate, mapping
        )
        assert report.kind is MatchKind.OVERLAPPING
        assert report.n_agreeing == 1
        assert report.agreement_domain["id"] == {"UniProtAccession"}

    def test_disjoint_same_signature(self, ctx, decayed_world, catalog_by_id):
        decayed, examples = decayed_world
        module = decayed["old.search_protein_top3"]
        candidate = catalog_by_id["an.blastp"]
        mapping = map_parameters(ctx.ontology, module, candidate)
        report = compare_behavior(
            ctx, module, examples[module.module_id], candidate, mapping
        )
        assert report.kind is MatchKind.DISJOINT

    def test_no_examples_returns_none(self, ctx, decayed_world, catalog_by_id):
        decayed, _examples = decayed_world
        module = decayed["old.get_kegg_gene_s"]
        candidate = catalog_by_id["ret.get_kegg_gene"]
        mapping = map_parameters(ctx.ontology, module, candidate)
        assert compare_behavior(ctx, module, [], candidate, mapping) is None


class TestFleetMatching:
    def test_figure8_population(self, ctx, decayed_world, catalog):
        decayed, examples = decayed_world
        kinds = {"equivalent": 0, "overlapping": 0, "none": 0}
        for module in decayed.values():
            best = best_match(
                find_matches(ctx, module, examples[module.module_id], list(catalog))
            )
            kinds[best.kind.value if best else "none"] += 1
        assert kinds == {"equivalent": 16, "overlapping": 23, "none": 33}

    def test_context_safe_modules_all_overlap(self, ctx, decayed_world, catalog):
        decayed, examples = decayed_world
        for module_id in CONTEXT_SAFE_OVERLAP_IDS:
            module = decayed[module_id]
            best = best_match(
                find_matches(ctx, module, examples[module_id], list(catalog))
            )
            assert best is not None
            assert best.kind is MatchKind.OVERLAPPING
            assert best.candidate_id == "ret.get_biological_sequence"

    def test_matches_sorted_equivalents_first(self, ctx, decayed_world, catalog):
        decayed, examples = decayed_world
        module = decayed["old.get_kegg_gene_s"]
        reports = find_matches(ctx, module, examples[module.module_id], list(catalog))
        kinds = [r.kind for r in reports]
        assert kinds == sorted(
            kinds,
            key=lambda k: {MatchKind.EQUIVALENT: 0, MatchKind.OVERLAPPING: 1,
                           MatchKind.DISJOINT: 2}[k],
        )

    def test_unavailable_candidates_skipped(self, ctx, decayed_world):
        decayed, examples = decayed_world
        module = decayed["old.get_kegg_gene_s"]
        # Matching against the decayed set itself finds nothing usable.
        reports = find_matches(
            ctx, module, examples[module.module_id], list(decayed.values())
        )
        assert reports == []

    def test_best_match_ignores_disjoint(self, ctx, decayed_world, catalog):
        decayed, examples = decayed_world
        module = decayed["old.search_protein_top3"]
        reports = find_matches(ctx, module, examples[module.module_id], list(catalog))
        assert reports  # blastp is comparable...
        assert best_match(reports) is None  # ...but only disjoint
