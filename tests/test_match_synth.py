"""The synthetic catalog generator: determinism, ground truth, workflows."""

import pytest

from repro.core.matching import compare_behavior, map_parameters
from repro.match import build_synthetic_catalog, synthetic_ontology
from repro.match.synth import LEAF_CONCEPTS, PARENT_CONCEPT, SyntheticCatalogConfig
from repro.workflow.validation import validate_workflow


@pytest.fixture(scope="module")
def world():
    return build_synthetic_catalog(SyntheticCatalogConfig(n_modules=40))


class TestConfigValidation:
    def test_examples_must_overlap_pool(self):
        # 2 * examples_per_module must exceed pool_size (pigeonhole:
        # any two family members then share an example input).
        with pytest.raises(ValueError, match="overlap"):
            SyntheticCatalogConfig(examples_per_module=4, pool_size=8)

    def test_examples_bounded_by_pool(self):
        with pytest.raises(ValueError):
            SyntheticCatalogConfig(examples_per_module=9, pool_size=8)

    def test_chain_bounds(self):
        with pytest.raises(ValueError):
            SyntheticCatalogConfig(chain_min=3, chain_max=2)


class TestDeterminism:
    def test_same_config_same_world(self, world):
        again = build_synthetic_catalog(SyntheticCatalogConfig(n_modules=40))
        assert [m.module_id for m in again.modules] == [
            m.module_id for m in world.modules
        ]
        assert again.family_of == world.family_of
        assert again.role_of == world.role_of
        assert [w.workflow_id for w in again.workflows] == [
            w.workflow_id for w in world.workflows
        ]
        for module in world.modules:
            mine = world.examples_by_id[module.module_id]
            theirs = again.examples_by_id[module.module_id]
            assert [
                (e.inputs[0].value.payload, e.outputs[0].value.payload)
                for e in mine
            ] == [
                (e.inputs[0].value.payload, e.outputs[0].value.payload)
                for e in theirs
            ]

    def test_different_seed_different_examples(self, world):
        other = build_synthetic_catalog(
            SyntheticCatalogConfig(n_modules=40, seed=7)
        )
        mine = world.examples_by_id[world.modules[0].module_id]
        theirs = other.examples_by_id[other.modules[0].module_id]
        assert [e.outputs[0].value.payload for e in mine] != [
            e.outputs[0].value.payload for e in theirs
        ]


class TestGroundTruth:
    def test_every_module_has_examples(self, world):
        for module in world.modules:
            examples = world.examples_by_id[module.module_id]
            assert len(examples) == world.config.examples_per_module

    def test_family_members_share_an_example_input(self, world):
        for module in world.modules:
            mine = {
                e.inputs[0].value.payload
                for e in world.examples_by_id[module.module_id]
            }
            for other_id in world.family_members(module.module_id):
                theirs = {
                    e.inputs[0].value.payload
                    for e in world.examples_by_id[other_id]
                }
                assert mine & theirs

    def test_equivalent_members_classify_equivalent(self, world):
        base = world.modules[0]
        by_id = world.modules_by_id
        equivalents = [
            other_id
            for other_id in world.family_members(base.module_id)
            if world.role_of[other_id] in ("equivalent", "renamed")
        ]
        assert equivalents
        for other_id in equivalents:
            mapping = map_parameters(world.ctx.ontology, base, by_id[other_id])
            assert mapping is not None
            report = compare_behavior(
                world.ctx,
                base,
                world.examples_by_id[base.module_id],
                by_id[other_id],
                mapping,
            )
            assert report is not None
            assert report.kind.value == "equivalent"

    def test_cross_family_modules_disagree(self, world):
        # Same inputs through two different families never agree.
        a = world.modules[0]
        b = next(
            m
            for m in world.modules
            if world.family_of[m.module_id] != world.family_of[a.module_id]
        )
        payload = world.examples_by_id[a.module_id][0].inputs[0].value.payload
        out_a = a.invoke(
            world.ctx,
            {a.inputs[0].name: world.examples_by_id[a.module_id][0].inputs[0].value},
        )
        out_b = b.invoke(
            world.ctx,
            {b.inputs[0].name: world.examples_by_id[a.module_id][0].inputs[0].value},
        )
        assert payload  # sanity: the pool payload is non-empty
        assert [v.payload for v in out_a.values()] != [
            v.payload for v in out_b.values()
        ]


class TestOntologyAndWorkflows:
    def test_ontology_shape(self):
        ontology = synthetic_ontology()
        for leaf in LEAF_CONCEPTS:
            assert ontology.subsumes(PARENT_CONCEPT, leaf)

    def test_workflows_validate(self, world):
        by_id = world.modules_by_id
        for workflow in world.workflows:
            report = validate_workflow(workflow, by_id, world.ctx.ontology)
            assert report.ok, (workflow.workflow_id, report.issues)

    def test_workflow_count_matches_config(self, world):
        assert len(world.workflows) == world.config.n_workflows

    def test_pool_serves_every_leaf(self, world):
        for leaf in LEAF_CONCEPTS:
            value = world.pool.get_instance(leaf, None)
            assert value is not None
