"""Tests for the workflow DAG model and link validity."""

import pytest

from repro.workflow.model import DataLink, Step, Workflow, link_is_valid


@pytest.fixture()
def chain():
    return Workflow(
        workflow_id="w1",
        name="chain",
        steps=(Step("s1", "m.a"), Step("s2", "m.b"), Step("s3", "m.c")),
        links=(
            DataLink("s1", "out", "s2", "in"),
            DataLink("s2", "out", "s3", "in"),
        ),
    )


class TestWorkflowModel:
    def test_duplicate_step_ids_rejected(self):
        with pytest.raises(ValueError):
            Workflow("w", "w", (Step("s", "a"), Step("s", "b")))

    def test_dangling_link_rejected(self):
        with pytest.raises(ValueError):
            Workflow(
                "w", "w", (Step("s1", "a"),),
                links=(DataLink("s1", "o", "ghost", "i"),),
            )

    def test_step_lookup(self, chain):
        assert chain.step("s2").module_id == "m.b"
        with pytest.raises(KeyError):
            chain.step("nope")

    def test_module_ids_in_step_order(self, chain):
        assert chain.module_ids() == ("m.a", "m.b", "m.c")

    def test_incoming_links(self, chain):
        assert chain.incoming("s1") == ()
        assert chain.incoming("s3")[0].from_step == "s2"

    def test_topological_order_respects_links(self):
        workflow = Workflow(
            "w", "w",
            steps=(Step("late", "m.b"), Step("early", "m.a")),
            links=(DataLink("early", "o", "late", "i"),),
        )
        order = [s.step_id for s in workflow.topological_order()]
        assert order.index("early") < order.index("late")

    def test_cycle_detected(self):
        workflow = Workflow(
            "w", "w",
            steps=(Step("a", "m.a"), Step("b", "m.b")),
            links=(DataLink("a", "o", "b", "i"), DataLink("b", "o", "a", "i")),
        )
        with pytest.raises(ValueError, match="cycle"):
            workflow.topological_order()

    def test_disconnected_steps_allowed(self):
        workflow = Workflow("w", "w", (Step("a", "m.a"), Step("b", "m.b")))
        assert len(workflow.topological_order()) == 2

    def test_replace_module_preserves_everything_else(self, chain):
        repaired = chain.replace_module("s2", "m.new")
        assert repaired.step("s2").module_id == "m.new"
        assert repaired.step("s1").module_id == "m.a"
        assert repaired.links == chain.links
        assert chain.step("s2").module_id == "m.b"  # original untouched


class TestLinkValidity:
    def test_exact_concept_link_valid(self, ontology, catalog_by_id):
        assert link_is_valid(
            ontology,
            catalog_by_id["map.kegg_to_uniprot"], "mapped",
            catalog_by_id["ret.get_uniprot_record"], "id",
        )

    def test_subsumed_output_feeds_broader_input(self, ontology, catalog_by_id):
        # UniProtAccession output feeds a ProteinAccession input.
        assert link_is_valid(
            ontology,
            catalog_by_id["map.kegg_to_uniprot"], "mapped",
            catalog_by_id["ret.get_protein_record"], "id",
        )

    def test_broader_output_does_not_feed_narrow_input(self, ontology, catalog_by_id):
        # ProteinAccession output (Identify) cannot feed UniProtAccession.
        assert not link_is_valid(
            ontology,
            catalog_by_id["an.identify"], "accession",
            catalog_by_id["ret.get_uniprot_record"], "id",
        )

    def test_structural_mismatch_invalidates_link(self, ontology, catalog_by_id):
        # A UniProt flat record cannot feed a FASTA-typed input.
        assert not link_is_valid(
            ontology,
            catalog_by_id["ret.get_uniprot_record"], "record",
            catalog_by_id["xf.fasta_to_uniprot"], "record",
        )

    def test_figure1_chain_is_valid(self, ontology, catalog_by_id):
        """Identify -> GetProteinRecord -> SearchSimple (Figure 1)."""
        assert link_is_valid(
            ontology,
            catalog_by_id["an.identify"], "accession",
            catalog_by_id["ret.get_protein_record"], "id",
        )
        assert link_is_valid(
            ontology,
            catalog_by_id["ret.get_protein_record"], "record",
            catalog_by_id["an.search_simple"], "record",
        )
