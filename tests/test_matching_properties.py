"""Property-style invariants of the matcher and repairer."""

import pytest

from repro.core.generation import ExampleGenerator
from repro.core.matching import (
    MatchKind,
    compare_behavior,
    map_parameters,
)


@pytest.fixture(scope="module")
def generator(ctx, pool):
    return ExampleGenerator(ctx, pool)


class TestSelfMatching:
    """Every available module is (eventually) equivalent to itself."""

    def test_sample_modules_self_equivalent(self, ctx, generator, catalog):
        sample = [m for i, m in enumerate(catalog) if i % 11 == 0]
        for module in sample:
            examples = generator.generate(module).examples
            mapping = map_parameters(ctx.ontology, module, module)
            assert mapping is not None and not mapping.relaxed
            report = compare_behavior(ctx, module, examples, module, mapping)
            assert report.kind is MatchKind.EQUIVALENT, module.module_id

    def test_self_mapping_is_identity(self, ctx, catalog):
        for module in catalog[:30]:
            mapping = map_parameters(ctx.ontology, module, module)
            assert mapping.inputs == {p.name: p.name for p in module.inputs}
            assert mapping.outputs == {p.name: p.name for p in module.outputs}


class TestMappingProperties:
    def test_exact_mapping_symmetry(self, ctx, catalog):
        """When signatures are concept-identical, mapping works both ways
        and neither direction is relaxed."""
        a = next(m for m in catalog if m.module_id == "an.smith_waterman")
        b = next(m for m in catalog if m.module_id == "an.needleman")
        forward = map_parameters(ctx.ontology, a, b)
        backward = map_parameters(ctx.ontology, b, a)
        assert forward is not None and backward is not None
        assert not forward.relaxed and not backward.relaxed

    def test_relaxed_mapping_antisymmetry(self, ctx, catalog):
        """Strictly-more-general candidates accept, never the reverse."""
        from repro.modules.catalog.decayed import build_decayed_modules

        decayed = {m.module_id: m for m in build_decayed_modules()}
        narrow = decayed["old.get_genbank_dna"]
        broad = next(
            m for m in catalog if m.module_id == "ret.get_biological_sequence"
        )
        assert map_parameters(ctx.ontology, narrow, broad) is not None
        assert map_parameters(ctx.ontology, broad, narrow) is None


class TestAgreementDomains:
    def test_agreement_domain_subset_of_example_partitions(
        self, ctx, generator, catalog
    ):
        from repro.modules.catalog.decayed import build_decayed_modules

        decayed = build_decayed_modules()
        legacy = next(m for m in decayed if m.module_id == "old.get_pathway_record")
        examples = generator.generate(legacy).examples
        candidate = next(
            m for m in catalog if m.module_id == "ret.get_pathway_record"
        )
        mapping = map_parameters(ctx.ontology, legacy, candidate)
        report = compare_behavior(ctx, legacy, examples, candidate, mapping)
        observed = {
            binding.partition
            for example in examples
            for binding in example.inputs
        }
        for concepts in report.agreement_domain.values():
            assert concepts <= observed

    def test_equivalent_match_agrees_everywhere(self, ctx, generator, catalog):
        from repro.modules.catalog.decayed import build_decayed_modules

        decayed = build_decayed_modules()
        twin = next(m for m in decayed if m.module_id == "old.gene_to_pathways_s")
        examples = generator.generate(twin).examples
        base = next(m for m in catalog if m.module_id == "map.gene_to_pathways")
        mapping = map_parameters(ctx.ontology, twin, base)
        report = compare_behavior(ctx, twin, examples, base, mapping)
        assert report.kind is MatchKind.EQUIVALENT
        assert report.n_agreeing == len(examples)
