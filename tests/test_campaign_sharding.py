"""Tests of the sharding primitives: the deterministic shard plan, the
idempotent journal merge (including its edge cases — zero-row shard
journals, duplicate rows from a restarted worker, a merge killed and
re-run), planned-order assembly, and the read-only worker views."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    assemble_result,
    merge_shard_journal,
    merged_worker_stats,
    render_campaign_report,
    shard_campaign_id,
    shard_journal_path,
    shard_plan,
    shard_statuses,
    worker_rows,
)

LIMIT = 4


@pytest.fixture(scope="module")
def serial_result(ctx, catalog, pool, tmp_path_factory):
    """A small serial campaign whose reports seed the merge tests."""
    path = tmp_path_factory.mktemp("sharding") / "serial.sqlite"
    journal = CampaignJournal(path)
    try:
        runner = CampaignRunner(
            ctx, catalog, pool, journal, CampaignConfig(limit=LIMIT)
        )
        result = runner.run("serial")
    finally:
        journal.close()
    return result


# ----------------------------------------------------------------------
# The shard plan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_round_robin(self):
        assert shard_plan(["a", "b", "c", "d", "e"], 2) == [
            ["a", "c", "e"],
            ["b", "d"],
        ]

    def test_deterministic(self):
        ids = [f"m{i}" for i in range(17)]
        assert shard_plan(ids, 5) == shard_plan(ids, 5)

    def test_partitions_exactly(self):
        ids = [f"m{i}" for i in range(11)]
        shards = shard_plan(ids, 3)
        flattened = sorted(module_id for shard in shards for module_id in shard)
        assert flattened == sorted(ids)

    def test_more_shards_than_modules_leaves_empty_shards(self):
        shards = shard_plan(["a"], 4)
        assert shards == [["a"], [], [], []]

    def test_rejects_nonpositive_shard_count(self):
        with pytest.raises(ValueError):
            shard_plan(["a"], 0)

    def test_derived_names(self):
        assert shard_journal_path("/x/c.db", 3) == "/x/c.db.shard-03"
        assert shard_campaign_id("nightly", 0) == "nightly::shard-00"


# ----------------------------------------------------------------------
# The merge
# ----------------------------------------------------------------------
def _seed_main(tmp_path, result, name="merged"):
    """A main journal with the campaign row but no entries yet."""
    journal = CampaignJournal(tmp_path / f"{name}.sqlite")
    journal.create(result.campaign_id, result.seed, list(result.reports), {})
    return journal


def _write_shard(tmp_path, main_path_name, shard, cid, reports):
    """A shard journal holding ``reports`` as done entries."""
    path = shard_journal_path(tmp_path / main_path_name, shard)
    shard_journal = CampaignJournal(path)
    try:
        shard_cid = shard_campaign_id(cid, shard)
        shard_journal.create(shard_cid, 2014, [r.module_id for r in reports], {})
        for report in reports:
            shard_journal.record_done(shard_cid, report)
    finally:
        shard_journal.close()
    return path


class TestMerge:
    def test_missing_shard_file_contributes_nothing(self, tmp_path, serial_result):
        main = _seed_main(tmp_path, serial_result)
        try:
            copied = merge_shard_journal(
                main,
                serial_result.campaign_id,
                tmp_path / "merged.sqlite.shard-07",
                shard_campaign_id(serial_result.campaign_id, 7),
            )
            assert copied == 0
            assert main.entries(serial_result.campaign_id) == {}
        finally:
            main.close()

    def test_zero_row_shard_journal_contributes_nothing(
        self, tmp_path, serial_result
    ):
        main = _seed_main(tmp_path, serial_result)
        path = _write_shard(
            tmp_path, "merged.sqlite", 0, serial_result.campaign_id, []
        )
        try:
            copied = merge_shard_journal(
                main,
                serial_result.campaign_id,
                path,
                shard_campaign_id(serial_result.campaign_id, 0),
            )
            assert copied == 0
            assert main.entries(serial_result.campaign_id) == {}
        finally:
            main.close()

    def test_shard_file_without_campaign_row_contributes_nothing(
        self, tmp_path, serial_result
    ):
        # The worker created the SQLite file (schema committed) but died
        # before its campaign row landed.
        path = shard_journal_path(tmp_path / "merged.sqlite", 1)
        CampaignJournal(path).close()
        main = _seed_main(tmp_path, serial_result)
        try:
            copied = merge_shard_journal(
                main,
                serial_result.campaign_id,
                path,
                shard_campaign_id(serial_result.campaign_id, 1),
            )
            assert copied == 0
        finally:
            main.close()

    def test_duplicate_merge_is_idempotent(self, tmp_path, serial_result):
        reports = list(serial_result.reports.values())
        plan = shard_plan([r.module_id for r in reports], 2)
        by_id = {r.module_id: r for r in reports}
        main = _seed_main(tmp_path, serial_result)
        try:
            for shard, ids in enumerate(plan):
                path = _write_shard(
                    tmp_path,
                    "merged.sqlite",
                    shard,
                    serial_result.campaign_id,
                    [by_id[module_id] for module_id in ids],
                )
                cid = shard_campaign_id(serial_result.campaign_id, shard)
                # Merge the same shard twice — a restarted worker's
                # duplicate rows and a re-run merge land identically.
                first = merge_shard_journal(
                    main, serial_result.campaign_id, path, cid
                )
                second = merge_shard_journal(
                    main, serial_result.campaign_id, path, cid
                )
                assert first == second == len(ids)
            assembled = assemble_result(main, serial_result.campaign_id)
        finally:
            main.close()
        assert assembled.digest() == serial_result.digest()
        assert render_campaign_report(assembled) == render_campaign_report(
            serial_result
        )

    def test_interrupted_merge_rerun_converges(self, tmp_path, serial_result):
        """A merge that died after copying only one shard re-runs to the
        same table (the supervisor-SIGKILL-mid-merge shape)."""
        reports = list(serial_result.reports.values())
        plan = shard_plan([r.module_id for r in reports], 2)
        by_id = {r.module_id: r for r in reports}
        paths = [
            _write_shard(
                tmp_path,
                "merged.sqlite",
                shard,
                serial_result.campaign_id,
                [by_id[module_id] for module_id in ids],
            )
            for shard, ids in enumerate(plan)
        ]
        main = _seed_main(tmp_path, serial_result)
        try:
            # First attempt: only shard 0 merged before the "crash".
            merge_shard_journal(
                main,
                serial_result.campaign_id,
                paths[0],
                shard_campaign_id(serial_result.campaign_id, 0),
            )
            assert len(main.entries(serial_result.campaign_id)) == len(plan[0])
        finally:
            main.close()
        # The resumed merge re-merges everything from scratch.
        main = CampaignJournal(tmp_path / "merged.sqlite")
        try:
            for shard, path in enumerate(paths):
                merge_shard_journal(
                    main,
                    serial_result.campaign_id,
                    path,
                    shard_campaign_id(serial_result.campaign_id, shard),
                )
            assembled = assemble_result(main, serial_result.campaign_id)
        finally:
            main.close()
        assert assembled.digest() == serial_result.digest()

    def test_assemble_marks_missing_modules_never_attempted(
        self, tmp_path, serial_result
    ):
        main = _seed_main(tmp_path, serial_result)
        try:
            reports = list(serial_result.reports.values())
            main.record_done(serial_result.campaign_id, reports[0])
            assembled = assemble_result(main, serial_result.campaign_id)
        finally:
            main.close()
        assert assembled.status == "degraded"
        assert set(assembled.reports) == {reports[0].module_id}
        assert all(
            detail == "never attempted" for detail in assembled.skipped.values()
        )


# ----------------------------------------------------------------------
# Worker lifecycle rows in the journal
# ----------------------------------------------------------------------
class TestWorkerJournal:
    def test_worker_events_keep_recording_order(self, tmp_path):
        journal = CampaignJournal(tmp_path / "events.sqlite")
        try:
            journal.create("c", 1, ["m"], {})
            journal.record_worker_event("c", worker=0, shard=0, kind="spawn")
            journal.record_worker_event(
                "c", worker=0, shard=0, kind="crash", detail="exit code 137"
            )
            journal.record_worker_event("c", worker=1, shard=0, kind="restart")
            events = journal.worker_events("c")
        finally:
            journal.close()
        assert [e["kind"] for e in events] == ["spawn", "crash", "restart"]
        assert events[1]["detail"] == "exit code 137"
        assert events[2]["worker"] == 1

    def test_shard_status_upserts(self, tmp_path):
        journal = CampaignJournal(tmp_path / "status.sqlite")
        try:
            journal.create("c", 1, ["m"], {})
            journal.record_shard_status(
                "c", 0, worker=0, pid=100, attempt=1, invocations=3,
                phase="running", stats={"counters": {"calls": 3}},
            )
            journal.record_shard_status(
                "c", 0, worker=2, pid=200, attempt=2, invocations=7,
                phase="done", stats={"counters": {"calls": 7}},
            )
            status = journal.shard_status("c", 0)
            assert journal.shard_status("c", 9) is None
        finally:
            journal.close()
        assert status["worker"] == 2
        assert status["pid"] == 200
        assert status["attempt"] == 2
        assert status["invocations"] == 7
        assert status["phase"] == "done"
        assert status["stats"] == {"counters": {"calls": 7}}


class TestWorkerRows:
    def test_pending_rows_before_any_heartbeat(self, tmp_path):
        db = tmp_path / "fleet.sqlite"
        journal = CampaignJournal(db)
        try:
            journal.create(
                "c", 1, ["m1", "m2", "m3"], {"workers": 2, "heartbeat_timeout": 5.0}
            )
        finally:
            journal.close()
        rows = worker_rows(db, "c", now=100.0)
        assert [row["phase"] for row in rows] == ["pending", "pending"]
        assert [row["n_planned"] for row in rows] == [2, 1]
        assert all(not row["alive"] for row in rows)
        assert shard_statuses(db, "c", 2) == [None, None]

    def test_rows_fold_heartbeats_and_events(self, tmp_path):
        db = tmp_path / "fleet.sqlite"
        journal = CampaignJournal(db)
        try:
            journal.create(
                "c", 1, ["m1", "m2"], {"workers": 2, "heartbeat_timeout": 5.0}
            )
            journal.record_worker_event("c", worker=0, shard=0, kind="spawn")
            journal.record_worker_event("c", worker=2, shard=0, kind="restart")
            journal.record_worker_event(
                "c", worker=2, shard=0, kind="shard-degraded"
            )
        finally:
            journal.close()
        shard0 = CampaignJournal(shard_journal_path(db, 0))
        try:
            cid = shard_campaign_id("c", 0)
            shard0.create(cid, 1, ["m1"], {})
            shard0.record_shard_status(
                cid, 0, worker=2, pid=42, attempt=2, invocations=5,
                phase="running", stats={"counters": {"calls": 5}},
                heartbeat_wall=99.0,
            )
        finally:
            shard0.close()
        rows = worker_rows(db, "c", now=100.0)
        assert rows[0]["restarts"] == 1
        assert rows[0]["phase"] == "degraded"  # event overrides heartbeat
        assert rows[0]["heartbeat_age"] == pytest.approx(1.0)
        assert not rows[0]["alive"]
        assert rows[1]["phase"] == "pending"
        merged = merged_worker_stats(rows)
        assert merged["counters"]["calls"] == 5
