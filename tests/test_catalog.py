"""Population tests over the 252-module catalog and the 72 decayed ones."""

from collections import Counter

from repro.core.partitioning import parameter_partitions
from repro.modules.catalog.decayed import (
    CONTEXT_SAFE_OVERLAP_IDS,
    DECAYED_PROVIDERS,
    EQUIVALENT_TWIN_BASES,
    build_decayed_modules,
)
from repro.modules.catalog.factory import (
    EXPECTED_CATEGORY_COUNTS,
    EXPECTED_INTERFACE_COUNTS,
)
from repro.modules.interfaces import invoke_via_interface
from repro.modules.model import Category, InterfaceKind


class TestPopulation:
    def test_total_module_count(self, catalog):
        assert len(catalog) == 252

    def test_table3_category_mix(self, catalog):
        counts = Counter(m.category for m in catalog)
        assert counts == Counter(EXPECTED_CATEGORY_COUNTS)

    def test_interface_mix(self, catalog):
        counts = Counter(m.interface.value for m in catalog)
        assert counts == Counter(EXPECTED_INTERFACE_COUNTS)

    def test_module_ids_unique(self, catalog):
        ids = [m.module_id for m in catalog]
        assert len(set(ids)) == len(ids)

    def test_all_catalog_modules_available(self, catalog):
        assert all(m.available for m in catalog)

    def test_no_catalog_module_has_decaying_provider(self, catalog):
        assert not any(m.provider in DECAYED_PROVIDERS for m in catalog)

    def test_annotations_reference_known_concepts(self, catalog, ontology):
        for module in catalog:
            for parameter in module.inputs + module.outputs:
                assert parameter.concept in ontology, (module.module_id, parameter)

    def test_emitted_concepts_subsumed_by_annotations(self, catalog, ontology):
        for module in catalog:
            for name, emitted in module.emitted_concepts.items():
                annotated = module.output(name).concept
                for concept in emitted:
                    assert ontology.subsumes(annotated, concept), (
                        module.module_id, name, concept,
                    )

    def test_paper_named_modules_exist(self, catalog_by_id):
        for module_id, name in (
            ("ret.get_pdb_entry", "GetPDBEntry"),
            ("ret.binfo", "binfo"),
            ("map.link", "link"),
            ("map.get_genes_by_enzyme", "get_genes_by_enzyme"),
            ("an.identify", "Identify"),
            ("an.search_simple", "SearchSimple"),
            ("an.get_concept", "GetConcept"),
            ("ret.get_biological_sequence", "GetBiologicalSequence"),
        ):
            assert catalog_by_id[module_id].name == name

    def test_legibility_matches_paper_user1_breakdown(self, catalog):
        legible = Counter(m.category for m in catalog if m.legible)
        assert legible[Category.FORMAT_TRANSFORMATION] == 53
        assert legible[Category.MAPPING_IDENTIFIERS] == 62
        assert legible[Category.DATA_RETRIEVAL] == 43
        assert legible[Category.FILTERING] == 5
        assert legible[Category.DATA_ANALYSIS] == 6


class TestInvocability:
    def test_every_input_partition_has_an_accepted_value(
        self, catalog, ctx, pool, ontology
    ):
        """The §4.3 precondition: for every module, every realizable
        partition of every input carries a pool value the module accepts
        in at least one combination."""
        import itertools

        for module in catalog:
            per_input = []
            for parameter in module.inputs:
                values = [
                    value
                    for partition in parameter_partitions(ontology, parameter)
                    if (value := pool.get_instance(partition, parameter.structural))
                ]
                assert values, (module.module_id, parameter.name)
                per_input.append([(parameter.name, v) for v in values])
            accepted = {p.name: set() for p in module.inputs}
            for combo in itertools.product(*per_input):
                try:
                    invoke_via_interface(module, ctx, dict(combo))
                except Exception:
                    continue
                for name, value in combo:
                    accepted[name].add(value.concept)
            for parameter in module.inputs:
                expected = {
                    v.concept for _n, v in dict.fromkeys(
                        (n, v) for n, v in sum(per_input, []) if n == parameter.name
                    )
                }
                assert accepted[parameter.name] == expected, (
                    module.module_id, parameter.name,
                )

    def test_outputs_match_declared_structure(self, catalog, ctx, pool, ontology):
        for module in catalog[:40]:
            parameter = module.inputs[0]
            partitions = parameter_partitions(ontology, parameter)
            value = pool.get_instance(partitions[0], parameter.structural)
            bindings = {parameter.name: value}
            for other in module.inputs[1:]:
                bindings[other.name] = pool.get_instance(
                    parameter_partitions(ontology, other)[0], other.structural
                )
            try:
                outputs = invoke_via_interface(module, ctx, bindings)
            except Exception:
                continue
            for name, value in outputs.items():
                declared = module.output(name).structural
                assert value.feeds(declared), (module.module_id, name)


class TestDecayedSet:
    def test_decayed_count(self):
        assert len(build_decayed_modules()) == 72

    def test_group_sizes(self):
        modules = build_decayed_modules()
        twins = [m for m in modules if m.module_id.endswith("_s")]
        narrow = [m for m in modules if m.module_id in CONTEXT_SAFE_OVERLAP_IDS]
        assert len(twins) == len(EQUIVALENT_TWIN_BASES) == 16
        assert len(narrow) == 6

    def test_all_decayed_use_decaying_providers(self):
        for module in build_decayed_modules():
            assert module.provider in DECAYED_PROVIDERS

    def test_twins_share_base_signature(self, catalog_by_id):
        for module in build_decayed_modules():
            if not module.module_id.endswith("_s"):
                continue
            base_id = module.module_id[len("old."):-len("_s")]
            base = next(
                m for m in catalog_by_id.values()
                if m.module_id.split(".", 1)[1] == base_id
            )
            assert module.signature == base.signature

    def test_twins_are_soap(self):
        for module in build_decayed_modules():
            if module.module_id.endswith("_s"):
                assert module.interface is InterfaceKind.SOAP_SERVICE
