"""Concurrent stress of the annotation server: many threads hammering
mixed endpoints while a journaled campaign (the sampler's synthetic
``http-server`` row) runs in the background.  Pins down the invariants
the serving layer promises under pressure:

* the server never answers 5xx;
* the cumulative counters (requests, admitted, shed, latency count)
  are monotone under concurrent observation;
* a rate-limited tenant's 429s stay its own — every other tenant's
  requests are unaffected.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.serve import AnnotationServer, AnnotationService, ServeConfig

MODULES = ("xf.uniprot_to_fasta", "xf.uniprot_to_xml")
HAMMERS = 10
REQUESTS_PER_HAMMER = 12


def _get(server, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(server.host, server.port, timeout=30.0)
    try:
        raw = None if body is None else json.dumps(body)
        connection.request(method, path, body=raw, headers=dict(headers or {}))
        response = connection.getresponse()
        payload = response.read()
        return response.status, payload
    finally:
        connection.close()


class Hammer(threading.Thread):
    """One worker cycling through every endpoint on a keep-alive
    connection, collecting observed statuses."""

    MIX = (
        ("POST", "/v1/generate"),
        ("GET", "/v1/modules"),
        ("POST", "/v1/match"),
        ("GET", "/healthz"),
        ("GET", "/v1/campaigns/http-server"),
        ("GET", "/metrics.json"),
    )

    def __init__(self, index, server, barrier):
        super().__init__(name=f"hammer-{index}", daemon=True)
        self.index = index
        self.server = server
        self.barrier = barrier
        self.tenant = f"hammer-{index:02d}"
        self.statuses: "list[int]" = []
        self.error: "Exception | None" = None

    def run(self):
        connection = http.client.HTTPConnection(
            self.server.host, self.server.port, timeout=30.0
        )
        self.barrier.wait()
        try:
            for turn in range(REQUESTS_PER_HAMMER):
                method, path = self.MIX[(self.index + turn) % len(self.MIX)]
                body = None
                headers = {"X-Api-Key": self.tenant}
                if method == "POST":
                    body = json.dumps(
                        {"module_id": MODULES[(self.index + turn) % len(MODULES)]}
                    )
                    headers["Content-Type"] = "application/json"
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                response.read()
                self.statuses.append(response.status)
        except Exception as error:  # noqa: BLE001 - reported by the test
            self.error = error
        finally:
            connection.close()


class Greedy(threading.Thread):
    """A tenant with a starvation budget, hammering until limited."""

    def __init__(self, server, barrier):
        super().__init__(name="greedy", daemon=True)
        self.server = server
        self.barrier = barrier
        self.statuses: "list[int]" = []
        self.retry_afters: "list[str | None]" = []
        self.error: "Exception | None" = None

    def run(self):
        connection = http.client.HTTPConnection(
            self.server.host, self.server.port, timeout=30.0
        )
        self.barrier.wait()
        try:
            for _ in range(10):
                connection.request(
                    "GET", "/v1/modules", headers={"X-Api-Key": "greedy"}
                )
                response = connection.getresponse()
                payload = response.read()
                self.statuses.append(response.status)
                if response.status == 429:
                    self.retry_afters.append(response.getheader("Retry-After"))
                    assert json.loads(payload)["reason"] == "rate-limited"
        except Exception as error:  # noqa: BLE001
            self.error = error
        finally:
            connection.close()


class Poller(threading.Thread):
    """Samples the server's counters while the hammers run."""

    def __init__(self, server, done):
        super().__init__(name="poller", daemon=True)
        self.server = server
        self.done = done
        self.snapshots: "list[dict]" = []

    def run(self):
        while not self.done.wait(0.01):
            self.snapshots.append(self.server.http_snapshot())
        self.snapshots.append(self.server.http_snapshot())


@pytest.mark.slow
def test_concurrent_mixed_load_while_campaign_runs(tmp_path):
    service = AnnotationService(memoize=True)
    config = ServeConfig(
        max_inflight=4,
        max_queue=256,
        queue_timeout=30.0,
        # Generous default budgets so the hammers are never limited;
        # only the bespoke "greedy" bucket below runs dry.
        rate=10_000.0,
        burst=20_000.0,
        journal_db=str(tmp_path / "serve.sqlite"),
        sample_interval=0.05,
    )
    with AnnotationServer(service, config) as server:
        server.limiter.configure("greedy", rate=0.001, burst=3)
        for module_id in MODULES:
            status, _ = _get(
                server, "POST", "/v1/modules", body={"module_id": module_id}
            )
            assert status in (200, 201)

        barrier = threading.Barrier(HAMMERS + 2)
        done = threading.Event()
        hammers = [Hammer(i, server, barrier) for i in range(HAMMERS)]
        greedy = Greedy(server, barrier)
        poller = Poller(server, done)
        poller.start()
        for worker in [*hammers, greedy]:
            worker.start()
        barrier.wait()
        for worker in [*hammers, greedy]:
            worker.join(120.0)
            assert not worker.is_alive(), f"{worker.name} never finished"
        done.set()
        poller.join(10.0)

        for worker in [*hammers, greedy]:
            assert worker.error is None, f"{worker.name}: {worker.error!r}"

        # 1. The server never broke: no 5xx anywhere, and every hammer
        #    request was answered (shedding was impossible: the queue
        #    out-sizes the whole offered load).
        statuses = [s for hammer in hammers for s in hammer.statuses]
        assert len(statuses) == HAMMERS * REQUESTS_PER_HAMMER
        assert all(status < 500 for status in statuses)
        assert all(status == 200 for status in statuses), sorted(set(statuses))

        # 2. The greedy tenant alone was limited — with Retry-After on
        #    every 429 — and nobody else saw a single 429.
        assert greedy.statuses.count(200) == 3
        assert greedy.statuses.count(429) == 7
        assert all(value is not None for value in greedy.retry_afters)
        snapshot = server.http_snapshot()
        assert snapshot["rate_limited_by_tenant"] == {"greedy": 7}
        assert snapshot["shed_total"] == 0

        # 3. Counters observed concurrently are monotone.
        series = poller.snapshots
        assert len(series) >= 2
        for key in ("requests_total", "admitted_total", "shed_total",
                    "rate_limited_total", "deadline_exceeded_total"):
            values = [snap[key] for snap in series]
            assert values == sorted(values), f"{key} went backwards"
        counts = [snap["latency"]["count"] for snap in series]
        assert counts == sorted(counts)

        # 4. The background campaign really ran: the sampler journaled
        #    samples under the synthetic row while the hammers were
        #    hammering, and the live endpoint served it.
        status, payload = _get(server, "GET", "/v1/campaigns/http-server")
        assert status == 200
        assert json.loads(payload)["campaign_id"] == "http-server"
        assert len(server.sampler.ring) >= 1
        assert len(server.journal.snapshots("http-server")) >= 1
