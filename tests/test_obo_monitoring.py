"""Tests for OBO serialization and decay monitoring."""

import pytest

from repro.ontology.obo import (
    OboFormatError,
    load_obo,
    ontology_from_obo,
    ontology_to_obo,
    save_obo,
)
from repro.workflow.monitoring import analyze_decay, render_decay_report


class TestOboSerialization:
    def test_mygrid_round_trip(self, ontology):
        rebuilt = ontology_from_obo(ontology_to_obo(ontology))
        assert rebuilt.name == ontology.name
        assert set(rebuilt.names()) == set(ontology.names())
        for name in ontology.names():
            original = ontology.get(name)
            parsed = rebuilt.get(name)
            assert set(parsed.parents) == set(original.parents), name
            assert parsed.covered_by_children == original.covered_by_children
            assert parsed.description == original.description

    def test_reasoning_survives_round_trip(self, ontology):
        rebuilt = ontology_from_obo(ontology_to_obo(ontology))
        assert rebuilt.subsumes("BiologicalSequence", "DNASequence")
        assert rebuilt.partitions_of("ProteinAccession") == ontology.partitions_of(
            "ProteinAccession"
        )

    def test_document_shape(self, ontology):
        text = ontology_to_obo(ontology)
        assert text.startswith("format-version: 1.2")
        assert "[Term]\nid: Thing" in text
        assert "subset: covered_by_children" in text
        assert "is_a: SequenceDatabaseAccession" in text

    def test_file_round_trip(self, ontology, tmp_path):
        path = tmp_path / "mygrid.obo"
        save_obo(ontology, path)
        assert len(load_obo(path)) == len(ontology)

    def test_missing_header_rejected(self):
        with pytest.raises(OboFormatError, match="format-version"):
            ontology_from_obo("[Term]\nid: X\n")

    def test_stanza_without_id_rejected(self):
        with pytest.raises(OboFormatError, match="without an id"):
            ontology_from_obo("format-version: 1.2\n\n[Term]\ndef: \"x\"\n\n[Term]\nid: A\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(OboFormatError, match="malformed"):
            ontology_from_obo("format-version: 1.2\n[Term]\nid: A\ngarbage line\n")


class TestDecayMonitoring:
    @pytest.fixture(scope="class")
    def report(self, setup):
        setup.repository  # ensure decay happened
        return analyze_decay(setup.repository.workflows, setup.modules_by_id)

    def test_totals_match_repair_experiment(self, setup, report):
        assert report.n_workflows == 3000
        assert report.n_broken == len(setup.repairs)

    def test_broken_fraction_about_half(self, report):
        assert 0.45 <= report.broken_fraction <= 0.55

    def test_decayed_providers_rank_by_blast_radius(self, report):
        providers = report.top_providers()
        # iSPIDER supplies most of the orphan and legacy modules that the
        # unrepairable workflows use; KEGG-SOAP's popular twins come next.
        assert providers[0][0] == "iSPIDER"
        assert providers[1][0] == "KEGG-SOAP"

    def test_every_broken_workflow_attributed(self, report):
        assert sum(report.by_provider.values()) >= report.n_broken

    def test_popular_twins_dominate_module_ranking(self, report):
        top = dict(report.top_modules(10))
        assert any(module_id.endswith("_s") for module_id in top)

    def test_single_point_failures_counted(self, report):
        assert 0 < report.single_point_failures <= report.n_broken

    def test_rendering(self, report):
        text = render_decay_report(report)
        assert "Decay report" in text
        assert "KEGG-SOAP" in text
        assert f"{report.n_broken}" in text

    def test_healthy_collection_reports_zero(self, setup):
        healthy = setup.repository.of_category("healthy")[:50]
        report = analyze_decay(healthy, setup.modules_by_id)
        assert report.n_broken == 0
        assert report.broken_fraction == 0.0

    def test_unknown_module_attributed_to_unknown_provider(self):
        from repro.workflow.model import Step, Workflow

        workflow = Workflow("w", "w", (Step("s", "gone.forever"),))
        report = analyze_decay([workflow], {})
        assert report.by_provider == {"(unknown provider)": 1}


class TestDecaySignals:
    """analyze_decay merges three decay signals: the static catalog flag,
    observed campaign health (availability), and the campaign quarantine
    (semantics).  Each must be distinguishable in the report."""

    @pytest.fixture
    def live_module(self, catalog):
        module = catalog[0]
        assert module.available
        return module

    @pytest.fixture
    def workflow(self, live_module):
        from repro.workflow.model import Step, Workflow

        return Workflow("w", "w", (Step("s", live_module.module_id),))

    def _quarantine(self, module_id, cause):
        from repro.core.examples import Binding
        from repro.core.quarantine import QuarantinedExample, QuarantineLog
        from repro.values import STRING, TypedValue

        log = QuarantineLog()
        log.add(
            QuarantinedExample(
                module_id=module_id,
                inputs=(
                    Binding(
                        parameter="in",
                        value=TypedValue(
                            payload="x", structural=STRING, concept=None
                        ),
                    ),
                ),
                cause=cause,
            )
        )
        return log

    def test_no_signals_mean_no_extra_decay(self, workflow, live_module):
        report = analyze_decay([workflow], {live_module.module_id: live_module})
        assert report.n_broken == 0
        assert report.observed_dead == []
        assert report.semantically_decayed == []

    def test_observed_dead_from_health_only(self, workflow, live_module):
        from repro.engine import ModuleHealthRegistry

        health = ModuleHealthRegistry(dead_after=3)
        for _ in range(3):
            health.observe(live_module.module_id, live_module.provider, "timeout")
        report = analyze_decay(
            [workflow], {live_module.module_id: live_module}, health=health
        )
        assert report.observed_dead == [live_module.module_id]
        assert report.semantically_decayed == []
        assert report.n_broken == 1
        assert report.by_provider == {live_module.provider: 1}

    def test_semantic_decay_from_quarantine_only(self, workflow, live_module):
        from repro.core.quarantine import CAUSE_MALFORMED

        quarantine = self._quarantine(live_module.module_id, CAUSE_MALFORMED)
        report = analyze_decay(
            [workflow],
            {live_module.module_id: live_module},
            quarantine=quarantine,
        )
        assert report.observed_dead == []
        assert report.semantically_decayed == [live_module.module_id]
        assert report.n_broken == 1

    def test_timeout_quarantine_is_not_semantic_decay(
        self, workflow, live_module
    ):
        from repro.core.quarantine import CAUSE_TIMEOUT

        quarantine = self._quarantine(live_module.module_id, CAUSE_TIMEOUT)
        report = analyze_decay(
            [workflow],
            {live_module.module_id: live_module},
            quarantine=quarantine,
        )
        assert report.semantically_decayed == []
        assert report.n_broken == 0  # a timeout alone breaks nothing here

    def test_both_signals_merge(self, catalog):
        from repro.core.quarantine import CAUSE_NONDETERMINISTIC
        from repro.engine import ModuleHealthRegistry
        from repro.workflow.model import Step, Workflow

        dead, flaky = catalog[0], catalog[1]
        health = ModuleHealthRegistry(dead_after=2)
        for _ in range(2):
            health.observe(dead.module_id, dead.provider, "unavailable")
        quarantine = self._quarantine(flaky.module_id, CAUSE_NONDETERMINISTIC)
        workflow = Workflow(
            "w", "w", (Step("s1", dead.module_id), Step("s2", flaky.module_id))
        )
        report = analyze_decay(
            [workflow],
            {m.module_id: m for m in (dead, flaky)},
            health=health,
            quarantine=quarantine,
        )
        assert report.observed_dead == [dead.module_id]
        assert report.semantically_decayed == [flaky.module_id]
        assert report.n_broken == 1
        assert report.single_point_failures == 0  # two culprits, one workflow
        text = render_decay_report(report)
        assert "observed-dead modules:   1" in text
        assert "semantically decayed:    1" in text
