"""Tests for OBO serialization and decay monitoring."""

import pytest

from repro.ontology.obo import (
    OboFormatError,
    load_obo,
    ontology_from_obo,
    ontology_to_obo,
    save_obo,
)
from repro.workflow.monitoring import analyze_decay, render_decay_report


class TestOboSerialization:
    def test_mygrid_round_trip(self, ontology):
        rebuilt = ontology_from_obo(ontology_to_obo(ontology))
        assert rebuilt.name == ontology.name
        assert set(rebuilt.names()) == set(ontology.names())
        for name in ontology.names():
            original = ontology.get(name)
            parsed = rebuilt.get(name)
            assert set(parsed.parents) == set(original.parents), name
            assert parsed.covered_by_children == original.covered_by_children
            assert parsed.description == original.description

    def test_reasoning_survives_round_trip(self, ontology):
        rebuilt = ontology_from_obo(ontology_to_obo(ontology))
        assert rebuilt.subsumes("BiologicalSequence", "DNASequence")
        assert rebuilt.partitions_of("ProteinAccession") == ontology.partitions_of(
            "ProteinAccession"
        )

    def test_document_shape(self, ontology):
        text = ontology_to_obo(ontology)
        assert text.startswith("format-version: 1.2")
        assert "[Term]\nid: Thing" in text
        assert "subset: covered_by_children" in text
        assert "is_a: SequenceDatabaseAccession" in text

    def test_file_round_trip(self, ontology, tmp_path):
        path = tmp_path / "mygrid.obo"
        save_obo(ontology, path)
        assert len(load_obo(path)) == len(ontology)

    def test_missing_header_rejected(self):
        with pytest.raises(OboFormatError, match="format-version"):
            ontology_from_obo("[Term]\nid: X\n")

    def test_stanza_without_id_rejected(self):
        with pytest.raises(OboFormatError, match="without an id"):
            ontology_from_obo("format-version: 1.2\n\n[Term]\ndef: \"x\"\n\n[Term]\nid: A\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(OboFormatError, match="malformed"):
            ontology_from_obo("format-version: 1.2\n[Term]\nid: A\ngarbage line\n")


class TestDecayMonitoring:
    @pytest.fixture(scope="class")
    def report(self, setup):
        setup.repository  # ensure decay happened
        return analyze_decay(setup.repository.workflows, setup.modules_by_id)

    def test_totals_match_repair_experiment(self, setup, report):
        assert report.n_workflows == 3000
        assert report.n_broken == len(setup.repairs)

    def test_broken_fraction_about_half(self, report):
        assert 0.45 <= report.broken_fraction <= 0.55

    def test_decayed_providers_rank_by_blast_radius(self, report):
        providers = report.top_providers()
        # iSPIDER supplies most of the orphan and legacy modules that the
        # unrepairable workflows use; KEGG-SOAP's popular twins come next.
        assert providers[0][0] == "iSPIDER"
        assert providers[1][0] == "KEGG-SOAP"

    def test_every_broken_workflow_attributed(self, report):
        assert sum(report.by_provider.values()) >= report.n_broken

    def test_popular_twins_dominate_module_ranking(self, report):
        top = dict(report.top_modules(10))
        assert any(module_id.endswith("_s") for module_id in top)

    def test_single_point_failures_counted(self, report):
        assert 0 < report.single_point_failures <= report.n_broken

    def test_rendering(self, report):
        text = render_decay_report(report)
        assert "Decay report" in text
        assert "KEGG-SOAP" in text
        assert f"{report.n_broken}" in text

    def test_healthy_collection_reports_zero(self, setup):
        healthy = setup.repository.of_category("healthy")[:50]
        report = analyze_decay(healthy, setup.modules_by_id)
        assert report.n_broken == 0
        assert report.broken_fraction == 0.0

    def test_unknown_module_attributed_to_unknown_provider(self):
        from repro.workflow.model import Step, Workflow

        workflow = Workflow("w", "w", (Step("s", "gone.forever"),))
        report = analyze_decay([workflow], {})
        assert report.by_provider == {"(unknown provider)": 1}
