"""Tests for the realization factory and the instance pool."""

import pytest

from repro.pool.pool import InstancePool
from repro.pool.synthesis import default_factory
from repro.values import FASTA, STRING, TypedValue, list_of


class TestRealizationFactory:
    def test_covers_every_realizable_concept(self, factory, ontology):
        for concept in ontology.names():
            if ontology.has_realization(concept):
                assert factory.instances(concept), concept

    def test_no_instances_for_covered_concepts(self, factory, ontology):
        for concept in ("Identifier", "Report", "BiologicalRecord"):
            assert not ontology.has_realization(concept)
            assert factory.instances(concept) == ()

    def test_instances_carry_their_concept(self, factory, ontology):
        for concept in ontology.names():
            for value in factory.instances(concept):
                assert value.concept == concept

    def test_identifier_instances_resolve_in_universe(self, factory, universe):
        for concept in universe.lookup_concepts():
            for value in factory.instances(concept):
                assert universe.has(concept, value.payload), concept

    def test_sequence_instances_classify_correctly(self, factory):
        from repro.biodb.sequences import classify_sequence

        for concept in ("DNASequence", "RNASequence", "ProteinSequence",
                        "NucleotideSequence", "BiologicalSequence"):
            for value in factory.instances(concept):
                assert classify_sequence(value.payload) == concept

    def test_protein_record_groundings(self, factory):
        structurals = {v.structural.name for v in factory.instances("ProteinSequenceRecord")}
        assert {"UniProtFlatFormat", "FastaFormat", "XmlFormat", "JsonFormat"} <= structurals

    def test_list_instances_for_sequences(self, factory):
        value = factory.list_instance("DNASequence")
        assert value is not None
        assert value.structural.is_list
        assert len(value.payload) == 3

    def test_list_instance_unsupported_concept(self, factory):
        assert factory.list_instance("PathwayRecord") is None

    def test_list_lengths_straddle_threshold(self, factory):
        """Filters with the default LengthThreshold (25) must keep some
        but not all items — that keeps hidden filter classes hidden."""
        value = factory.list_instance("ProteinSequence")
        lengths = [len(item) for item in value.payload]
        assert any(l < 25 for l in lengths)
        assert any(l >= 25 for l in lengths)

    def test_factory_is_cached_per_seed(self):
        assert default_factory() is default_factory()

    def test_factory_instances_are_memoized(self, factory):
        assert factory.instances("DNASequence") is factory.instances("DNASequence")


class TestInstancePool:
    def test_add_requires_annotation(self):
        pool = InstancePool()
        with pytest.raises(ValueError):
            pool.add(TypedValue("x", STRING))

    def test_add_deduplicates(self):
        pool = InstancePool()
        value = TypedValue("x", STRING, "KeywordSet")
        assert pool.add(value)
        assert not pool.add(TypedValue("x", STRING, "KeywordSet"))
        assert len(pool) == 1

    def test_same_payload_different_grounding_both_kept(self):
        pool = InstancePool()
        pool.add(TypedValue(">a\nMK\n", STRING, "ProteinSequenceRecord"))
        pool.add(TypedValue(">a\nMK\n", FASTA, "ProteinSequenceRecord"))
        assert len(pool) == 2

    def test_get_instance_returns_first_compatible(self):
        pool = InstancePool()
        first = TypedValue("first", STRING, "KeywordSet")
        pool.add(first)
        pool.add(TypedValue("second", STRING, "KeywordSet"))
        assert pool.get_instance("KeywordSet") is first

    def test_get_instance_respects_structure(self):
        pool = InstancePool()
        pool.add(TypedValue("scalar", STRING, "KeywordSet"))
        assert pool.get_instance("KeywordSet", list_of(STRING)) is None

    def test_get_instance_is_realization_only(self):
        """An instance annotated with a sub-concept is not returned for
        the parent concept (§3.2 realization semantics)."""
        pool = InstancePool()
        pool.add(TypedValue("ACGT", STRING, "DNASequence"))
        assert pool.get_instance("NucleotideSequence") is None

    def test_instances_of_unknown_concept_empty(self):
        assert InstancePool().instances_of("KeywordSet") == ()

    def test_merge_counts_new_values(self):
        a, b = InstancePool(), InstancePool()
        a.add(TypedValue("x", STRING, "KeywordSet"))
        b.add(TypedValue("x", STRING, "KeywordSet"))
        b.add(TypedValue("y", STRING, "KeywordSet"))
        assert a.merge(b) == 1
        assert len(a) == 2

    def test_bootstrap_covers_all_realizable_concepts(self, pool, ontology):
        for concept in ontology.names():
            if ontology.has_realization(concept):
                assert pool.instances_of(concept), concept

    def test_bootstrap_extension_is_idempotent(self, factory, ontology):
        pool = InstancePool.bootstrap(factory, ontology)
        assert pool.extend_from_factory(factory, ontology) == 0

    def test_iteration_yields_every_value(self, factory, ontology):
        pool = InstancePool.bootstrap(factory, ontology)
        assert len(list(pool)) == len(pool)


class TestHarvesting:
    def test_harvest_from_trace(self, ctx, pool, catalog_by_id):
        from repro.modules.interfaces import invoke_via_interface
        from repro.core.examples import Binding
        from repro.workflow.provenance import InvocationRecord, ProvenanceTrace

        module = catalog_by_id["ret.get_uniprot_record"]
        value = pool.get_instance("UniProtAccession")
        outputs = invoke_via_interface(module, ctx, {"id": value})
        record = InvocationRecord(
            step_id="s1", module_id=module.module_id,
            inputs=(Binding("id", value),),
            outputs=tuple(Binding(n, v) for n, v in outputs.items()),
            succeeded=True, logical_time=0,
        )
        trace = ProvenanceTrace(workflow_id="w", invocations=[record])
        fresh = InstancePool()
        added = fresh.harvest([trace])
        assert added == 2  # the input id and the output record
        assert fresh.instances_of("ProteinSequenceRecord")

    def test_harvest_skips_unannotated_values(self):
        from repro.core.examples import Binding
        from repro.workflow.provenance import InvocationRecord, ProvenanceTrace

        record = InvocationRecord(
            step_id="s", module_id="m",
            inputs=(Binding("x", TypedValue("v", STRING)),),
            outputs=(), succeeded=True, logical_time=0,
        )
        pool = InstancePool()
        assert pool.harvest([ProvenanceTrace("w", [record])]) == 0
