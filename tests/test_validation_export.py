"""Tests for static workflow validation and experiment data export."""

import csv
import json

import pytest

from repro.experiments.export import export_all
from repro.workflow.model import DataLink, Step, Workflow
from repro.workflow.validation import (
    IssueKind,
    validate_repository,
    validate_workflow,
)


class TestValidateWorkflow:
    def test_valid_workflow_passes(self, ctx, catalog_by_id, ontology):
        workflow = Workflow(
            "ok", "ok",
            steps=(Step("a", "map.kegg_to_uniprot"),
                   Step("b", "ret.get_uniprot_record")),
            links=(DataLink("a", "mapped", "b", "id"),),
        )
        report = validate_workflow(workflow, dict(catalog_by_id), ontology)
        assert report.ok

    def test_unknown_module_flagged(self, catalog_by_id, ontology):
        workflow = Workflow("w", "w", (Step("a", "ghost.module"),))
        report = validate_workflow(workflow, dict(catalog_by_id), ontology)
        assert not report.ok
        assert report.of_kind(IssueKind.UNKNOWN_MODULE)

    def test_unavailable_module_flagged(self, ctx, catalog_by_id, ontology):
        from repro.modules.catalog.decayed import (
            DECAYED_PROVIDERS,
            build_decayed_modules,
        )
        from repro.workflow.decay import shut_down_providers

        decayed = {m.module_id: m for m in build_decayed_modules()}
        shut_down_providers(decayed.values(), DECAYED_PROVIDERS)
        modules = dict(catalog_by_id)
        modules.update(decayed)
        workflow = Workflow("w", "w", (Step("a", "old.get_kegg_gene_s"),))
        report = validate_workflow(workflow, modules, ontology)
        assert report.of_kind(IssueKind.UNAVAILABLE_MODULE)

    def test_unknown_parameters_flagged(self, catalog_by_id, ontology):
        workflow = Workflow(
            "w", "w",
            steps=(Step("a", "map.kegg_to_uniprot"),
                   Step("b", "ret.get_uniprot_record")),
            links=(DataLink("a", "nope", "b", "id"),
                   DataLink("a", "mapped", "b", "nope")),
        )
        report = validate_workflow(workflow, dict(catalog_by_id), ontology)
        assert report.of_kind(IssueKind.UNKNOWN_OUTPUT)
        assert report.of_kind(IssueKind.UNKNOWN_INPUT)

    def test_incompatible_link_flagged(self, catalog_by_id, ontology):
        # Identify emits ProteinAccession, too broad for UniProtAccession.
        workflow = Workflow(
            "w", "w",
            steps=(Step("a", "an.identify"), Step("b", "ret.get_uniprot_record")),
            links=(DataLink("a", "accession", "b", "id"),),
        )
        report = validate_workflow(workflow, dict(catalog_by_id), ontology)
        issues = report.of_kind(IssueKind.INCOMPATIBLE_LINK)
        assert issues and "ProteinAccession" in issues[0].detail

    def test_double_fed_input_flagged(self, catalog_by_id, ontology):
        workflow = Workflow(
            "w", "w",
            steps=(Step("a", "map.kegg_to_uniprot"),
                   Step("b", "map.pdb_to_uniprot"),
                   Step("c", "ret.get_uniprot_record")),
            links=(DataLink("a", "mapped", "c", "id"),
                   DataLink("b", "mapped", "c", "id")),
        )
        report = validate_workflow(workflow, dict(catalog_by_id), ontology)
        assert report.of_kind(IssueKind.DUPLICATE_LINK_TARGET)

    def test_cycle_flagged(self, catalog_by_id, ontology):
        workflow = Workflow(
            "w", "w",
            steps=(Step("a", "xf.fasta_rewrap"), Step("b", "xf.fasta_uppercase")),
            links=(DataLink("a", "converted", "b", "record"),
                   DataLink("b", "converted", "a", "record")),
        )
        report = validate_workflow(workflow, dict(catalog_by_id), ontology)
        assert report.of_kind(IssueKind.CYCLE)

    def test_validator_reports_all_issues_at_once(self, catalog_by_id, ontology):
        workflow = Workflow(
            "w", "w",
            steps=(Step("a", "ghost.module"), Step("b", "an.identify"),
                   Step("c", "ret.get_uniprot_record")),
            links=(DataLink("b", "accession", "c", "id"),),
        )
        report = validate_workflow(workflow, dict(catalog_by_id), ontology)
        assert len(report.issues) >= 2


class TestValidateRepository:
    def test_pre_decay_repository_validates(self, setup):
        """Every generated workflow is statically valid before decay —
        the repository builder's guarantee, checked independently."""
        failing = validate_repository(
            setup.repository.workflows[:300],
            {
                mid: m
                for mid, m in setup.modules_by_id.items()
            },
            setup.ctx.ontology,
        )
        # After decay the broken ones report unavailable modules only.
        for report in failing.values():
            kinds = {issue.kind for issue in report.issues}
            assert kinds == {IssueKind.UNAVAILABLE_MODULE}


class TestExport:
    @pytest.fixture(scope="class")
    def exported(self, setup, tmp_path_factory):
        out = tmp_path_factory.mktemp("exports")
        return out, export_all(setup, out)

    def test_all_files_written(self, exported):
        out, written = exported
        names = {path.name for path in written}
        assert names == {
            "coverage.json", "table1.csv", "table2.csv", "table3.csv",
            "figure5.json", "figure8.json", "describer.csv",
            "evaluations.csv",
        }

    def test_table1_csv_matches_result(self, exported):
        out, _written = exported
        with open(out / "table1.csv") as handle:
            rows = list(csv.reader(handle))[1:]
        assert [r[1] for r in rows] == ["234", "8", "4", "4", "2"]

    def test_figure8_json_has_paper_numbers(self, exported):
        out, _written = exported
        data = json.loads((out / "figure8.json").read_text())
        assert data["n_equivalent"] == 16
        assert data["n_repaired_total"] == 334

    def test_evaluations_csv_covers_catalog(self, exported, setup):
        out, _written = exported
        with open(out / "evaluations.csv") as handle:
            rows = list(csv.reader(handle))[1:]
        assert len(rows) == 252

    def test_coverage_json_names_exceptions(self, exported):
        out, _written = exported
        data = json.loads((out / "coverage.json").read_text())
        assert "link" in data["output_shortfall_modules"]
        assert data["n_full_input_coverage"] == 252
