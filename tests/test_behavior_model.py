"""Tests for the behavior spec and module model."""

import pytest

from repro.modules.behavior import BehaviorSpec, Branch, always
from repro.modules.errors import (
    InvalidInputError,
    MissingParameterError,
    ModuleUnavailableError,
    StructuralMismatchError,
)
from repro.modules.model import Category, InterfaceKind, Module, Parameter
from repro.values import INTEGER, STRING, TypedValue


def _echo(label: str):
    def transform(_ctx, inputs):
        return {"out": TypedValue(f"{label}:{inputs['x'].payload}", STRING, "KeywordSet")}

    return transform


def _guard_startswith(prefix: str):
    def guard(_ctx, inputs):
        return inputs["x"].payload.startswith(prefix)

    return guard


@pytest.fixture()
def spec():
    return BehaviorSpec(
        (
            Branch("a-branch", _guard_startswith("a"), _echo("A")),
            Branch("b-branch", _guard_startswith("b"), _echo("B")),
        )
    )


@pytest.fixture()
def module(spec):
    return Module(
        module_id="t.echo",
        name="Echo",
        category=Category.DATA_ANALYSIS,
        interface=InterfaceKind.LOCAL_PROGRAM,
        provider="test",
        inputs=(Parameter("x", STRING, "KeywordSet"),),
        outputs=(Parameter("out", STRING, "KeywordSet"),),
        behavior=spec,
    )


class TestBehaviorSpec:
    def test_requires_at_least_one_branch(self):
        with pytest.raises(ValueError):
            BehaviorSpec(())

    def test_duplicate_labels_rejected(self):
        branch = Branch("same", always, _echo("X"))
        with pytest.raises(ValueError, match="duplicate"):
            BehaviorSpec((branch, Branch("same", always, _echo("Y"))))

    def test_class_metadata(self, spec):
        assert spec.n_classes == 2
        assert spec.class_labels == ("a-branch", "b-branch")

    def test_first_accepting_branch_wins(self, ctx, spec):
        label, outputs = spec.execute(ctx, {"x": TypedValue("abc", STRING)})
        assert label == "a-branch"
        assert outputs["out"].payload == "A:abc"

    def test_no_accepting_branch_is_invalid_input(self, ctx, spec):
        with pytest.raises(InvalidInputError):
            spec.execute(ctx, {"x": TypedValue("zzz", STRING)})

    def test_classify_returns_none_on_invalid(self, ctx, spec):
        assert spec.classify(ctx, {"x": TypedValue("zzz", STRING)}) is None
        assert spec.classify(ctx, {"x": TypedValue("b1", STRING)}) == "b-branch"


class TestModule:
    def test_duplicate_parameter_names_rejected(self, spec):
        with pytest.raises(ValueError):
            Module(
                module_id="t.bad", name="Bad", category=Category.FILTERING,
                interface=InterfaceKind.LOCAL_PROGRAM, provider="test",
                inputs=(Parameter("x", STRING, "KeywordSet"),
                        Parameter("x", STRING, "KeywordSet")),
                outputs=(Parameter("out", STRING, "KeywordSet"),),
                behavior=spec,
            )

    def test_parameter_lookup(self, module):
        assert module.input("x").concept == "KeywordSet"
        assert module.output("out").structural == STRING
        with pytest.raises(KeyError):
            module.input("nope")
        with pytest.raises(KeyError):
            module.output("nope")

    def test_signature_shape(self, module):
        inputs, outputs = module.signature
        assert inputs == ((("String", "KeywordSet"),))
        assert outputs == ((("String", "KeywordSet"),))

    def test_invoke_happy_path(self, ctx, module):
        outputs = module.invoke(ctx, {"x": TypedValue("a!", STRING)})
        assert outputs["out"].payload == "A:a!"

    def test_missing_mandatory_parameter(self, ctx, module):
        with pytest.raises(MissingParameterError):
            module.invoke(ctx, {})

    def test_unknown_binding_rejected(self, ctx, module):
        with pytest.raises(StructuralMismatchError):
            module.invoke(ctx, {"x": TypedValue("a", STRING),
                                "y": TypedValue("b", STRING)})

    def test_structural_mismatch_rejected(self, ctx, module):
        with pytest.raises(StructuralMismatchError):
            module.invoke(ctx, {"x": TypedValue(3, INTEGER)})

    def test_optional_parameter_may_be_omitted(self, ctx, spec):
        module = Module(
            module_id="t.opt", name="Opt", category=Category.DATA_ANALYSIS,
            interface=InterfaceKind.LOCAL_PROGRAM, provider="test",
            inputs=(Parameter("x", STRING, "KeywordSet"),
                    Parameter("flag", STRING, "BooleanFlag", optional=True)),
            outputs=(Parameter("out", STRING, "KeywordSet"),),
            behavior=spec,
        )
        assert module.invoke(ctx, {"x": TypedValue("abc", STRING)})

    def test_unavailable_module_raises(self, ctx, module):
        module.available = False
        try:
            with pytest.raises(ModuleUnavailableError):
                module.invoke(ctx, {"x": TypedValue("abc", STRING)})
        finally:
            module.available = True

    def test_classify_tolerates_structural_mismatch(self, ctx, module):
        assert module.classify(ctx, {"x": TypedValue(3, INTEGER)}) is None
