"""Shared fixtures for the test suite.

Heavy artefacts (universe, catalog, pool, full experiment setup) are
session-scoped: they are deterministic and immutable (the decayed set is
the one exception and is rebuilt where mutation is needed).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.experiments.setup import default_setup

# Property tests share the process with heavyweight fixtures (full
# repository builds, in-process example runs); wall-clock deadlines would
# flake under that load, so they are disabled globally.
settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")
from repro.modules.catalog.factory import build_catalog, default_context
from repro.ontology import build_mygrid_ontology
from repro.pool.pool import InstancePool
from repro.pool.synthesis import default_factory


@pytest.fixture(scope="session")
def ontology():
    return build_mygrid_ontology()


@pytest.fixture(scope="session")
def ctx():
    return default_context()


@pytest.fixture(scope="session")
def universe(ctx):
    return ctx.universe


@pytest.fixture(scope="session")
def factory():
    return default_factory()


@pytest.fixture(scope="session")
def pool(factory, ontology):
    return InstancePool.bootstrap(factory, ontology)


@pytest.fixture(scope="session")
def catalog():
    return build_catalog()


@pytest.fixture(scope="session")
def catalog_by_id(catalog):
    return {m.module_id: m for m in catalog}


@pytest.fixture(scope="session")
def setup():
    """The full experiment fixture — built once for the whole session."""
    return default_setup()
