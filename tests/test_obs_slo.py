"""SLO burn-rate evaluation: window math per kind, the firing→resolved
lifecycle, transition-only event emission, drift registration, and
journal-fold reconstruction."""

from __future__ import annotations

import pytest

from repro.core.matching import MatchKind
from repro.obs.drift import DriftReport
from repro.obs.metrics import render_prometheus
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOEvaluator,
    alert_states,
    firing_alerts,
    render_alerts,
    window_burns,
)
from repro.obs.timeseries import TimeSeriesRing
from tests.test_obs_timeseries import make_sample, provider_entry


def availability_slo(**kw):
    defaults = dict(
        name="availability",
        kind="availability",
        objective=0.99,
        budget=0.01,
        fast_window=3,
        slow_window=5,
        fast_burn=10.0,
        slow_burn=2.0,
        per_provider=True,
    )
    defaults.update(kw)
    return SLO(**defaults)


def drift_report(module_id="m", kind=MatchKind.DISJOINT):
    return DriftReport(
        module_id=module_id,
        kind=kind,
        n_baseline=2,
        n_current=2,
        n_agreeing=0 if kind is not MatchKind.EQUIVALENT else 2,
        n_changed=2 if kind is not MatchKind.EQUIVALENT else 0,
        n_lost=0,
    )


# ----------------------------------------------------------------------
class TestSLOValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            availability_slo(kind="nonsense")

    def test_rejects_budget_outside_unit_interval(self):
        with pytest.raises(ValueError):
            availability_slo(budget=0.0)
        with pytest.raises(ValueError):
            availability_slo(budget=1.5)

    def test_rejects_degenerate_windows(self):
        with pytest.raises(ValueError):
            availability_slo(fast_window=1)
        with pytest.raises(ValueError):
            availability_slo(fast_window=6, slow_window=5)

    def test_default_slo_names_unique(self):
        names = [slo.name for slo in DEFAULT_SLOS]
        assert len(names) == len(set(names))
        SLOEvaluator()  # constructs without raising
        with pytest.raises(ValueError):
            SLOEvaluator((availability_slo(), availability_slo()))


# ----------------------------------------------------------------------
class TestWindowBurns:
    def test_availability_burn_per_provider(self):
        slo = availability_slo()
        window = [
            make_sample(providers={"EBI": provider_entry(10, 10)}),
            make_sample(
                providers={
                    "EBI": provider_entry(20, 15),  # 5/10 failed -> 0.5
                    "NCBI": provider_entry(4, 4),  # all answered -> 0.0
                }
            ),
        ]
        burns = window_burns(slo, window)
        assert burns["EBI"] == pytest.approx(50.0)  # 0.5 / 0.01
        assert burns["NCBI"] == pytest.approx(0.0)

    def test_quiet_window_yields_no_burns(self):
        slo = availability_slo()
        sample = make_sample(providers={"EBI": provider_entry(10, 10)})
        assert window_burns(slo, [sample, sample]) == {}
        assert window_burns(slo, [sample]) == {}

    def test_latency_burn(self):
        slo = SLO(name="lat", kind="latency_p95", objective=250.0, budget=0.05)
        window = [
            make_sample(
                latency={"count": 0, "sum_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0,
                         "cumulative_buckets": [["250", 0], ["+Inf", 0]]}
            ),
            make_sample(
                latency={"count": 10, "sum_ms": 0.0, "p95_ms": 0.0, "max_ms": 0.0,
                         "cumulative_buckets": [["250", 8], ["+Inf", 10]]}
            ),
        ]
        burns = window_burns(slo, window)
        assert burns["campaign"] == pytest.approx((2 / 10) / 0.05)

    def test_conformance_burn(self):
        slo = SLO(name="conf", kind="conformance", objective=0.999, budget=0.001)
        window = [
            make_sample(conformance={"checked": 100, "violations": 0}),
            make_sample(conformance={"checked": 200, "violations": 5}),
        ]
        burns = window_burns(slo, window)
        assert burns["campaign"] == pytest.approx((5 / 100) / 0.001)
        # Engines without the conformance layer produce no burn.
        assert window_burns(slo, [make_sample(), make_sample()]) == {}

    def test_coverage_stall_burn(self):
        slo = SLO(name="cov", kind="coverage_progress", objective=0.0, budget=0.5)
        stalled = [
            make_sample(progress={"n_planned": 5, "n_done": 2,
                                  "n_skipped": 0, "n_pending": 3}),
            make_sample(progress={"n_planned": 5, "n_done": 2,
                                  "n_skipped": 0, "n_pending": 3}),
        ]
        assert window_burns(slo, stalled)["campaign"] == pytest.approx(2.0)
        advancing = [stalled[0],
                     make_sample(progress={"n_planned": 5, "n_done": 3,
                                           "n_skipped": 0, "n_pending": 2})]
        assert window_burns(slo, advancing)["campaign"] == 0.0
        # A finished campaign is quiet, not stalled.
        finished = [
            make_sample(progress={"n_planned": 5, "n_done": 5,
                                  "n_skipped": 0, "n_pending": 0})
        ] * 2
        assert window_burns(slo, finished)["campaign"] == 0.0

    def test_window_truncated_at_resume_boundary(self):
        slo = availability_slo()
        window = [
            make_sample(run=0, providers={"EBI": provider_entry(50, 0)}),
            make_sample(run=1, providers={"EBI": provider_entry(2, 2)}),
            make_sample(run=1, providers={"EBI": provider_entry(4, 4)}),
        ]
        # Only the run-1 segment is compared: no failures there.
        assert window_burns(slo, window)["EBI"] == pytest.approx(0.0)


# ----------------------------------------------------------------------
def failing_ring(n=6, provider="EBI"):
    """A ring where every window shows total failure for one provider."""
    ring = TimeSeriesRing()
    for seq in range(n):
        ring.append(
            make_sample(
                seq=seq,
                t_ms=seq * 100.0,
                providers={provider: provider_entry(10 * (seq + 1), 0)},
            )
        )
    return ring


class TestEvaluatorLifecycle:
    def test_fires_once_and_stays_firing(self):
        evaluator = SLOEvaluator((availability_slo(),))
        ring = failing_ring()
        events = evaluator.evaluate(ring)
        assert [e["state"] for e in events] == ["firing"]
        assert events[0]["subject"] == "EBI"
        assert events[0]["kind"] == "availability"
        # Sustained failure emits no further events.
        assert evaluator.evaluate(ring) == []
        assert [a.subject for a in evaluator.firing()] == ["EBI"]

    def test_requires_both_windows(self):
        # Fast window burns but the slow window is healthy: no alert.
        slo = availability_slo(fast_window=2, slow_window=4, slow_burn=60.0)
        ring = TimeSeriesRing()
        for seq in range(4):
            failed = 10 if seq >= 3 else 0
            ring.append(
                make_sample(
                    seq=seq, t_ms=seq * 100.0,
                    providers={"EBI": provider_entry(
                        10 * (seq + 1), 10 * (seq + 1) - failed)},
                )
            )
        evaluator = SLOEvaluator((slo,))
        assert evaluator.evaluate(ring) == []
        assert evaluator.firing() == []

    def test_resolves_when_fast_window_back_under_budget(self):
        evaluator = SLOEvaluator((availability_slo(),))
        ring = failing_ring(4)
        assert len(evaluator.evaluate(ring)) == 1
        # Recovery: the provider answers everything from here on.
        last = ring.last()
        calls = last["health"]["providers"]["EBI"]["calls"]
        for extra in range(1, 4):
            entry = provider_entry(calls + 50 * extra, 50 * extra)
            ring.append(
                make_sample(seq=10 + extra, t_ms=1000.0 + extra * 100.0,
                            providers={"EBI": entry})
            )
        events = evaluator.evaluate(ring)
        assert [e["state"] for e in events] == ["resolved"]
        assert evaluator.firing() == []
        # Resolved is terminal until the next firing transition.
        assert evaluator.evaluate(ring) == []

    def test_empty_ring_is_a_no_op(self):
        evaluator = SLOEvaluator()
        assert evaluator.evaluate(TimeSeriesRing()) == []


class TestDriftRegistration:
    def test_drift_fires_once_then_resolves_on_equivalence(self):
        evaluator = SLOEvaluator()
        event = evaluator.register_drift(drift_report(), t_ms=10.0)
        assert event["state"] == "firing" and event["kind"] == "drift"
        assert event["slo"] == "behavior-drift" and event["subject"] == "m"
        # Idempotent while still drifted.
        assert evaluator.register_drift(drift_report(), t_ms=20.0) is None
        resolved = evaluator.register_drift(
            drift_report(kind=MatchKind.EQUIVALENT), t_ms=30.0
        )
        assert resolved["state"] == "resolved"
        # Equivalent behavior with no prior alert stays silent.
        assert (
            evaluator.register_drift(
                drift_report("other", MatchKind.EQUIVALENT), t_ms=40.0
            )
            is None
        )


# ----------------------------------------------------------------------
class TestReconstruction:
    EVENTS = [
        {"slo": "availability", "kind": "availability", "subject": "EBI",
         "state": "firing", "t_ms": 100.0, "detail": "burn"},
        {"slo": "behavior-drift", "kind": "drift", "subject": "m1",
         "state": "firing", "t_ms": 200.0, "detail": "disjoint"},
        {"slo": "availability", "kind": "availability", "subject": "EBI",
         "state": "resolved", "t_ms": 300.0, "detail": "recovered"},
    ]

    def test_last_event_wins(self):
        states = alert_states(self.EVENTS)
        assert states[("availability", "EBI")]["state"] == "resolved"
        assert states[("behavior-drift", "m1")]["state"] == "firing"

    def test_firing_alerts_filters_and_sorts(self):
        firing = firing_alerts(self.EVENTS)
        assert [e["subject"] for e in firing] == ["m1"]

    def test_render_alerts(self):
        text = render_alerts(self.EVENTS)
        assert "1 firing" in text and "2 tracked" in text and "3 events" in text
        assert "RESOLVED" in text and "behavior-drift" in text
        only_firing = render_alerts(self.EVENTS, firing_only=True)
        assert "EBI" not in only_firing and "m1" in only_firing
        assert "No alert history" in render_alerts([])


class TestSnapshotExport:
    def test_snapshot_feeds_prometheus_gauges(self):
        evaluator = SLOEvaluator((availability_slo(),))
        evaluator.evaluate(failing_ring())
        evaluator.register_drift(drift_report(), t_ms=500.0)
        section = evaluator.snapshot()
        assert section["n_firing"] == 2
        assert any(b["subject"] == "EBI" for b in section["burn_rates"])
        # Drift alerts export as alert gauges, not burn rates.
        assert all(b["slo"] != "behavior-drift" for b in section["burn_rates"])
        text = render_prometheus({"slo": section})
        assert 'repro_slo_burn_rate{slo="availability",subject="EBI",window="fast"}' in text
        assert 'repro_slo_alert_firing{slo="behavior-drift",subject="m"} 1' in text
        assert "repro_slo_alerts_firing 2" in text
