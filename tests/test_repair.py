"""Tests for data-example-driven workflow repair (§6)."""

import pytest

from repro.core.generation import ExampleGenerator
from repro.core.matching import MatchKind, find_matches
from repro.core.repair import RepairOutcome, WorkflowRepairer
from repro.modules.catalog.decayed import DECAYED_PROVIDERS, build_decayed_modules
from repro.workflow.decay import shut_down_providers
from repro.workflow.enactment import Enactor
from repro.workflow.model import DataLink, Step, Workflow


@pytest.fixture(scope="module")
def repair_world(ctx, catalog, catalog_by_id, pool):
    """Decayed modules matched against the catalog, then shut down."""
    decayed = build_decayed_modules()
    generator = ExampleGenerator(ctx, pool)
    examples = {m.module_id: generator.generate(m).examples for m in decayed}
    shut_down_providers(decayed, DECAYED_PROVIDERS)
    matches = {
        m.module_id: find_matches(ctx, m, examples[m.module_id], list(catalog))
        for m in decayed
    }
    modules = dict(catalog_by_id)
    modules.update({m.module_id: m for m in decayed})
    repairer = WorkflowRepairer(ctx, modules, matches, pool)
    return modules, repairer


class TestEquivalentRepair:
    def test_twin_substitution_full_repair(self, repair_world):
        modules, repairer = repair_world
        workflow = Workflow(
            "w-twin", "uses decayed KEGG SOAP",
            (Step("s1", "old.get_kegg_gene_s"),),
        )
        result = repairer.repair(workflow)
        assert result.outcome is RepairOutcome.FULL
        assert result.substitutions["s1"][1] == "ret.get_kegg_gene"
        assert result.substitutions["s1"][2] is MatchKind.EQUIVALENT
        assert result.validated

    def test_repair_validates_against_history(self, ctx, repair_world, pool):
        from repro.workflow.decay import restore_providers

        modules, repairer = repair_world
        workflow = Workflow(
            "w-hist", "with history",
            (Step("s1", "old.get_kegg_pathway_s"),),
        )
        decayed = [m for m in modules.values() if m.module_id.startswith("old.")]
        restore_providers(decayed, DECAYED_PROVIDERS)
        historical = Enactor(ctx, modules, pool).enact(workflow)
        shut_down_providers(decayed, DECAYED_PROVIDERS)
        result = repairer.repair(workflow, historical)
        assert result.outcome is RepairOutcome.FULL
        assert result.validated

    def test_healthy_workflow_untouched(self, repair_world):
        _modules, repairer = repair_world
        workflow = Workflow("w-ok", "healthy", (Step("s1", "ret.get_uniprot_record"),))
        result = repairer.repair(workflow)
        assert result.outcome is RepairOutcome.NONE
        assert not result.substitutions


class TestOverlappingRepair:
    def test_context_safe_substitution(self, repair_world):
        """The Figure 7 repair: GetProteinSequence replaced by
        GetBiologicalSequence when fed UniProt accessions by a link."""
        _modules, repairer = repair_world
        workflow = Workflow(
            "w-fig7", "figure 7",
            steps=(Step("s1", "map.kegg_to_uniprot"),
                   Step("s2", "old.get_protein_sequence"),
                   Step("s3", "an.blastp")),
            links=(DataLink("s1", "mapped", "s2", "id"),
                   DataLink("s2", "sequence", "s3", "sequence")),
        )
        result = repairer.repair(workflow)
        assert result.outcome is RepairOutcome.FULL
        assert result.substitutions["s2"][1] == "ret.get_biological_sequence"
        assert result.substitutions["s2"][2] is MatchKind.OVERLAPPING
        assert result.validated

    def test_free_input_is_not_context_safe(self, repair_world):
        """The same narrow module with a free input cannot be replaced:
        values outside the agreement domain could flow in."""
        _modules, repairer = repair_world
        workflow = Workflow(
            "w-free", "free input",
            (Step("s1", "old.get_protein_sequence"),),
        )
        result = repairer.repair(workflow)
        # Agreement domain is {UniProtAccession} but a free input ranges
        # over the full annotation... the annotation IS UniProtAccession,
        # so this one is actually safe.
        assert result.outcome is RepairOutcome.FULL

    def test_legacy_variant_with_free_parent_input_not_repaired(self, repair_world):
        """GetProteinRecordOld agrees only on UniProt; its free input is
        annotated ProteinAccession, so PIR values could flow in."""
        _modules, repairer = repair_world
        workflow = Workflow(
            "w-legacy", "legacy",
            (Step("s1", "old.get_protein_record"),),
        )
        result = repairer.repair(workflow)
        assert result.outcome is RepairOutcome.NONE
        assert result.unresolved == ["old.get_protein_record"]

    def test_legacy_variant_with_safe_link_is_repaired(self, repair_world):
        """The same legacy module fed UniProt accessions via a link is
        context-safe."""
        _modules, repairer = repair_world
        workflow = Workflow(
            "w-legacy-safe", "legacy safe",
            steps=(Step("s1", "map.kegg_to_uniprot"),
                   Step("s2", "old.get_protein_record")),
            links=(DataLink("s1", "mapped", "s2", "id"),),
        )
        result = repairer.repair(workflow)
        assert result.outcome is RepairOutcome.FULL
        assert result.substitutions["s2"][2] is MatchKind.OVERLAPPING


class TestPartialRepair:
    def test_orphan_keeps_workflow_partial(self, repair_world):
        _modules, repairer = repair_world
        workflow = Workflow(
            "w-partial", "twin plus orphan",
            (Step("s1", "old.get_kegg_gene_s"), Step("s2", "old.get_homologous")),
        )
        result = repairer.repair(workflow)
        assert result.outcome is RepairOutcome.PARTIAL
        assert "s1" in result.substitutions
        assert result.unresolved == ["old.get_homologous"]

    def test_orphan_only_workflow_not_repaired(self, repair_world):
        _modules, repairer = repair_world
        workflow = Workflow("w-none", "orphan", (Step("s1", "old.get_homologous"),))
        result = repairer.repair(workflow)
        assert result.outcome is RepairOutcome.NONE

    def test_repair_all_processes_every_workflow(self, repair_world):
        _modules, repairer = repair_world
        workflows = [
            Workflow("a", "a", (Step("s", "old.get_kegg_gene_s"),)),
            Workflow("b", "b", (Step("s", "old.get_homologous"),)),
        ]
        results = repairer.repair_all(workflows)
        assert [r.outcome for r in results] == [
            RepairOutcome.FULL, RepairOutcome.NONE,
        ]
