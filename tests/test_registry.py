"""Tests for the module registry and its SQLite persistence."""

import pytest

from repro.core.generation import ExampleGenerator
from repro.modules.model import Category
from repro.registry.registry import ModuleRegistry
from repro.registry.sqlite_store import load_examples, load_registry, save_registry


@pytest.fixture()
def registry(ontology, catalog):
    registry = ModuleRegistry(ontology)
    for module in catalog:
        registry.register(module)
    return registry


@pytest.fixture(scope="module")
def examples(ctx, pool, catalog_by_id):
    generator = ExampleGenerator(ctx, pool)
    return {
        module_id: generator.generate(catalog_by_id[module_id]).examples
        for module_id in ("ret.get_uniprot_record", "map.link", "an.identify")
    }


class TestRegistry:
    def test_register_all_catalog_modules(self, registry):
        assert len(registry) == 252

    def test_register_is_idempotent(self, registry, catalog):
        entry_before = registry.get(catalog[0].module_id)
        registry.register(catalog[0])
        assert registry.get(catalog[0].module_id) is entry_before
        assert len(registry) == 252

    def test_register_rejects_unknown_concept(self, ontology):
        from repro.modules.behavior import BehaviorSpec, Branch, always
        from repro.modules.model import InterfaceKind, Module, Parameter
        from repro.values import STRING, TypedValue

        bad = Module(
            module_id="t.bad", name="Bad", category=Category.FILTERING,
            interface=InterfaceKind.LOCAL_PROGRAM, provider="t",
            inputs=(Parameter("x", STRING, "NotAConcept"),),
            outputs=(Parameter("y", STRING, "KeywordSet"),),
            behavior=BehaviorSpec(
                (Branch("b", always, lambda c, i: {"y": TypedValue("", STRING)}),)
            ),
        )
        registry = ModuleRegistry(ontology)
        with pytest.raises(ValueError, match="unknown concept"):
            registry.register(bad)

    def test_attach_and_fetch_examples(self, registry, examples):
        registry.attach_examples("map.link", examples["map.link"])
        assert len(registry.examples_of("map.link")) == 20
        assert registry.examples_of("never.registered") == []

    def test_attach_to_unregistered_module_raises(self, registry, examples):
        with pytest.raises(KeyError):
            registry.attach_examples("no.such", examples["map.link"])

    def test_by_category(self, registry):
        assert len(registry.by_category(Category.FILTERING)) == 27

    def test_consuming_uses_subsumption(self, registry):
        consumers = {m.module_id for m in registry.consuming("UniProtAccession")}
        assert "ret.get_uniprot_record" in consumers  # exact
        assert "ret.get_protein_record" in consumers  # parent-annotated
        assert "map.link" in consumers  # DatabaseAccession-annotated

    def test_producing_uses_subsumption(self, registry):
        producers = {m.module_id for m in registry.producing("ProteinAccession")}
        assert "map.kegg_to_uniprot" in producers  # emits the sub-concept
        assert "an.identify" in producers  # annotated at the concept

    def test_search_by_name(self, registry):
        hits = registry.search_by_name("kegg")
        assert any(m.module_id == "ret.get_kegg_gene" for m in hits)

    def test_available_modules_excludes_decayed(self, ontology):
        from repro.modules.catalog.decayed import (
            DECAYED_PROVIDERS,
            build_decayed_modules,
        )
        from repro.workflow.decay import shut_down_providers

        decayed = build_decayed_modules()
        registry = ModuleRegistry(ontology)
        for module in decayed:
            registry.register(module)
        shut_down_providers(decayed, DECAYED_PROVIDERS)
        assert registry.available_modules() == []


class TestSqlitePersistence:
    def test_round_trip_examples(self, tmp_path, registry, examples, catalog_by_id):
        registry.attach_examples("map.link", examples["map.link"])
        registry.attach_examples("an.identify", examples["an.identify"])
        path = tmp_path / "registry.db"
        save_registry(registry, path)
        restored = load_examples(path)
        assert len(restored["map.link"]) == 20
        original = examples["map.link"][0]
        loaded = restored["map.link"][0]
        assert loaded.inputs[0].value.payload == original.inputs[0].value.payload
        assert loaded.inputs[0].partition == original.inputs[0].partition
        assert loaded.outputs[0].value.payload == original.outputs[0].value.payload

    def test_list_payloads_survive_round_trip(self, tmp_path, registry, examples):
        registry.attach_examples("an.identify", examples["an.identify"])
        save_registry(registry, tmp_path / "r.db")
        restored = load_examples(tmp_path / "r.db")
        masses = restored["an.identify"][0].input_value("masses")
        assert isinstance(masses.payload, tuple)
        assert masses.structural.is_list

    def test_load_registry_rebinds_live_modules(
        self, tmp_path, registry, examples, catalog_by_id, ontology
    ):
        registry.attach_examples("map.link", examples["map.link"])
        path = tmp_path / "r.db"
        save_registry(registry, path)
        fresh = ModuleRegistry(ontology)
        restored = load_registry(path, fresh, dict(catalog_by_id))
        assert restored == 252
        assert len(fresh.examples_of("map.link")) == 20

    def test_load_registry_skips_dead_modules(
        self, tmp_path, registry, ontology, catalog_by_id
    ):
        path = tmp_path / "r.db"
        save_registry(registry, path)
        live = {k: v for k, v in catalog_by_id.items() if k != "map.link"}
        fresh = ModuleRegistry(ontology)
        assert load_registry(path, fresh, live) == 251
        assert "map.link" not in fresh

    def test_save_is_overwrite_safe(self, tmp_path, registry):
        path = tmp_path / "r.db"
        save_registry(registry, path)
        save_registry(registry, path)  # second save must not duplicate
        import sqlite3

        connection = sqlite3.connect(path)
        try:
            count = connection.execute("SELECT COUNT(*) FROM modules").fetchone()[0]
        finally:
            connection.close()
        assert count == 252
