"""Unit and property tests for biological sequence operations."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.biodb.sequences import (
    back_transcribe,
    classify_sequence,
    digest,
    gc_content,
    make_ambiguous_biological,
    make_ambiguous_nucleotide,
    make_dna,
    make_protein,
    make_rna,
    molecular_weight,
    peptide_masses,
    reverse_complement,
    transcribe,
    translate,
)

dna_strategy = st.text(alphabet="ACGT", min_size=1, max_size=200)
rna_strategy = st.text(alphabet="ACGU", min_size=1, max_size=200)
# Letters that are amino acids but neither nucleotides nor ambiguity codes,
# so any non-empty string over them classifies as protein.
protein_strategy = st.text(alphabet="DEFHILPQ", min_size=1, max_size=100)


class TestGenerators:
    @pytest.mark.parametrize("seed", [0, 1, 42, 2014])
    def test_generators_classify_to_their_kind(self, seed):
        rng = random.Random(seed)
        assert classify_sequence(make_dna(rng)) == "DNASequence"
        assert classify_sequence(make_rna(rng)) == "RNASequence"
        assert classify_sequence(make_protein(rng)) == "ProteinSequence"
        assert classify_sequence(make_ambiguous_nucleotide(rng)) == "NucleotideSequence"
        assert classify_sequence(make_ambiguous_biological(rng)) == "BiologicalSequence"

    def test_generators_are_seed_deterministic(self):
        assert make_dna(random.Random(7)) == make_dna(random.Random(7))
        assert make_protein(random.Random(7)) == make_protein(random.Random(7))

    def test_generator_length_parameter(self):
        assert len(make_dna(random.Random(1), length=33)) == 33


class TestClassification:
    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            classify_sequence("")

    def test_non_alphabetic_rejected(self):
        with pytest.raises(ValueError):
            classify_sequence("ACGT-ACGT")

    def test_lowercase_is_normalized(self):
        assert classify_sequence("acgt") == "DNASequence"

    @given(dna_strategy)
    def test_dna_always_classifies_dna(self, seq):
        assert classify_sequence(seq) == "DNASequence"

    @given(protein_strategy)
    def test_protein_alphabet_classifies_protein(self, seq):
        assert classify_sequence(seq) == "ProteinSequence"


class TestTransformations:
    @given(dna_strategy)
    def test_transcribe_back_transcribe_round_trip(self, dna):
        assert back_transcribe(transcribe(dna)) == dna

    @given(dna_strategy)
    def test_transcription_result_is_rna_or_shared(self, dna):
        assert "T" not in transcribe(dna)

    @given(dna_strategy)
    def test_reverse_complement_is_involutive(self, dna):
        assert reverse_complement(reverse_complement(dna)) == dna

    @given(dna_strategy)
    def test_reverse_complement_preserves_length(self, dna):
        assert len(reverse_complement(dna)) == len(dna)

    def test_reverse_complement_example(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAA") == "TTT"

    @given(dna_strategy)
    def test_translate_length_is_half(self, dna):
        assert len(translate(dna)) == len(dna) // 2

    def test_translate_accepts_rna(self):
        assert translate("ACGU") == translate("ACGT")

    @given(st.one_of(dna_strategy, rna_strategy))
    def test_gc_content_in_unit_interval(self, seq):
        assert 0.0 <= gc_content(seq) <= 1.0

    def test_gc_content_of_empty_is_zero(self):
        assert gc_content("") == 0.0

    def test_gc_content_extremes(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("ATAT") == 0.0


class TestDigestion:
    def test_digest_cuts_after_k_and_r(self):
        assert digest("MAKWLRGG") == ["MAK", "WLR", "GG"]

    def test_digest_without_cut_sites(self):
        assert digest("MAWG") == ["MAWG"]

    @given(protein_strategy)
    def test_digest_fragments_rebuild_protein(self, protein):
        assert "".join(digest(protein)) == protein.upper()

    @given(protein_strategy)
    def test_peptide_masses_positive(self, protein):
        assert all(m > 0 for m in peptide_masses(protein))

    @given(protein_strategy)
    def test_molecular_weight_grows_with_length(self, protein):
        assert molecular_weight(protein + "G") > molecular_weight(protein)

    def test_molecular_weight_includes_water(self):
        assert molecular_weight("") == pytest.approx(18.02)
