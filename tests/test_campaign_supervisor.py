"""Tests of the sharded multi-process campaign: byte-identity with the
serial runner, chaos-kill recovery, wedged-worker detection, degraded
shards, and the supervisor-SIGKILL + CLI-resume smoke test."""

from __future__ import annotations

import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    CampaignSupervisor,
    render_campaign_report,
    worker_config,
)

LIMIT = 8

BASE = dict(limit=LIMIT, heartbeat_interval=0.2, restart_backoff=0.05)


@pytest.fixture(scope="module")
def serial_reference(ctx, catalog, pool, tmp_path_factory):
    """The serial run every sharded variant must reproduce exactly."""
    path = tmp_path_factory.mktemp("supervisor") / "serial.sqlite"
    journal = CampaignJournal(path)
    try:
        runner = CampaignRunner(
            ctx, catalog, pool, journal, CampaignConfig(**BASE)
        )
        result = runner.run("fleet")
    finally:
        journal.close()
    return result, render_campaign_report(result)


@pytest.fixture(scope="module")
def module_ids(catalog):
    return [module.module_id for module in catalog]


def _event_kinds(db, campaign_id):
    journal = CampaignJournal(db)
    try:
        return [e["kind"] for e in journal.worker_events(campaign_id)]
    finally:
        journal.close()


class TestShardedRun:
    def test_sharded_report_is_byte_identical_to_serial(
        self, tmp_path, module_ids, serial_reference
    ):
        reference, rendered = serial_reference
        supervisor = CampaignSupervisor(
            tmp_path / "sharded.sqlite",
            module_ids,
            CampaignConfig(**BASE, workers=3),
        )
        result = supervisor.run("fleet")
        assert result.status == "complete"
        assert result.digest() == reference.digest()
        assert render_campaign_report(result) == rendered
        kinds = _event_kinds(tmp_path / "sharded.sqlite", "fleet")
        assert kinds.count("spawn") == 3
        assert kinds.count("shard-done") == 3
        assert "crash" not in kinds

    def test_rerun_of_existing_campaign_raises(self, tmp_path, module_ids):
        config = CampaignConfig(**BASE, workers=2)
        db = tmp_path / "dup.sqlite"
        CampaignSupervisor(db, module_ids, config).run("dup")
        with pytest.raises(ValueError):
            CampaignSupervisor(db, module_ids, config).run("dup")

    def test_chaos_kill_recovers_to_identical_report(
        self, tmp_path, module_ids, serial_reference
    ):
        """Every first-attempt worker is SIGKILLed mid-shard; the
        restarted workers resume their shard journals and the merged
        report still matches the serial run byte for byte."""
        reference, rendered = serial_reference
        db = tmp_path / "chaos.sqlite"
        supervisor = CampaignSupervisor(
            db,
            module_ids,
            CampaignConfig(**BASE, workers=2, chaos_kill_at=2),
        )
        result = supervisor.run("fleet")
        assert result.status == "complete"
        assert result.digest() == reference.digest()
        assert render_campaign_report(result) == rendered
        kinds = _event_kinds(db, "fleet")
        assert kinds.count("crash") >= 2  # both first attempts died
        assert kinds.count("restart") >= 2
        assert "shard-reassign" in kinds
        assert "shard-degraded" not in kinds

    def test_exhausted_restart_budget_degrades_the_shard(
        self, tmp_path, module_ids
    ):
        """With a zero restart budget, a chaos-killed shard is declared
        degraded and its modules are journaled skipped — the campaign
        finishes degraded instead of looping."""
        db = tmp_path / "degraded.sqlite"
        supervisor = CampaignSupervisor(
            db,
            module_ids,
            CampaignConfig(**BASE, workers=2, chaos_kill_at=1, max_restarts=0),
        )
        result = supervisor.run("fleet")
        assert result.status == "degraded"
        assert result.skipped  # every unfinished module accounted for
        assert all("degraded" in detail for detail in result.skipped.values())
        assert len(result.reports) + len(result.skipped) == LIMIT
        kinds = _event_kinds(db, "fleet")
        assert kinds.count("shard-degraded") == 2

    def test_stalled_heartbeat_is_detected_and_killed(
        self, tmp_path, module_ids, serial_reference
    ):
        """A worker that wedges (alive but mute) trips the heartbeat
        timeout, is killed, and its replacement completes the shard."""
        reference, rendered = serial_reference
        db = tmp_path / "stall.sqlite"
        supervisor = CampaignSupervisor(
            db,
            module_ids,
            CampaignConfig(
                **BASE,
                workers=2,
                latency_ms=900.0,
                heartbeat_timeout=2.0,
                chaos_stall_after=1,
            ),
        )
        result = supervisor.run("fleet")
        assert result.status == "complete"
        assert result.digest() == reference.digest()
        kinds = _event_kinds(db, "fleet")
        assert "heartbeat-miss" in kinds
        assert kinds.count("shard-done") >= 2


class TestWorkerConfig:
    def test_worker_view_collapses_sharding_and_baseline(self):
        config = CampaignConfig(
            limit=5, workers=4, baseline="b0", chaos_kill_at=3
        )
        armed = worker_config(config, chaos_armed=True)
        assert armed.workers == 1
        assert armed.limit is None
        assert armed.baseline == ""
        assert armed.chaos_kill_at == 3

    def test_unarmed_worker_strips_chaos(self):
        config = CampaignConfig(
            workers=2, chaos_kill_at=3, chaos_kill_rate=0.5, chaos_stall_after=1
        )
        disarmed = worker_config(config, chaos_armed=False)
        assert disarmed.chaos_kill_at == 0
        assert disarmed.chaos_kill_rate == 0.0
        assert disarmed.chaos_stall_after == 0


# ----------------------------------------------------------------------
# The supervisor SIGKILL smoke test (ISSUE acceptance): kill the whole
# fleet's parent mid-campaign, resume from the surviving journals, and
# demand the serial run's bytes.
# ----------------------------------------------------------------------
def _cli_env(root):
    return {"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}


def _cli(*args):
    root = Path(__file__).resolve().parents[1]
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=root,
        env=_cli_env(root),
        timeout=300,
    )


def _shard_done_count(db, n_shards):
    done = 0
    for shard in range(n_shards):
        path = Path(f"{db}.shard-{shard:02d}")
        if not path.exists():
            continue
        try:
            done += sqlite3.connect(path).execute(
                "SELECT COUNT(*) FROM campaign_entries WHERE status = 'done'"
            ).fetchone()[0]
        except sqlite3.OperationalError:
            pass  # schema not committed yet
    return done


def test_supervisor_sigkill_then_cli_resume_matches_serial_run(tmp_path):
    root = Path(__file__).resolve().parents[1]
    db = tmp_path / "killed.sqlite"
    flags = ["--limit", "10", "--latency-ms", "40", "--workers", "3",
             "--heartbeat-interval", "0.2", "--restart-backoff", "0.05"]
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", "run", "smoke",
         "--db", str(db), *flags],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=root,
        env=_cli_env(root),
    )
    try:
        # Wait until the shard journals show real progress, then SIGKILL
        # the supervisor process itself.
        deadline = time.time() + 120
        while time.time() < deadline:
            if _shard_done_count(db, 3) >= 2 or victim.poll() is not None:
                break
            time.sleep(0.02)
        else:
            pytest.fail("sharded campaign never journaled progress")
    finally:
        victim.kill()  # SIGKILL the supervisor; workers are orphaned
        victim.wait()

    resumed = _cli("campaign", "resume", "smoke", "--db", str(db))
    assert resumed.returncode == 0, resumed.stderr
    reference = _cli(
        "campaign", "run", "smoke",
        "--db", str(tmp_path / "reference.sqlite"),
        "--limit", "10", "--latency-ms", "40",
    )
    assert reference.returncode == 0, reference.stderr
    assert resumed.stdout == reference.stdout  # byte-identical report
    assert "status: complete" in resumed.stdout

    # The worker fleet reconstructs post-mortem from the journals alone.
    fleet = _cli("campaign", "workers", "smoke", "--db", str(db))
    assert fleet.returncode == 0, fleet.stderr
    assert "EVENTS" in fleet.stdout
    assert "spawn" in fleet.stdout

    gauges = _cli("campaign", "workers", "smoke", "--db", str(db),
                  "--prometheus")
    assert gauges.returncode == 0, gauges.stderr
    assert "repro_campaign_worker_up{" in gauges.stdout
    assert "repro_campaign_worker_restarts_total{" in gauges.stdout


def test_cli_workers_rejects_serial_campaigns(tmp_path):
    db = tmp_path / "serial.sqlite"
    run = _cli("campaign", "run", "serial", "--db", str(db), "--limit", "2")
    assert run.returncode == 0, run.stderr
    fleet = _cli("campaign", "workers", "serial", "--db", str(db))
    assert fleet.returncode == 2
    assert "not sharded" in fleet.stderr


def test_cli_status_flags_journals_with_no_rows(tmp_path):
    db = tmp_path / "empty.sqlite"
    journal = CampaignJournal(db)
    try:
        journal.create("fresh", 2014, ["m1", "m2"], {})
    finally:
        journal.close()
    status = _cli("campaign", "status", "--db", str(db))
    assert status.returncode == 0, status.stderr
    assert "(no results journaled yet)" in status.stdout
