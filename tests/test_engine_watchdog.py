"""Tests of the watchdog: hard wall-clock budgets, abandoned-call
accounting, and the timeout path through the assembled engine."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import (
    DirectInvoker,
    EngineConfig,
    FaultPlan,
    InvocationEngine,
    WatchdogInvoker,
    WatchdogPolicy,
)
from repro.engine.breaker import BreakerPolicy, CircuitOpenError
from repro.engine.watchdog import deadline_scope, remaining_deadline
from repro.modules.errors import (
    InvalidInputError,
    ModuleTimeoutError,
    ModuleUnavailableError,
)

BUDGET = 0.05


class BlockingInvoker:
    """An invoker that blocks until released, then succeeds."""

    def __init__(self, outputs=None):
        self.release = threading.Event()
        self.outputs = outputs if outputs is not None else {}
        self.calls = 0

    def invoke(self, module, ctx, bindings):
        self.calls += 1
        self.release.wait(30.0)
        return dict(self.outputs)


class RaisingInvoker:
    def __init__(self, error):
        self.error = error

    def invoke(self, module, ctx, bindings):
        raise self.error


def _drain(watchdog, timeout=5.0):
    """Wait until no abandoned worker is still in flight."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if watchdog.stats.abandoned_in_flight == 0:
            return
        time.sleep(0.005)
    pytest.fail("abandoned workers never drained")


@pytest.fixture
def module(catalog_by_id):
    return catalog_by_id["ret.get_uniprot_record"]


@pytest.fixture
def good_bindings(ctx, pool, module):
    value = pool.get_instance(
        module.inputs[0].concept, module.inputs[0].structural
    )
    assert value is not None
    return {module.inputs[0].name: value}


class TestWatchdogInvoker:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="budget"):
            WatchdogPolicy(budget=0.0)
        with pytest.raises(ValueError, match="budget"):
            WatchdogPolicy(budget=-1.0)

    def test_fast_call_passes_through(self, module, ctx, good_bindings):
        direct = DirectInvoker()
        watchdog = WatchdogInvoker(direct, WatchdogPolicy(budget=10.0))
        assert watchdog.invoke(module, ctx, good_bindings) == direct.invoke(
            module, ctx, good_bindings
        )
        assert watchdog.stats.timeouts == 0
        assert watchdog.stats.abandoned_in_flight == 0

    def test_hang_is_abandoned_with_budget_attached(
        self, module, ctx, good_bindings
    ):
        inner = BlockingInvoker()
        watchdog = WatchdogInvoker(inner, WatchdogPolicy(budget=BUDGET))
        try:
            with pytest.raises(ModuleTimeoutError) as excinfo:
                watchdog.invoke(module, ctx, good_bindings)
        finally:
            inner.release.set()
        assert excinfo.value.budget == BUDGET
        assert "abandoned" in str(excinfo.value)
        assert isinstance(excinfo.value, ModuleUnavailableError)
        assert watchdog.stats.timeouts == 1

    def test_abandoned_call_accounting_drains_on_completion(
        self, module, ctx, good_bindings
    ):
        inner = BlockingInvoker()
        watchdog = WatchdogInvoker(inner, WatchdogPolicy(budget=BUDGET))
        with pytest.raises(ModuleTimeoutError):
            watchdog.invoke(module, ctx, good_bindings)
        assert watchdog.stats.abandoned_in_flight == 1
        assert watchdog.stats.abandoned_completed == 0
        inner.release.set()
        _drain(watchdog)
        assert watchdog.stats.abandoned_completed == 1
        snap = watchdog.snapshot()
        assert snap["budget_s"] == BUDGET
        assert snap["timeouts"] == 1
        assert snap["abandoned_in_flight"] == 0
        assert snap["abandoned_completed"] == 1

    def test_inner_exception_is_relayed_untouched(
        self, module, ctx, good_bindings
    ):
        watchdog = WatchdogInvoker(
            RaisingInvoker(InvalidInputError("bad accession")),
            WatchdogPolicy(budget=10.0),
        )
        with pytest.raises(InvalidInputError, match="bad accession"):
            watchdog.invoke(module, ctx, good_bindings)
        assert watchdog.stats.timeouts == 0

    def test_on_timeout_hook_fires(self, module, ctx, good_bindings):
        seen = []
        inner = BlockingInvoker()
        watchdog = WatchdogInvoker(
            inner,
            WatchdogPolicy(budget=BUDGET),
            on_timeout=lambda m, budget: seen.append((m.module_id, budget)),
        )
        try:
            with pytest.raises(ModuleTimeoutError):
                watchdog.invoke(module, ctx, good_bindings)
        finally:
            inner.release.set()
        assert seen == [(module.module_id, BUDGET)]


class FakeClock:
    """A hand-advanced clock for deadline arithmetic."""

    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestDeadlineScope:
    def test_no_scope_means_no_ambient_deadline(self):
        assert remaining_deadline() is None

    def test_scope_arms_and_exit_disarms(self):
        clock = FakeClock()
        with deadline_scope(10.0, clock=clock):
            assert remaining_deadline(clock) == pytest.approx(10.0)
            clock.advance(4.0)
            assert remaining_deadline(clock) == pytest.approx(6.0)
        assert remaining_deadline(clock) is None

    def test_nested_tighter_inner_wins_then_outer_is_restored(self):
        clock = FakeClock()
        with deadline_scope(10.0, clock=clock):
            with deadline_scope(2.0, clock=clock):
                assert remaining_deadline(clock) == pytest.approx(2.0)
            # Leaving the inner scope restores the outer deadline — the
            # tightening must not outlive its own block.
            assert remaining_deadline(clock) == pytest.approx(10.0)

    def test_nested_looser_inner_cannot_extend_the_outer(self):
        clock = FakeClock()
        with deadline_scope(1.0, clock=clock):
            with deadline_scope(60.0, clock=clock):
                # Nested scopes take the tighter of the two: an inner
                # scope never buys more time than the request has.
                assert remaining_deadline(clock) == pytest.approx(1.0)
            assert remaining_deadline(clock) == pytest.approx(1.0)

    def test_exhausted_deadline_goes_negative_not_none(self):
        clock = FakeClock()
        with deadline_scope(1.0, clock=clock):
            clock.advance(3.0)
            assert remaining_deadline(clock) == pytest.approx(-2.0)
        assert remaining_deadline(clock) is None

    def test_scope_disarms_even_when_the_body_raises(self):
        clock = FakeClock()
        with pytest.raises(RuntimeError, match="boom"):
            with deadline_scope(5.0, clock=clock):
                raise RuntimeError("boom")
        assert remaining_deadline(clock) is None

    def test_none_deadline_is_a_transparent_no_op(self):
        clock = FakeClock()
        with deadline_scope(None, clock=clock):
            assert remaining_deadline(clock) is None
        with deadline_scope(7.0, clock=clock):
            with deadline_scope(None, clock=clock):
                assert remaining_deadline(clock) == pytest.approx(7.0)


class TestEngineTimeoutPath:
    def _engine(self, module, **config):
        return InvocationEngine(
            EngineConfig(
                fault_plan=FaultPlan(
                    hang_providers=frozenset({module.provider}),
                    hang_duration_s=30.0,
                ),
                watchdog=WatchdogPolicy(budget=BUDGET),
                **config,
            )
        )

    def test_timeout_is_accounted_and_feeds_health(
        self, module, ctx, good_bindings
    ):
        engine = self._engine(module)
        try:
            with pytest.raises(ModuleTimeoutError):
                engine.invoke(module, ctx, good_bindings)
        finally:
            engine.fault_injector.release_hangs()
        assert engine.telemetry.counter("watchdog_timeouts") == 1
        assert engine.telemetry.counter("timeout") == 1
        record = engine.health.record(module.module_id)
        assert record.timeouts == 1
        assert record.consecutive_failures == 1
        assert record.answered == 0
        text = engine.render_stats()
        assert "watchdog" in text and "1 timeouts" in text

    def test_timeouts_trip_the_breaker(self, module, ctx, good_bindings):
        engine = self._engine(
            module,
            breaker=BreakerPolicy(failure_threshold=1, probe_interval=60.0),
        )
        try:
            with pytest.raises(ModuleTimeoutError):
                engine.invoke(module, ctx, good_bindings)
            # The circuit is open: the next call fast-fails without
            # spending another watchdog budget.
            with pytest.raises(CircuitOpenError):
                engine.invoke(module, ctx, good_bindings)
        finally:
            engine.fault_injector.release_hangs()
        assert engine.breaker.open_providers() == [module.provider]
        assert engine.telemetry.counter("breaker_fast_fails") == 1

    def test_timeout_is_never_cached(self, module, ctx, good_bindings):
        engine = self._engine(module, cache_size=64)
        try:
            for _ in range(2):
                with pytest.raises(ModuleTimeoutError):
                    engine.invoke(module, ctx, good_bindings)
        finally:
            engine.fault_injector.release_hangs()
        # Both calls went through the stack; neither hit the cache.
        assert engine.telemetry.counter("cache_misses") == 2
        assert engine.telemetry.counter("cache_hits") == 0
        assert engine.telemetry.counter("watchdog_timeouts") == 2
