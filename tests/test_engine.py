"""Tests of the invocation engine: cache, retry, faults, telemetry."""

from __future__ import annotations

import pytest

from repro.engine import (
    DeadlineExceededError,
    DirectInvoker,
    EngineConfig,
    FaultInjectingInvoker,
    FaultPlan,
    InjectedFaultError,
    InvocationCache,
    InvocationEngine,
    LatencyHistogram,
    RetryingInvoker,
    RetryPolicy,
    Telemetry,
    canonical_key,
)
from repro.modules.errors import (
    InvalidInputError,
    ModuleUnavailableError,
    StructuralMismatchError,
)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
class ScriptedInvoker:
    """An invoker that replays a script of outcomes, then succeeds."""

    def __init__(self, script=(), outputs=None):
        self.script = list(script)
        self.outputs = outputs if outputs is not None else {}
        self.calls = 0

    def invoke(self, module, ctx, bindings):
        self.calls += 1
        if self.script:
            outcome = self.script.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
        return dict(self.outputs)


class FakeClock:
    """A controllable monotonic clock; sleeping advances it."""

    def __init__(self):
        self.now = 0.0
        self.slept: list[float] = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds


@pytest.fixture
def module(catalog_by_id):
    return catalog_by_id["ret.get_uniprot_record"]


@pytest.fixture
def good_bindings(ctx, pool, module):
    value = pool.get_instance(
        module.inputs[0].concept, module.inputs[0].structural
    )
    assert value is not None
    return {module.inputs[0].name: value}


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestInvocationCache:
    def test_miss_then_hit(self, ctx, module, good_bindings):
        cache = InvocationCache(maxsize=8)
        key = canonical_key(module, good_bindings)
        assert cache.lookup(key) is None
        cache.store_success(key, {"out": "x"})
        outcome = cache.lookup(key)
        assert outcome is not None and outcome.replay() == {"out": "x"}
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_replay_returns_a_fresh_mapping(self, module, good_bindings):
        cache = InvocationCache(maxsize=8)
        key = canonical_key(module, good_bindings)
        cache.store_success(key, {"out": "x"})
        first = cache.lookup(key).replay()
        first["out"] = "mutated"
        assert cache.lookup(key).replay() == {"out": "x"}

    def test_negative_caching_replays_error_type(self, module, good_bindings):
        cache = InvocationCache(maxsize=8)
        key = canonical_key(module, good_bindings)
        cache.store_failure(key, StructuralMismatchError("bad shape"))
        outcome = cache.lookup(key)
        assert outcome.is_failure
        with pytest.raises(StructuralMismatchError, match="bad shape"):
            outcome.replay()
        assert cache.stats.negative_hits == 1

    def test_lru_eviction_and_stats(self, catalog, ctx, pool):
        cache = InvocationCache(maxsize=2)
        keys = [(m.module_id, "{}") for m in catalog[:3]]
        for key in keys:
            cache.store_success(key, {})
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.lookup(keys[0]) is None  # the oldest was evicted
        assert cache.lookup(keys[2]) is not None

    def test_lookup_freshens_recency(self):
        cache = InvocationCache(maxsize=2)
        cache.store_success(("a", "{}"), {})
        cache.store_success(("b", "{}"), {})
        cache.lookup(("a", "{}"))  # freshen a; b becomes the LRU entry
        cache.store_success(("c", "{}"), {})
        assert cache.lookup(("a", "{}")) is not None
        assert cache.lookup(("b", "{}")) is None

    def test_invalidate_by_module(self):
        cache = InvocationCache(maxsize=8)
        cache.store_success(("a", "{}"), {})
        cache.store_success(("a", '{"x": 1}'), {})
        cache.store_success(("b", "{}"), {})
        assert cache.invalidate("a") == 2
        assert len(cache) == 1

    def test_canonical_key_is_binding_order_independent(
        self, catalog_by_id, pool
    ):
        module = next(
            m for m in catalog_by_id.values() if len(m.inputs) >= 2
        )
        values = {
            p.name: pool.get_instance(p.concept, p.structural)
            for p in module.inputs
        }
        values = {k: v for k, v in values.items() if v is not None}
        assert len(values) >= 2
        names = list(values)
        forward = dict(values)
        backward = {name: values[name] for name in reversed(names)}
        assert canonical_key(module, forward) == canonical_key(module, backward)

    def test_canonical_key_survives_dict_insertion_order(self, catalog):
        """Two bindings dicts with the same content but different
        insertion histories must produce the same cache key."""
        from repro.values import INTEGER, STRING, TypedValue

        module = catalog[0]
        a = TypedValue(payload="x", structural=STRING, concept=None)
        b = TypedValue(payload=3, structural=INTEGER, concept=None)
        grown = {"p": a}
        grown["q"] = b
        grown["p"] = a  # rewrite does not move the key in a dict
        assert canonical_key(module, {"q": b, "p": a}) == canonical_key(
            module, grown
        )

    def test_canonical_key_normalizes_nan_payloads(self, catalog):
        """NaN != NaN, but two NaN-carrying bindings are the *same*
        combination — and the key must stay valid JSON (no bare NaN
        token)."""
        import json

        from repro.values import FLOAT, TypedValue

        module = catalog[0]
        nan_a = TypedValue(payload=float("nan"), structural=FLOAT, concept=None)
        nan_b = TypedValue(payload=float("nan"), structural=FLOAT, concept=None)
        finite = TypedValue(payload=1.5, structural=FLOAT, concept=None)
        key_a = canonical_key(module, {"x": nan_a})
        key_b = canonical_key(module, {"x": nan_b})
        assert key_a == key_b
        assert key_a != canonical_key(module, {"x": finite})
        json.loads(key_a[1])  # strict JSON, round-trippable

    def test_canonical_key_normalizes_nan_inside_tuples(self, catalog):
        from repro.values import FLOAT, TypedValue, list_of

        module = catalog[0]
        kind = list_of(FLOAT)
        first = TypedValue(
            payload=(1.0, float("nan")), structural=kind, concept=None
        )
        second = TypedValue(
            payload=(1.0, float("nan")), structural=kind, concept=None
        )
        assert canonical_key(module, {"xs": first}) == canonical_key(
            module, {"xs": second}
        )


# ----------------------------------------------------------------------
# Retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_recovers_after_transient_failures(self, module, ctx, good_bindings):
        inner = ScriptedInvoker(
            [ModuleUnavailableError("blip"), ModuleUnavailableError("blip")],
            outputs={"ok": 1},
        )
        clock = FakeClock()
        invoker = RetryingInvoker(
            inner, RetryPolicy(max_attempts=3, base_delay=0.1),
            clock=clock, sleep=clock.sleep,
        )
        assert invoker.invoke(module, ctx, good_bindings) == {"ok": 1}
        assert inner.calls == 3
        assert len(clock.slept) == 2
        # Exponential backoff: the second delay is roughly double the first.
        assert clock.slept[1] > clock.slept[0]

    def test_exhaustion_reraises_last_error(self, module, ctx, good_bindings):
        inner = ScriptedInvoker([ModuleUnavailableError("down")] * 5)
        clock = FakeClock()
        invoker = RetryingInvoker(
            inner, RetryPolicy(max_attempts=3), clock=clock, sleep=clock.sleep
        )
        with pytest.raises(ModuleUnavailableError, match="down"):
            invoker.invoke(module, ctx, good_bindings)
        assert inner.calls == 3

    def test_invalid_input_is_never_retried(self, module, ctx, good_bindings):
        inner = ScriptedInvoker([InvalidInputError("no such accession")])
        invoker = RetryingInvoker(inner, RetryPolicy(max_attempts=5))
        with pytest.raises(InvalidInputError):
            invoker.invoke(module, ctx, good_bindings)
        assert inner.calls == 1

    def test_deadline_enforced(self, module, ctx, good_bindings):
        inner = ScriptedInvoker([ModuleUnavailableError("down")] * 50)
        clock = FakeClock()
        invoker = RetryingInvoker(
            inner,
            RetryPolicy(max_attempts=50, base_delay=1.0, deadline=2.5, jitter=0.0),
            clock=clock,
            sleep=clock.sleep,
        )
        with pytest.raises(DeadlineExceededError):
            invoker.invoke(module, ctx, good_bindings)
        # 1s + 2s backoff would pass 2.5s, so at most the 1s retry ran.
        assert inner.calls <= 2
        # A deadline error still reads as an availability failure.
        with pytest.raises(ModuleUnavailableError):
            raise DeadlineExceededError("x")

    def test_jitter_is_seeded_and_deterministic(self):
        import random

        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=7)
        first = [
            policy.delay_before(i, random.Random(7)) for i in range(3)
        ]
        second = [
            policy.delay_before(i, random.Random(7)) for i in range(3)
        ]
        assert first == second
        varied = [policy.delay_before(0, random.Random(s)) for s in range(20)]
        assert len(set(varied)) > 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestFaultInjection:
    def test_zero_rate_is_transparent(self, module, ctx, good_bindings):
        inner = ScriptedInvoker(outputs={"ok": 1})
        invoker = FaultInjectingInvoker(inner, FaultPlan())
        assert invoker.invoke(module, ctx, good_bindings) == {"ok": 1}

    def test_transient_rate_is_seeded(self, module, ctx, good_bindings):
        def failures(seed):
            invoker = FaultInjectingInvoker(
                ScriptedInvoker(), FaultPlan(seed=seed, transient_failure_rate=0.3)
            )
            out = []
            for _ in range(50):
                try:
                    invoker.invoke(module, ctx, good_bindings)
                    out.append(False)
                except InjectedFaultError:
                    out.append(True)
            return out

        assert failures(11) == failures(11)
        assert 0 < sum(failures(11)) < 50

    def test_blackout_fails_then_recovers(self, module, ctx, good_bindings):
        invoker = FaultInjectingInvoker(
            ScriptedInvoker(outputs={"ok": 1}),
            FaultPlan(
                blackout_providers=frozenset({module.provider}),
                blackout_calls=2,
            ),
        )
        for _ in range(2):
            with pytest.raises(InjectedFaultError, match="blacked out"):
                invoker.invoke(module, ctx, good_bindings)
        assert invoker.invoke(module, ctx, good_bindings) == {"ok": 1}
        assert invoker.blackout_remaining(module.provider) == 0

    def test_injected_latency_sleeps(self, module, ctx, good_bindings):
        clock = FakeClock()
        invoker = FaultInjectingInvoker(
            ScriptedInvoker(outputs={}),
            FaultPlan(latency_ms=10.0, latency_jitter=0.0),
            sleep=clock.sleep,
        )
        invoker.invoke(module, ctx, good_bindings)
        assert clock.slept == [pytest.approx(0.01)]

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_ms=-1)

    def test_retry_rides_out_a_blackout(self, module, ctx, good_bindings):
        clock = FakeClock()
        faulty = FaultInjectingInvoker(
            ScriptedInvoker(outputs={"ok": 1}),
            FaultPlan(
                blackout_providers=frozenset({module.provider}),
                blackout_calls=2,
            ),
        )
        retrying = RetryingInvoker(
            faulty, RetryPolicy(max_attempts=4), clock=clock, sleep=clock.sleep
        )
        assert retrying.invoke(module, ctx, good_bindings) == {"ok": 1}


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestTelemetry:
    def test_counters_accumulate(self):
        telemetry = Telemetry()
        telemetry.incr("calls")
        telemetry.incr("calls", 4)
        assert telemetry.counter("calls") == 5
        assert telemetry.counter("unknown") == 0

    def test_histogram_quantiles_and_buckets(self):
        hist = LatencyHistogram()
        for ms in (0.04, 0.2, 0.2, 0.4, 3.0, 2000.0):
            hist.record(ms)
        assert hist.count == 6
        assert hist.max_ms == 2000.0
        assert hist.quantile(0.5) == 0.25
        assert hist.quantile(1.0) == 2000.0  # overflow bucket -> observed max
        buckets = hist.buckets()
        assert buckets["<=0.25ms"] == 2
        assert buckets["inf"] == 1
        with pytest.raises(ValueError):
            hist.quantile(1.2)

    def test_event_log_is_bounded(self):
        telemetry = Telemetry(max_events=3)
        for index in range(10):
            telemetry.event("call", f"m{index}")
        events = telemetry.events()
        assert len(events) == 3
        assert events[-1].module_id == "m9"

    def test_snapshot_and_render(self):
        telemetry = Telemetry()
        telemetry.incr("calls")
        telemetry.incr("ok")
        telemetry.record_latency(0.3)
        snap = telemetry.snapshot()
        assert snap["counters"]["calls"] == 1
        assert snap["latency"]["count"] == 1
        text = telemetry.render()
        assert "module calls:    1" in text
        assert "latency" in text

    def test_ring_buffer_counts_dropped_events(self):
        telemetry = Telemetry(max_events=3)
        for index in range(10):
            telemetry.event("call", f"m{index}")
        assert telemetry.dropped_events == 7
        snap = telemetry.snapshot()
        assert snap["max_events"] == 3
        assert snap["dropped_events"] == 7
        assert snap["n_events"] == 3
        assert "ring buffer full, 7 dropped" in telemetry.render()

    def test_drop_line_only_appears_when_events_were_dropped(self):
        telemetry = Telemetry(max_events=3)
        telemetry.event("call", "m0")
        assert telemetry.dropped_events == 0
        assert "dropped" not in telemetry.render()

    def test_max_events_validation(self):
        with pytest.raises(ValueError, match="max_events"):
            Telemetry(max_events=0)

    def test_thread_safety_under_concurrent_increments(self):
        import threading

        telemetry = Telemetry()

        def hammer():
            for _ in range(1000):
                telemetry.incr("calls")
                telemetry.record_latency(0.1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert telemetry.counter("calls") == 8000
        assert telemetry.histogram.count == 8000


# ----------------------------------------------------------------------
# The assembled engine
# ----------------------------------------------------------------------
class TestInvocationEngine:
    def test_direct_engine_matches_direct_invoker(
        self, module, ctx, good_bindings
    ):
        engine = InvocationEngine()
        direct = DirectInvoker().invoke(module, ctx, good_bindings)
        assert engine.invoke(module, ctx, good_bindings) == direct
        assert engine.telemetry.counter("calls") == 1
        assert engine.telemetry.counter("ok") == 1

    def test_cache_absorbs_repeat_invocations(self, module, ctx, good_bindings):
        engine = InvocationEngine(EngineConfig(cache_size=16))
        first = engine.invoke(module, ctx, good_bindings)
        second = engine.invoke(module, ctx, good_bindings)
        assert first == second
        assert engine.telemetry.counter("calls") == 1
        assert engine.telemetry.counter("cache_hits") == 1
        assert engine.cache.stats.hits == 1

    def test_negative_cache_replays_invalid_input(self, module, ctx, pool):
        engine = InvocationEngine(EngineConfig(cache_size=16))
        bad = {}  # mandatory input unbound -> InvalidInputError
        with pytest.raises(InvalidInputError):
            engine.invoke(module, ctx, bad)
        with pytest.raises(InvalidInputError):
            engine.invoke(module, ctx, bad)
        assert engine.telemetry.counter("calls") == 1
        assert engine.telemetry.counter("cache_negative_hits") == 1

    def test_unavailable_is_not_cached(self, module, ctx, good_bindings):
        engine = InvocationEngine(
            EngineConfig(cache_size=16),
            invoker=ScriptedInvoker(
                [ModuleUnavailableError("down")], outputs={"ok": 1}
            ),
        )
        with pytest.raises(ModuleUnavailableError):
            engine.invoke(module, ctx, good_bindings)
        # The provider "recovers"; the cache must not replay the failure.
        assert engine.invoke(module, ctx, good_bindings) == {"ok": 1}
        assert engine.telemetry.counter("calls") == 2

    def test_full_stack_counts_retries_and_faults(
        self, module, ctx, good_bindings
    ):
        clock = FakeClock()
        engine = InvocationEngine(
            EngineConfig(
                cache_size=16,
                retry=RetryPolicy(max_attempts=5),
                fault_plan=FaultPlan(
                    blackout_providers=frozenset({module.provider}),
                    blackout_calls=2,
                ),
            ),
            clock=clock,
            sleep=clock.sleep,
        )
        outputs = engine.invoke(module, ctx, good_bindings)
        assert outputs  # the real module answered after the blackout
        assert engine.telemetry.counter("retries") == 2
        assert engine.telemetry.counter("faults_injected") == 2
        assert engine.telemetry.counter("ok") == 1
        stats = engine.stats()
        assert stats["cache"]["misses"] == 1
        kinds = {event.kind for event in engine.telemetry.events()}
        assert {"fault_injected", "retry", "call"} <= kinds

    def test_render_stats_mentions_every_layer(self):
        engine = InvocationEngine(EngineConfig(cache_size=4, parallelism=3))
        text = engine.render_stats()
        assert "cache size" in text
        assert "parallelism 3" in text


# ----------------------------------------------------------------------
# Negative-cache TTL and generation stamps (repair-driven revisiting)
# ----------------------------------------------------------------------
class TestNegativeCacheExpiry:
    def test_negative_entry_expires_after_ttl(self, module, good_bindings):
        clock = FakeClock()
        cache = InvocationCache(maxsize=8, negative_ttl=60.0, clock=clock)
        key = canonical_key(module, good_bindings)
        cache.store_failure(key, InvalidInputError("rejected"))
        clock.now = 59.9
        assert cache.lookup(key) is not None  # still replayable
        clock.now = 60.0
        assert cache.lookup(key) is None  # aged out: revisit the module
        assert cache.stats.negative_expired == 1
        assert cache.lookup(key) is None  # gone for good, plain miss
        assert cache.stats.negative_expired == 1

    def test_positive_entries_never_expire(self, module, good_bindings):
        clock = FakeClock()
        cache = InvocationCache(maxsize=8, negative_ttl=1.0, clock=clock)
        key = canonical_key(module, good_bindings)
        cache.store_success(key, {"out": "x"})
        clock.now = 1e9
        outcome = cache.lookup(key)
        assert outcome is not None and outcome.replay() == {"out": "x"}

    def test_module_bump_drops_only_that_modules_negatives(self):
        cache = InvocationCache(maxsize=8)
        cache.store_failure(("a", "{}"), InvalidInputError("no"))
        cache.store_success(("a", '{"x": 1}'), {})
        cache.store_failure(("b", "{}"), InvalidInputError("no"))
        assert cache.bump_generation("a") == 1  # the repaired module
        assert cache.lookup(("a", "{}")) is None
        assert cache.lookup(("a", '{"x": 1}')) is not None  # positive kept
        assert cache.lookup(("b", "{}")) is not None  # other module kept

    def test_global_bump_expires_negatives_lazily(self):
        cache = InvocationCache(maxsize=8)
        cache.store_failure(("a", "{}"), InvalidInputError("no"))
        cache.store_success(("b", "{}"), {})
        assert cache.bump_generation() == 0  # nothing dropped eagerly
        assert cache.lookup(("a", "{}")) is None  # lazily expired
        assert cache.stats.negative_expired == 1
        assert cache.lookup(("b", "{}")) is not None
        # A rejection stored *after* the bump is current again.
        cache.store_failure(("a", "{}"), InvalidInputError("still no"))
        assert cache.lookup(("a", "{}")) is not None

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            InvocationCache(maxsize=8, negative_ttl=0)

    def test_engine_revisits_rejections_after_ttl(
        self, module, ctx, good_bindings
    ):
        """End to end: a repaired module's rejection is re-asked once the
        negative TTL lapses, and the fresh answer is cached."""
        clock = FakeClock()
        inner = ScriptedInvoker(
            [InvalidInputError("broken build")], outputs={"ok": 1}
        )
        engine = InvocationEngine(
            EngineConfig(cache_size=16, negative_ttl=30.0),
            invoker=inner,
            clock=clock,
        )
        with pytest.raises(InvalidInputError):
            engine.invoke(module, ctx, good_bindings)
        with pytest.raises(InvalidInputError):  # replayed, no call
            engine.invoke(module, ctx, good_bindings)
        assert inner.calls == 1
        clock.now = 30.0  # the module was repaired meanwhile
        assert engine.invoke(module, ctx, good_bindings) == {"ok": 1}
        assert inner.calls == 2
        assert engine.stats()["cache"]["negative_expired"] == 1

    def test_engine_bump_generation_revisits_immediately(
        self, module, ctx, good_bindings
    ):
        inner = ScriptedInvoker(
            [InvalidInputError("broken build")], outputs={"ok": 1}
        )
        engine = InvocationEngine(EngineConfig(cache_size=16), invoker=inner)
        with pytest.raises(InvalidInputError):
            engine.invoke(module, ctx, good_bindings)
        engine.cache.bump_generation(module.module_id)
        assert engine.invoke(module, ctx, good_bindings) == {"ok": 1}
        assert inner.calls == 2
