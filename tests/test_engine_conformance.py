"""Tests of output-conformance validation: arity/structure/semantics
checks, the nondeterminism probe, and the malformed path through the
assembled engine."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine import (
    ConformancePolicy,
    ConformingInvoker,
    DirectInvoker,
    EngineConfig,
    FaultPlan,
    InvocationEngine,
)
from repro.engine.breaker import BreakerPolicy, BreakerState
from repro.modules.errors import (
    MalformedOutputError,
    NondeterministicOutputError,
)
from repro.values import INTEGER


@pytest.fixture
def module(catalog_by_id):
    return catalog_by_id["ret.get_uniprot_record"]


@pytest.fixture
def good_bindings(ctx, pool, module):
    value = pool.get_instance(
        module.inputs[0].concept, module.inputs[0].structural
    )
    assert value is not None
    return {module.inputs[0].name: value}


@pytest.fixture
def honest_outputs(module, ctx, good_bindings):
    return DirectInvoker().invoke(module, ctx, good_bindings)


class ScriptedOutputs:
    """An invoker that replays a fixed sequence of output dicts."""

    def __init__(self, *outputs):
        self.outputs = list(outputs)
        self.calls = 0

    def invoke(self, module, ctx, bindings):
        self.calls += 1
        outputs = self.outputs.pop(0) if len(self.outputs) > 1 else self.outputs[0]
        return dict(outputs)


def conforming(inner, **policy):
    return ConformingInvoker(inner, ConformancePolicy(**policy))


class TestValidation:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="probe_rate"):
            ConformancePolicy(probe_rate=1.5)
        with pytest.raises(ValueError, match="probe_rate"):
            ConformancePolicy(probe_rate=-0.1)

    def test_honest_outputs_pass(self, module, ctx, good_bindings):
        checker = conforming(DirectInvoker())
        outputs = checker.invoke(module, ctx, good_bindings)
        assert set(outputs) == {p.name for p in module.outputs}
        assert checker.stats.checked == 1
        assert checker.stats.violations == 0

    def test_missing_output_is_an_arity_violation(
        self, module, ctx, good_bindings, honest_outputs
    ):
        lying = dict(honest_outputs)
        del lying[sorted(lying)[-1]]
        checker = conforming(ScriptedOutputs(lying))
        with pytest.raises(MalformedOutputError, match="output names"):
            checker.invoke(module, ctx, good_bindings)
        assert checker.stats.arity_violations == 1

    def test_renamed_output_is_an_arity_violation(
        self, module, ctx, good_bindings, honest_outputs
    ):
        name = sorted(honest_outputs)[0]
        lying = dict(honest_outputs)
        lying["not_" + name] = lying.pop(name)
        checker = conforming(ScriptedOutputs(lying))
        with pytest.raises(MalformedOutputError) as excinfo:
            checker.invoke(module, ctx, good_bindings)
        assert excinfo.value.cause == "malformed-output"
        assert excinfo.value.outputs  # the lie is captured for quarantine

    def test_wrong_structural_type_is_a_structure_violation(
        self, module, ctx, good_bindings, honest_outputs
    ):
        name = module.outputs[0].name
        lying = dict(honest_outputs)
        lying[name] = dataclasses.replace(
            lying[name], payload=7, structural=INTEGER
        )
        checker = conforming(ScriptedOutputs(lying))
        with pytest.raises(MalformedOutputError, match="requires"):
            checker.invoke(module, ctx, good_bindings)
        assert checker.stats.structure_violations == 1

    def test_unknown_concept_is_a_semantic_violation(
        self, module, ctx, good_bindings, honest_outputs
    ):
        name = module.outputs[0].name
        lying = dict(honest_outputs)
        lying[name] = dataclasses.replace(lying[name], concept="no:such_concept")
        checker = conforming(ScriptedOutputs(lying))
        with pytest.raises(MalformedOutputError, match="annotated domain"):
            checker.invoke(module, ctx, good_bindings)
        assert checker.stats.semantic_violations == 1

    def test_unsubsumed_concept_is_a_semantic_violation(
        self, module, ctx, good_bindings, honest_outputs
    ):
        parameter = module.outputs[0]
        alien = next(
            concept
            for concept in ctx.ontology.names()
            if not ctx.ontology.subsumes(parameter.concept, concept)
        )
        lying = dict(honest_outputs)
        lying[parameter.name] = dataclasses.replace(
            lying[parameter.name], concept=alien
        )
        checker = conforming(ScriptedOutputs(lying))
        with pytest.raises(MalformedOutputError, match="annotated domain"):
            checker.invoke(module, ctx, good_bindings)

    def test_untyped_value_skips_the_semantic_check(
        self, module, ctx, good_bindings, honest_outputs
    ):
        name = module.outputs[0].name
        relaxed = dict(honest_outputs)
        relaxed[name] = dataclasses.replace(relaxed[name], concept=None)
        checker = conforming(ScriptedOutputs(relaxed))
        checker.invoke(module, ctx, good_bindings)
        assert checker.stats.violations == 0

    def test_disabled_checks_tolerate_the_lie(
        self, module, ctx, good_bindings, honest_outputs
    ):
        lying = dict(honest_outputs)
        del lying[sorted(lying)[-1]]
        checker = conforming(ScriptedOutputs(lying), check_arity=False)
        checker.invoke(module, ctx, good_bindings)
        assert checker.stats.violations == 0

    def test_on_violation_hook_fires(self, module, ctx, good_bindings, honest_outputs):
        seen = []
        lying = dict(honest_outputs)
        del lying[sorted(lying)[-1]]
        checker = ConformingInvoker(
            ScriptedOutputs(lying),
            ConformancePolicy(),
            on_violation=lambda m, e: seen.append((m.module_id, type(e).__name__)),
        )
        with pytest.raises(MalformedOutputError):
            checker.invoke(module, ctx, good_bindings)
        assert seen == [(module.module_id, "MalformedOutputError")]


class TestNondeterminismProbe:
    def test_probe_decision_is_content_keyed_and_stable(
        self, module, ctx, good_bindings
    ):
        checker = conforming(DirectInvoker(), probe_rate=0.5)
        first = checker.should_probe(module, good_bindings)
        # Identical regardless of how often or when it is asked.
        assert all(
            checker.should_probe(module, good_bindings) == first
            for _ in range(5)
        )

    def test_probe_rate_edges(self, module, good_bindings):
        never = conforming(DirectInvoker(), probe_rate=0.0)
        always = conforming(DirectInvoker(), probe_rate=1.0)
        assert never.should_probe(module, good_bindings) is False
        assert always.should_probe(module, good_bindings) is True

    def test_stable_module_survives_the_probe(self, module, ctx, good_bindings):
        checker = conforming(DirectInvoker(), probe_rate=1.0)
        checker.invoke(module, ctx, good_bindings)
        assert checker.stats.probes == 1
        assert checker.stats.unstable == 0

    def test_unstable_module_is_flagged(
        self, module, ctx, good_bindings, honest_outputs
    ):
        name = module.outputs[0].name
        second = dict(honest_outputs)
        second[name] = dataclasses.replace(
            second[name], payload=str(second[name].payload) + "#run2"
        )
        checker = conforming(
            ScriptedOutputs(honest_outputs, second), probe_rate=1.0
        )
        with pytest.raises(NondeterministicOutputError) as excinfo:
            checker.invoke(module, ctx, good_bindings)
        assert excinfo.value.cause == "nondeterministic"
        assert checker.stats.unstable == 1
        assert checker.stats.unstable_modules == {module.module_id}
        snap = checker.snapshot()
        assert snap["unstable_modules"] == [module.module_id]


class TestEngineMalformedPath:
    def _engine(self, module, fault_field, **config):
        return InvocationEngine(
            EngineConfig(
                fault_plan=FaultPlan(
                    **{fault_field: frozenset({module.provider})}
                ),
                conformance=ConformancePolicy(probe_rate=1.0),
                breaker=BreakerPolicy(failure_threshold=1, probe_interval=60.0),
                **config,
            )
        )

    def test_corrupt_output_is_malformed_not_unavailable(
        self, module, ctx, good_bindings
    ):
        engine = self._engine(module, "corrupt_output_providers")
        with pytest.raises(MalformedOutputError):
            engine.invoke(module, ctx, good_bindings)
        # The provider answered: circuits stay closed even at threshold 1.
        assert engine.breaker.state(module.provider) is BreakerState.CLOSED
        assert engine.telemetry.counter("conformance_violations") == 1
        assert engine.telemetry.counter("malformed") == 1
        record = engine.health.record(module.module_id)
        assert record.malformed == 1
        assert record.consecutive_failures == 0
        assert record.answered == 1

    def test_nondeterministic_provider_is_caught_by_the_probe(
        self, module, ctx, good_bindings
    ):
        engine = self._engine(module, "nondeterministic_providers")
        with pytest.raises(NondeterministicOutputError):
            engine.invoke(module, ctx, good_bindings)
        assert engine.conformance.stats.unstable == 1
        text = engine.render_stats()
        assert "conformance" in text and "1 unstable" in text

    def test_malformed_output_is_never_cached(self, module, ctx, good_bindings):
        engine = self._engine(module, "corrupt_output_providers", cache_size=64)
        for _ in range(2):
            with pytest.raises(MalformedOutputError):
                engine.invoke(module, ctx, good_bindings)
        assert engine.telemetry.counter("cache_misses") == 2
        assert engine.telemetry.counter("cache_hits") == 0
        assert engine.telemetry.counter("cache_negative_hits") == 0
