"""Tests of the campaign layer: journal, checkpoint/resume byte-identity,
graceful degradation, and the kill -9 smoke test."""

from __future__ import annotations

import json
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignJournal,
    CampaignRunner,
    UnknownCampaignError,
    render_campaign_report,
    report_from_dict,
    report_to_dict,
)

LIMIT = 5

# The slice the checkpoint tests campaign over: small enough to re-run
# per boundary, wide enough to span two providers (EBI, Manchester-lab).
BASE = dict(limit=LIMIT, retry_base_delay=0.0, probe_interval=0.05)


def make_runner(ctx, catalog, pool, journal, **overrides):
    return CampaignRunner(
        ctx, catalog, pool, journal, CampaignConfig(**{**BASE, **overrides})
    )


@pytest.fixture
def journal(tmp_path):
    journal = CampaignJournal(tmp_path / "journal.sqlite")
    yield journal
    journal.close()


@pytest.fixture(scope="module")
def uninterrupted(ctx, catalog, pool, tmp_path_factory):
    """The reference: one campaign driven to completion without incident."""
    path = tmp_path_factory.mktemp("campaign") / "reference.sqlite"
    journal = CampaignJournal(path)
    try:
        result = make_runner(ctx, catalog, pool, journal).run("ref")
    finally:
        journal.close()
    return result, render_campaign_report(result)


# ----------------------------------------------------------------------
# Journal persistence
# ----------------------------------------------------------------------
class TestJournal:
    def test_report_round_trips_through_json(self, uninterrupted):
        result, _ = uninterrupted
        for report in result.reports.values():
            wire = json.loads(json.dumps(report_to_dict(report)))
            rebuilt = report_from_dict(wire)
            assert report_to_dict(rebuilt) == report_to_dict(report)
            assert rebuilt.n_examples == report.n_examples
            assert rebuilt.selected == report.selected
            assert rebuilt.unrealized_partitions == report.unrealized_partitions

    def test_create_meta_and_status(self, journal):
        journal.create("c1", 7, ["m1", "m2"], {"limit": 2})
        meta = journal.meta("c1")
        assert meta.seed == 7
        assert meta.status == "running"
        assert meta.module_ids == ("m1", "m2")
        assert meta.config == {"limit": 2}
        journal.set_status("c1", "complete")
        assert journal.meta("c1").status == "complete"

    def test_duplicate_campaign_is_rejected(self, journal):
        journal.create("c1", 1, [])
        with pytest.raises(ValueError, match="already exists"):
            journal.create("c1", 1, [])

    def test_unknown_campaign_raises(self, journal):
        with pytest.raises(UnknownCampaignError):
            journal.meta("nope")
        with pytest.raises(UnknownCampaignError):
            journal.set_status("nope", "complete")

    def test_bad_status_is_rejected(self, journal):
        journal.create("c1", 1, [])
        with pytest.raises(ValueError):
            journal.set_status("c1", "exploded")

    def test_done_replaces_skipped(self, journal, uninterrupted):
        result, _ = uninterrupted
        module_id, report = next(iter(result.reports.items()))
        journal.create("c1", 1, [module_id])
        journal.record_skipped("c1", module_id, "provider dark")
        entry = journal.entries("c1")[module_id]
        assert entry.status == "skipped" and entry.detail == "provider dark"
        journal.record_done("c1", report)
        entry = journal.entries("c1")[module_id]
        assert entry.status == "done"
        assert report_to_dict(entry.report) == report_to_dict(report)

    def test_campaigns_listing(self, journal):
        journal.create("b", 1, [])
        journal.create("a", 2, [])
        assert [meta.campaign_id for meta in journal.campaigns()] == ["a", "b"]

    def test_config_round_trips(self):
        config = CampaignConfig(
            seed=9, permanent_blackouts=("EBI",), deadline=2.5, limit=10
        )
        assert CampaignConfig.from_dict(config.to_dict()) == config


# ----------------------------------------------------------------------
# Checkpoint / resume byte-identity
# ----------------------------------------------------------------------
class _KilledMidRun(RuntimeError):
    """Stands in for SIGKILL: raised *before* a journal write commits."""


class _CrashingJournal(CampaignJournal):
    """Dies at a chosen journal boundary, like a kill -9 would."""

    def __init__(self, path, crash_after: int) -> None:
        super().__init__(path)
        self.crash_after = crash_after
        self.done_writes = 0

    def record_done(self, campaign_id, report):
        if self.done_writes >= self.crash_after:
            raise _KilledMidRun(f"killed before write {self.done_writes + 1}")
        super().record_done(campaign_id, report)
        self.done_writes += 1


class TestCheckpointResume:
    @pytest.mark.parametrize("boundary", range(LIMIT))
    def test_kill_at_every_journal_boundary_then_resume(
        self, ctx, catalog, pool, tmp_path, uninterrupted, boundary
    ):
        """A campaign killed after N journal commits and resumed in a
        fresh runner renders byte-identically to the uninterrupted run."""
        _, reference_text = uninterrupted
        path = tmp_path / "killed.sqlite"
        crashing = _CrashingJournal(path, crash_after=boundary)
        with pytest.raises(_KilledMidRun):
            make_runner(ctx, catalog, pool, crashing).run("ref")
        crashing.close()

        journal = CampaignJournal(path)
        try:
            assert len(journal.entries("ref")) == boundary  # WAL held up
            result = make_runner(ctx, catalog, pool, journal).resume("ref")
        finally:
            journal.close()
        assert result.status == "complete"
        assert render_campaign_report(result) == reference_text

    def test_resume_of_a_finished_campaign_is_idempotent(
        self, ctx, catalog, pool, tmp_path, uninterrupted
    ):
        _, reference_text = uninterrupted
        path = tmp_path / "done.sqlite"
        journal = CampaignJournal(path)
        try:
            make_runner(ctx, catalog, pool, journal).run("ref")
            result = make_runner(ctx, catalog, pool, journal).resume("ref")
        finally:
            journal.close()
        assert render_campaign_report(result) == reference_text

    def test_resume_unknown_campaign(self, ctx, catalog, pool, journal):
        with pytest.raises(UnknownCampaignError):
            make_runner(ctx, catalog, pool, journal).resume("nope")

    def test_finite_blackout_is_ridden_out_by_probe_rounds(
        self, ctx, catalog, pool, journal, uninterrupted
    ):
        """A provider dark for more calls than one retry budget stalls the
        first pass; the probe rounds ride it out and the final report is
        still byte-identical to fair-weather."""
        _, reference_text = uninterrupted
        result = make_runner(
            ctx,
            catalog,
            pool,
            journal,
            blackout_providers=("EBI",),
            blackout_calls=4,
            max_attempts=2,
            failure_threshold=2,
            deadline=30.0,
        ).run("ref")
        assert result.status == "complete"
        assert render_campaign_report(result) == reference_text


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_permanent_blackout_degrades_with_manifest(
        self, ctx, catalog, pool, journal
    ):
        dark = "EBI"
        planned = catalog[:LIMIT]
        dark_ids = [m.module_id for m in planned if m.provider == dark]
        assert dark_ids, "the test slice must contain the dark provider"
        runner = make_runner(
            ctx,
            catalog,
            pool,
            journal,
            permanent_blackouts=(dark,),
            failure_threshold=1,  # trip on the first dark call
            probe_interval=60.0,  # no probes inside the test window
            deadline=None,  # skip after the first pass
        )
        result = runner.run("dark")

        assert result.status == "degraded"
        assert sorted(result.skipped) == sorted(dark_ids)
        for reason in result.skipped.values():
            assert f"provider {dark} unreachable" in reason
            assert "breaker open" in reason
        assert result.breaker_states[dark]["state"] == "open"
        assert result.coverage == pytest.approx(1 - len(dark_ids) / LIMIT)
        # Containment: the open circuit capped the wasted provider round
        # trips at threshold × retry budget for the *whole* campaign.
        telemetry = runner.engine.telemetry
        assert (
            telemetry.counter("faults_injected")
            == runner.config.failure_threshold * runner.config.max_attempts
        )
        assert telemetry.counter("breaker_fast_fails") > 0
        assert journal.meta("dark").status == "degraded"

        text = render_campaign_report(result)
        assert "Degradation manifest" in text
        assert f"coverage impact:  {len(dark_ids)}/{LIMIT} modules skipped" in text
        for module_id in dark_ids:
            assert module_id in text
        assert "opened 1x" in text

    def test_resume_after_repair_completes_the_campaign(
        self, ctx, catalog, pool, journal, uninterrupted
    ):
        """Once the provider is back, resuming the degraded campaign
        converges on the same content as a never-degraded one."""
        reference, _ = uninterrupted
        make_runner(
            ctx,
            catalog,
            pool,
            journal,
            permanent_blackouts=("EBI",),
            probe_interval=60.0,
        ).run("dark")
        result = make_runner(ctx, catalog, pool, journal).resume("dark")
        assert result.status == "complete"
        assert not result.skipped
        assert result.digest() == reference.digest()
        assert journal.meta("dark").status == "complete"


# ----------------------------------------------------------------------
# The kill -9 smoke test (ISSUE satellite): a real process, a real SIGKILL
# ----------------------------------------------------------------------
def _cli(tmp_path, *args):
    root = Path(__file__).resolve().parents[1]
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
        timeout=300,
    )


def test_sigkill_mid_campaign_then_resume_matches_serial_run(tmp_path):
    root = Path(__file__).resolve().parents[1]
    db = tmp_path / "killed.sqlite"
    flags = ["--limit", "10", "--latency-ms", "10"]
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", "run", "smoke",
         "--db", str(db), *flags],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        cwd=root,
        env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    try:
        # Wait for at least two journaled modules, then kill -9.
        deadline = time.time() + 120
        while time.time() < deadline:
            done = 0
            if db.exists():
                try:
                    done = sqlite3.connect(db).execute(
                        "SELECT COUNT(*) FROM campaign_entries "
                        "WHERE status = 'done'"
                    ).fetchone()[0]
                except sqlite3.OperationalError:
                    done = 0  # schema not committed yet
            if done >= 2 or victim.poll() is not None:
                break
            time.sleep(0.02)
        else:
            pytest.fail("campaign never journaled progress")
    finally:
        victim.kill()  # SIGKILL
        victim.wait()

    resumed = _cli(tmp_path, "campaign", "resume", "smoke", "--db", str(db))
    assert resumed.returncode == 0, resumed.stderr
    reference = _cli(
        tmp_path, "campaign", "run", "smoke",
        "--db", str(tmp_path / "reference.sqlite"), *flags,
    )
    assert reference.returncode == 0, reference.stderr
    assert resumed.stdout == reference.stdout  # byte-identical report
    assert "status: complete" in resumed.stdout
