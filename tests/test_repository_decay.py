"""Tests for the repository generator and the decay model."""

import pytest

from repro.modules.catalog.decayed import DECAYED_PROVIDERS, build_decayed_modules
from repro.workflow.decay import (
    broken_workflows,
    restore_providers,
    shut_down_providers,
)
from repro.workflow.enactment import Enactor
from repro.workflow.repository import RepositoryBuilder, RepositoryConfig


@pytest.fixture(scope="module")
def small_world(ctx, catalog, pool):
    """A small repository with every category represented."""
    decayed = build_decayed_modules()
    config = RepositoryConfig(
        seed=7, n_healthy=30, n_equivalent_full=12, n_equivalent_partial=5,
        n_overlap_safe=13, n_unrepairable=20,
    )
    builder = RepositoryBuilder(ctx, catalog, decayed, pool, config)
    repository = builder.build()
    return decayed, repository


class TestRepositoryBuilder:
    def test_population_sizes(self, small_world):
        _decayed, repository = small_world
        assert len(repository.workflows) == 80
        assert len(repository.of_category("healthy")) == 30
        assert len(repository.of_category("overlap-safe")) == 13

    def test_workflow_ids_unique(self, small_world):
        _decayed, repository = small_world
        ids = [w.workflow_id for w in repository.workflows]
        assert len(set(ids)) == len(ids)

    def test_every_workflow_enacts_before_decay(
        self, ctx, catalog_by_id, pool, small_world
    ):
        decayed, repository = small_world
        modules = dict(catalog_by_id)
        modules.update({m.module_id: m for m in decayed})
        enactor = Enactor(ctx, modules, pool)
        for workflow in repository.workflows[:25]:
            assert enactor.try_enact(workflow).succeeded, workflow.workflow_id

    def test_healthy_workflows_use_only_catalog_modules(
        self, small_world, catalog_by_id
    ):
        _decayed, repository = small_world
        for workflow in repository.of_category("healthy"):
            assert all(m in catalog_by_id for m in workflow.module_ids())

    def test_equivalent_workflows_contain_a_twin(self, small_world):
        _decayed, repository = small_world
        for workflow in repository.of_category("equivalent-full"):
            assert any(m.endswith("_s") for m in workflow.module_ids())

    def test_partial_workflows_also_contain_an_orphan(self, small_world):
        _decayed, repository = small_world
        orphan_prefixes = ("old.legacy_stat_", "old.get_homologous",
                           "old.search_protein_top3", "old.identify_report",
                           "old.translate_six_frames")
        for workflow in repository.of_category("equivalent-partial"):
            assert any(
                m.startswith(orphan_prefixes) for m in workflow.module_ids()
            )

    def test_overlap_safe_workflows_feed_narrow_module_by_link(self, small_world):
        from repro.modules.catalog.decayed import CONTEXT_SAFE_OVERLAP_IDS

        _decayed, repository = small_world
        for workflow in repository.of_category("overlap-safe"):
            narrow_steps = [
                s.step_id for s in workflow.steps
                if s.module_id in CONTEXT_SAFE_OVERLAP_IDS
            ]
            assert narrow_steps
            for step_id in narrow_steps:
                assert workflow.incoming(step_id)


class TestDecay:
    def test_shut_down_marks_all_decayed(self):
        decayed = build_decayed_modules()
        gone = shut_down_providers(decayed, DECAYED_PROVIDERS)
        assert len(gone) == 72
        assert all(not m.available for m in decayed)

    def test_shut_down_is_idempotent(self):
        decayed = build_decayed_modules()
        shut_down_providers(decayed, DECAYED_PROVIDERS)
        assert shut_down_providers(decayed, DECAYED_PROVIDERS) == []

    def test_restore_reverses_shutdown(self):
        decayed = build_decayed_modules()
        shut_down_providers(decayed, DECAYED_PROVIDERS)
        restored = restore_providers(decayed, DECAYED_PROVIDERS)
        assert len(restored) == 72
        assert all(m.available for m in decayed)

    def test_unrelated_providers_untouched(self, catalog):
        gone = shut_down_providers(catalog, DECAYED_PROVIDERS)
        assert gone == []

    def test_broken_workflows_detection(self, small_world, catalog_by_id):
        decayed, repository = small_world
        modules = dict(catalog_by_id)
        modules.update({m.module_id: m for m in decayed})
        shut_down_providers(decayed, DECAYED_PROVIDERS)
        try:
            broken = broken_workflows(repository.workflows, modules)
            expected = (
                len(repository.workflows) - len(repository.of_category("healthy"))
            )
            assert len(broken) == expected
        finally:
            restore_providers(decayed, DECAYED_PROVIDERS)

    def test_workflow_with_unknown_module_counts_as_broken(self):
        from repro.workflow.model import Step, Workflow

        workflow = Workflow("w", "w", (Step("s", "gone.module"),))
        assert broken_workflows([workflow], {}) == [workflow]
