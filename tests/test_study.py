"""Tests for the simulated §5 understanding study."""

import pytest

from repro.core.generation import ExampleGenerator
from repro.study.study import run_study
from repro.study.users import DEFAULT_USERS, SimulatedUser, UserProfile


@pytest.fixture(scope="module")
def examples(ctx, pool, catalog):
    generator = ExampleGenerator(ctx, pool)
    return {m.module_id: generator.generate(m).examples for m in catalog}


@pytest.fixture(scope="module")
def result(catalog, examples):
    return run_study(catalog, examples)


class TestSimulatedUser:
    def test_familiarity_size_matches_profile(self, catalog):
        profile = UserProfile(name="u", seed=9, n_familiar=40)
        user = SimulatedUser(profile, catalog)
        assert sum(user.recognizes(m) for m in catalog) == 40

    def test_familiarity_is_seed_deterministic(self, catalog):
        profile = UserProfile(name="u", seed=9, n_familiar=40)
        a = SimulatedUser(profile, catalog)
        b = SimulatedUser(profile, catalog)
        assert [a.recognizes(m) for m in catalog] == [b.recognizes(m) for m in catalog]

    def test_different_seeds_differ(self, catalog):
        a = SimulatedUser(UserProfile("a", seed=1, n_familiar=40), catalog)
        b = SimulatedUser(UserProfile("b", seed=2, n_familiar=40), catalog)
        assert [a.recognizes(m) for m in catalog] != [b.recognizes(m) for m in catalog]

    def test_familiar_modules_are_popular_services(self, catalog):
        user = SimulatedUser(UserProfile("u", seed=3, n_familiar=47), catalog)
        from repro.modules.model import InterfaceKind

        for module in catalog:
            if user.recognizes(module):
                assert module.interface is not InterfaceKind.LOCAL_PROGRAM
                assert module.legible

    def test_no_examples_no_phase2_gain(self, catalog):
        user = SimulatedUser(UserProfile("u", seed=3, flip_rate=0.0), catalog)
        for module in catalog:
            if not user.recognizes(module):
                assert not user.identifies_with_examples(module, 0)

    def test_flips_are_deterministic(self, catalog):
        profile = UserProfile(name="u", seed=4, flip_rate=0.5)
        a = SimulatedUser(profile, catalog)
        b = SimulatedUser(profile, catalog)
        assert [
            a.identifies_with_examples(m, 1) for m in catalog
        ] == [b.identifies_with_examples(m, 1) for m in catalog]


class TestStudy:
    def test_phase2_is_monotone_over_phase1(self, result):
        for user in result.users:
            assert user.without_examples <= user.with_examples

    def test_user1_matches_paper_counts(self, result):
        user1 = result.users[0]
        assert user1.n_without == 47
        assert user1.n_with == 169

    def test_user1_category_breakdown_matches_paper(self, result):
        from repro.modules.model import Category

        identified = {
            category.value: counts[0]
            for category, counts in result.users[0].by_category.items()
        }
        assert identified == {
            "format transformation": 53,
            "data retrieval": 43,
            "mapping identifiers": 62,
            "filtering": 5,
            "data analysis": 6,
        }

    def test_other_users_give_similar_figures(self, result):
        for user in result.users[1:]:
            assert abs(user.n_with - 169) <= 5
            assert abs(user.n_without - 47) <= 5

    def test_transformation_and_mapping_always_identified(self, result):
        from repro.modules.model import Category

        for user in result.users:
            assert user.by_category[Category.FORMAT_TRANSFORMATION] == (53, 53)
            assert user.by_category[Category.MAPPING_IDENTIFIERS] == (62, 62)

    def test_study_is_deterministic(self, catalog, examples):
        a = run_study(catalog, examples)
        b = run_study(catalog, examples)
        assert [u.n_with for u in a.users] == [u.n_with for u in b.users]
        assert [u.with_examples for u in a.users] == [u.with_examples for u in b.users]

    def test_mean_fraction_near_paper(self, result):
        assert 0.6 <= result.mean_with_fraction() <= 0.75

    def test_empty_study(self):
        result = run_study([], {}, profiles=DEFAULT_USERS)
        assert result.mean_with_fraction() == 0.0
