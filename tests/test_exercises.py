"""Tests for the §5 questionnaire and response-sheet artifacts."""

import pytest

from repro.study.exercises import (
    build_card,
    build_questionnaire,
    record_responses,
    render_response_sheet,
)
from repro.study.users import DEFAULT_USERS


@pytest.fixture(scope="module")
def examples(setup):
    return {mid: r.examples for mid, r in setup.reports.items()}


class TestCards:
    def test_phase1_card_hides_examples(self, setup, examples, catalog_by_id):
        module = catalog_by_id["ret.get_uniprot_record"]
        card = build_card(module, examples[module.module_id])
        assert "Data example" not in card.phase1_text
        assert "annotated UniProtAccession" in card.phase1_text
        assert module.name in card.phase1_text

    def test_phase2_card_appends_examples(self, setup, examples, catalog_by_id):
        module = catalog_by_id["ret.get_uniprot_record"]
        card = build_card(module, examples[module.module_id])
        assert card.phase2_text.startswith(card.phase1_text)
        assert "Data example for ret.get_uniprot_record" in card.phase2_text

    def test_long_example_lists_truncated(self, setup, examples, catalog_by_id):
        module = catalog_by_id["map.link"]
        card = build_card(module, examples[module.module_id], max_examples=3)
        assert "17 more examples omitted" in card.phase2_text

    def test_questionnaire_covers_catalog(self, setup, examples):
        cards = build_questionnaire(setup.catalog, examples)
        assert len(cards) == 252
        assert cards[0].module_id == setup.catalog[0].module_id


class TestResponseSheets:
    def test_responses_match_the_study_counts(self, setup, examples):
        profile = DEFAULT_USERS[0]
        rows = record_responses(profile, setup.catalog, examples)
        assert sum(r.phase1_correct for r in rows) == 47
        assert sum(r.phase2_correct for r in rows) == 169

    def test_monotone_per_row(self, setup, examples):
        for profile in DEFAULT_USERS:
            for row in record_responses(profile, setup.catalog, examples):
                assert not (row.phase1_correct and not row.phase2_correct)

    def test_sheet_rendering(self, setup, examples):
        profile = DEFAULT_USERS[0]
        rows = record_responses(profile, setup.catalog, examples)
        sheet = render_response_sheet(profile, rows)
        assert sheet.startswith("# Response sheet: user1")
        assert "identified without examples: 47/252" in sheet
        assert "identified with examples:    169/252" in sheet
        assert sheet.count("\n") == 252 + 3
