"""Behavioral tests of the data-analysis family."""

import pytest

from repro.biodb.sequences import gc_content, molecular_weight, peptide_masses
from repro.modules.errors import InvalidInputError
from repro.modules.interfaces import invoke_via_interface
from repro.values import FLOAT, STRING, TypedValue, list_of


def _run(ctx, module, **bindings):
    return invoke_via_interface(module, ctx, bindings)


class TestFigure1Modules:
    def test_identify_finds_the_digested_protein(self, ctx, catalog_by_id, universe):
        protein = universe.proteins[12]
        masses = TypedValue(
            tuple(peptide_masses(protein.sequence)), list_of(FLOAT), "PeptideMassList"
        )
        out = _run(
            ctx, catalog_by_id["an.identify"],
            masses=masses, tolerance=TypedValue(0.1, FLOAT, "ErrorTolerance"),
        )
        assert out["accession"].payload == protein.uniprot
        assert out["accession"].concept == "UniProtAccession"

    def test_identify_rejects_empty_mass_list(self, ctx, catalog_by_id):
        with pytest.raises(InvalidInputError):
            _run(
                ctx, catalog_by_id["an.identify"],
                masses=TypedValue((), list_of(FLOAT), "PeptideMassList"),
                tolerance=TypedValue(0.1, FLOAT, "ErrorTolerance"),
            )

    def test_search_simple_ranks_query_protein_first(
        self, ctx, catalog_by_id, universe
    ):
        from repro.biodb import formats, records

        protein = universe.proteins[3]
        record = formats.render_uniprot_flat(
            records.protein_fields(universe, protein)
        )
        out = _run(
            ctx, catalog_by_id["an.search_simple"],
            record=TypedValue(record, catalog_by_id["an.search_simple"].inputs[0].structural),
            program=TypedValue("blastp", STRING),
            database=TypedValue("uniprot", STRING),
        )
        first_hit = [
            line for line in out["report"].payload.splitlines()
            if not line.startswith("#")
        ][0]
        assert first_hit.split("\t")[0] == protein.uniprot  # self-hit on top


class TestSequenceOperations:
    def test_translate_then_digest_pipeline(self, ctx, catalog_by_id, universe):
        dna = TypedValue(universe.genes[7].dna_sequence, STRING)
        protein = _run(ctx, catalog_by_id["an.translate_dna"], sequence=dna)
        masses = _run(
            ctx, catalog_by_id["an.digest_protein"],
            sequence=protein["result"],
        )
        assert masses["masses"].payload
        assert all(m > 0 for m in masses["masses"].payload)

    def test_reverse_complement_involutive_through_module(
        self, ctx, catalog_by_id, universe
    ):
        module = catalog_by_id["an.reverse_complement"]
        dna = TypedValue(universe.genes[3].dna_sequence, STRING)
        once = _run(ctx, module, sequence=dna)
        twice = _run(ctx, module, sequence=once["result"])
        assert twice["result"].payload == dna.payload

    def test_translate_rejects_protein_input(self, ctx, catalog_by_id, universe):
        with pytest.raises(InvalidInputError):
            _run(
                ctx, catalog_by_id["an.translate_dna"],
                sequence=TypedValue(universe.proteins[0].sequence, STRING),
            )

    def test_find_orfs_returns_protein_frames(self, ctx, catalog_by_id, universe):
        out = _run(
            ctx, catalog_by_id["an.find_orfs"],
            sequence=TypedValue(universe.genes[1].dna_sequence, STRING),
        )
        assert len(out["orfs"].payload) == 2


class TestAlignmentsAndTrees:
    def test_pairwise_alignment_symmetrical_score(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["an.smith_waterman"]
        a = TypedValue(universe.proteins[0].sequence, STRING)
        b = TypedValue(universe.proteins[1].sequence, STRING)
        ab = _run(ctx, module, first=a, second=b)
        ba = _run(ctx, module, first=b, second=a)
        score_ab = [l for l in ab["alignment"].payload.splitlines() if "Score" in l]
        score_ba = [l for l in ba["alignment"].payload.splitlines() if "Score" in l]
        assert score_ab == score_ba

    def test_multiple_alignment_requires_two_sequences(self, ctx, catalog_by_id):
        module = catalog_by_id["an.clustal"]
        with pytest.raises(InvalidInputError):
            _run(ctx, module,
                 sequences=TypedValue(("MKWL",), list_of(STRING), "ProteinSequence"))

    def test_tree_from_alignment_has_all_leaves(self, ctx, catalog_by_id, universe):
        sequences = TypedValue(
            tuple(p.sequence for p in universe.proteins[:3]),
            list_of(STRING), "ProteinSequence",
        )
        alignment = _run(ctx, catalog_by_id["an.clustal"], sequences=sequences)
        tree = _run(
            ctx, catalog_by_id["an.build_phylo_tree"],
            alignment=alignment["alignment"],
        )
        for i in range(3):
            assert f"seq{i + 1}" in tree["tree"].payload


class TestOverPartitionedAnalyses:
    def test_molecular_weight_two_formulas(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["an.molecular_weight"]
        dna = universe.genes[0].dna_sequence
        protein = universe.proteins[0].sequence
        out_dna = _run(ctx, module, sequence=TypedValue(dna, STRING))
        out_protein = _run(ctx, module, sequence=TypedValue(protein, STRING))
        assert out_dna["value"].payload == pytest.approx(len(dna) * 330.0)
        assert out_protein["value"].payload == pytest.approx(
            round(molecular_weight(protein), 4)
        )

    def test_gc_content_uniform_over_kinds(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["an.gc_content"]
        dna = universe.genes[0].dna_sequence
        out = _run(ctx, module, sequence=TypedValue(dna, STRING))
        assert float(out["result"].payload) == pytest.approx(gc_content(dna), abs=1e-4)
        assert module.behavior.n_classes == 1

    def test_sequence_length_counts_any_kind(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["an.sequence_length"]
        for payload in (universe.genes[0].dna_sequence, universe.proteins[0].sequence):
            out = _run(ctx, module, sequence=TypedValue(payload, STRING))
            assert int(out["result"].payload) == len(payload)

    def test_codon_usage_accepts_both_organism_forms(
        self, ctx, catalog_by_id, universe
    ):
        module = catalog_by_id["an.codon_usage_bias"]
        dna = TypedValue(universe.genes[0].dna_sequence, STRING)
        via_taxon = _run(
            ctx, module, sequence=dna,
            organism=TypedValue(universe.taxon_for_organism(1), STRING),
        )
        via_name = _run(
            ctx, module, sequence=dna,
            organism=TypedValue("Mus musculus", STRING),
        )
        assert via_taxon["score"].payload == via_name["score"].payload


class TestHiddenAnalysisClasses:
    @pytest.mark.parametrize(
        "payload,expected",
        [
            ("ACG", "degenerate-input"),
            ("A" * 2050, "oversized-input"),
            ("ACGT-ACGT", "gapped-input"),
        ],
    )
    def test_profiled_module_edge_classes(self, ctx, catalog_by_id, payload, expected):
        module = catalog_by_id["an.scan_sequence_motifs"]
        label = module.classify(ctx, {"sequence": TypedValue(payload, STRING)})
        assert label == expected

    def test_profiled_module_visible_classes(self, ctx, catalog_by_id, universe):
        module = catalog_by_id["an.scan_sequence_motifs"]
        label = module.classify(
            ctx, {"sequence": TypedValue(universe.genes[0].dna_sequence, STRING)}
        )
        assert label == "profile-DNASequence"
        assert module.behavior.n_classes == 8


class TestTextMining:
    def test_get_concept_finds_mentioned_pathways(self, ctx, catalog_by_id, universe):
        publication = universe.publications[1]
        out = _run(
            ctx, catalog_by_id["an.get_concept"],
            text=TypedValue(publication.abstract,
                            catalog_by_id["an.get_concept"].inputs[0].structural),
        )
        for ordinal in publication.pathway_ordinals:
            assert universe.pathways[ordinal].kegg_id in out["concepts"].payload

    def test_mine_protein_mentions(self, ctx, catalog_by_id, universe):
        publication = universe.publications[2]
        out = _run(
            ctx, catalog_by_id["an.mine_protein_mentions"],
            text=TypedValue(
                publication.abstract,
                catalog_by_id["an.mine_protein_mentions"].inputs[0].structural,
            ),
        )
        mentioned = {universe.proteins[o].uniprot for o in publication.protein_ordinals}
        assert set(out["proteins"].payload) == mentioned

    def test_text_without_concepts_rejected(self, ctx, catalog_by_id):
        with pytest.raises(InvalidInputError):
            _run(
                ctx, catalog_by_id["an.get_concept"],
                text=TypedValue(
                    "plain text mentioning no pathway entities whatsoever",
                    catalog_by_id["an.get_concept"].inputs[0].structural,
                ),
            )


class TestExpressionAnalyses:
    def test_normalize_then_differential(self, ctx, catalog_by_id, factory):
        microarray = factory.instances("MicroarrayData")[0]
        normalized = _run(
            ctx, catalog_by_id["an.normalize_microarray"], table=microarray
        )
        report = _run(
            ctx, catalog_by_id["an.differential_expression"],
            table=normalized["result"],
            threshold=TypedValue(0.1, FLOAT, "ScoreThreshold"),
        )
        assert report["result"].payload.startswith("gene\tdelta")

    def test_cluster_expression_labels_all_genes(self, ctx, catalog_by_id, factory):
        matrix = factory.instances("ExpressionMatrix")[0]
        out = _run(ctx, catalog_by_id["an.cluster_expression"], table=matrix)
        lines = out["result"].payload.strip().splitlines()
        assert len(lines) == 1 + matrix.payload.strip().count("\n")  # header + genes
