"""Tests of the durable serving state store: the shared registration
set, memoized-report round-trips, wall-clock token buckets that survive
process restarts byte-for-byte, and the replica heartbeat/event rows the
``repro-cli serve fleet`` post-mortem renders."""

from __future__ import annotations

import threading

import pytest

from repro.serve import ServeStateStore, has_serve_state


class WallClock:
    """A hand-advanced wall clock (the store must never need time.time)."""

    def __init__(self, now=1_000_000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def db(tmp_path):
    return str(tmp_path / "serve-state.db")


@pytest.fixture
def clock():
    return WallClock()


@pytest.fixture
def store(db, clock):
    store = ServeStateStore(db, wall_clock=clock)
    yield store
    store.close()


class TestRegistrations:
    def test_first_registration_wins_the_insert(self, store):
        assert store.register_module("xf.a") is True
        assert store.register_module("xf.a") is False
        assert store.has_module("xf.a")
        assert not store.has_module("xf.b")
        assert store.module_ids() == ["xf.a"]

    def test_two_handles_share_one_file(self, db, clock, store):
        other = ServeStateStore(db, wall_clock=clock)
        try:
            store.register_module("xf.a")
            assert other.has_module("xf.a")
            assert other.register_module("xf.a") is False
        finally:
            other.close()


class TestReports:
    def test_round_trip_and_idempotent_upsert(self, store):
        report = {"module_id": "xf.a", "examples": [{"x": 1}], "meta": {"n": 3}}
        store.store_report("xf.a", report)
        store.store_report("xf.a", report)  # every replica writes the same
        assert store.load_report("xf.a") == report
        assert store.load_report("xf.missing") is None
        assert store.report_count() == 1


class TestTenantBuckets:
    def test_burst_then_empty_then_refill(self, store, clock):
        # A fresh tenant gets the full burst...
        for _ in range(3):
            allowed, retry = store.charge_tenant("t", rate=1.0, burst=3.0)
            assert allowed and retry == 0.0
        # ...then is limited with a refill-accurate hint...
        allowed, retry = store.charge_tenant("t", rate=1.0, burst=3.0)
        assert not allowed
        assert retry == pytest.approx(1.0)
        # ...and the wall clock refills it.
        clock.advance(2.0)
        allowed, _ = store.charge_tenant("t", rate=1.0, burst=3.0)
        assert allowed

    def test_accounting_survives_a_full_restart_byte_identically(
        self, db, clock
    ):
        first = ServeStateStore(db, wall_clock=clock)
        for _ in range(2):
            first.charge_tenant("t", rate=1.0, burst=5.0)
        before = first.tenant_snapshot()
        first.close()
        # A brand-new handle — the restarted fleet — resumes the exact
        # journaled balance, not a fresh bucket.
        second = ServeStateStore(db, wall_clock=clock)
        try:
            assert second.tenant_snapshot() == before
            allowed, _ = second.charge_tenant("t", rate=1.0, burst=5.0)
            assert allowed
            assert second.tenant_snapshot()["t"]["tokens"] == pytest.approx(2.0)
            assert second.tenant_snapshot()["t"]["allowed"] == 3
        finally:
            second.close()

    def test_bespoke_budget_outlives_the_configuring_process(self, db, clock):
        first = ServeStateStore(db, wall_clock=clock)
        first.configure_tenant("vip", rate=100.0, burst=2.0)
        first.close()
        second = ServeStateStore(db, wall_clock=clock)
        try:
            # The row's own rate/burst win over the caller's defaults.
            second.charge_tenant("vip", rate=1.0, burst=50.0)
            second.charge_tenant("vip", rate=1.0, burst=50.0)
            allowed, retry = second.charge_tenant("vip", rate=1.0, burst=50.0)
            assert not allowed
            assert retry == pytest.approx(1.0 / 100.0)
        finally:
            second.close()

    def test_configure_validation(self, store):
        with pytest.raises(ValueError, match="rate"):
            store.configure_tenant("t", rate=0.0, burst=2.0)
        with pytest.raises(ValueError, match="burst"):
            store.configure_tenant("t", rate=1.0, burst=0.5)

    def test_clock_stepping_backwards_never_mints_tokens(self, store, clock):
        store.charge_tenant("t", rate=1.0, burst=2.0)
        clock.advance(-50.0)  # NTP step / VM resume
        store.charge_tenant("t", rate=1.0, burst=2.0)
        allowed, _ = store.charge_tenant("t", rate=1.0, burst=2.0)
        assert not allowed  # burst spent; negative elapsed minted nothing

    def test_concurrent_handles_never_double_spend(self, db):
        # 4 threads x 25 charges against burst 50, zero refill: exactly
        # 50 can be admitted in total.  BEGIN IMMEDIATE serializes the
        # read-modify-write, so this holds regardless of interleaving.
        stores = [ServeStateStore(db) for _ in range(4)]
        admitted = []
        lock = threading.Lock()

        def worker(handle):
            local = 0
            for _ in range(25):
                allowed, _ = handle.charge_tenant("t", rate=1e-9, burst=50.0)
                local += allowed
            with lock:
                admitted.append(local)

        threads = [
            threading.Thread(target=worker, args=(handle,))
            for handle in stores
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for handle in stores:
            handle.close()
        assert sum(admitted) == 50


class TestReplicaRows:
    def test_rows_liveness_and_restart_counts(self, store, clock):
        store.record_replica(
            0, pid=100, attempt=1, phase="running",
            requests_total=7, started_wall=clock(),
        )
        store.record_replica(
            1, pid=101, attempt=2, phase="running",
            requests_total=3, started_wall=clock(),
        )
        store.record_event(1, "crash", "exit code 137")
        store.record_event(1, "restart", "pid 101 attempt 2")
        clock.advance(5.0)
        rows = store.replica_rows(now=clock(), heartbeat_timeout=10.0)
        assert [row["replica"] for row in rows] == [0, 1]
        assert all(row["alive"] for row in rows)
        assert rows[0]["restarts"] == 0
        assert rows[1]["restarts"] == 1
        assert rows[0]["heartbeat_age"] == pytest.approx(5.0)
        # Past the timeout the same rows age out of liveness — that is
        # how a dead fleet's post-mortem reads 0 alive with no process
        # checks at all.
        clock.advance(10.0)
        rows = store.replica_rows(now=clock(), heartbeat_timeout=10.0)
        assert not any(row["alive"] for row in rows)

    def test_non_running_phase_is_never_alive(self, store, clock):
        store.record_replica(
            0, pid=100, attempt=1, phase="drained",
            requests_total=0, started_wall=clock(),
        )
        (row,) = store.replica_rows(now=clock(), heartbeat_timeout=10.0)
        assert row["alive"] is False

    def test_events_keep_recording_order(self, store):
        store.record_event(-1, "fleet-start", "2 replicas")
        store.record_event(0, "spawn", "pid 1")
        store.record_event(0, "crash")
        events = store.events()
        assert [event["kind"] for event in events] == [
            "fleet-start", "spawn", "crash",
        ]
        assert events[0]["replica"] == -1
        assert events[2]["detail"] == ""


class TestHasServeState:
    def test_missing_file_and_foreign_sqlite(self, tmp_path, db):
        assert not has_serve_state(str(tmp_path / "nope.db"))
        assert not has_serve_state("")
        # A journal without fleet tables (or with empty ones) is not
        # fleet state — `repro-cli top` must not grow a replicas panel
        # for a plain single-process journal.
        store = ServeStateStore(db)
        store.close()
        assert not has_serve_state(db)

    def test_true_once_a_replica_row_exists(self, db):
        store = ServeStateStore(db)
        store.record_replica(
            0, pid=1, attempt=1, phase="running",
            requests_total=0, started_wall=0.0,
        )
        store.close()
        assert has_serve_state(db)
