"""The live dashboard: pure frame rendering, journal-backed polling,
snapshot-diff redraw suppression, and terminal-state exit."""

from __future__ import annotations

import io

import pytest

from repro.campaign import CampaignConfig, CampaignJournal, CampaignRunner
from repro.campaign.journal import CampaignMeta
from repro.obs.dashboard import (
    MIN_WIDTH,
    Dashboard,
    _progress_bar,
    ansi_disabled,
    measure_width,
    render_dashboard,
)
from tests.test_obs_timeseries import make_sample, provider_entry


def meta(status="running", modules=("m1", "m2", "m3", "m4")):
    return CampaignMeta(
        campaign_id="c",
        seed=2014,
        status=status,
        module_ids=list(modules),
        config={},
    )


FIRING_EVENT = {
    "slo": "availability",
    "kind": "availability",
    "subject": "EBI",
    "state": "firing",
    "t_ms": 50.0,
    "detail": "burn fast=100.0",
}


# ----------------------------------------------------------------------
class TestProgressBar:
    def test_empty_plan(self):
        assert _progress_bar(0, 0, 0, 10) == "[" + " " * 10 + "]"

    def test_fill_and_skip_partition(self):
        bar = _progress_bar(2, 1, 4, 8)
        assert bar.count("#") == 4
        assert bar.count("-") == 2
        assert bar.count(".") == 2


class TestRenderDashboard:
    def test_frame_without_samples(self):
        frame = render_dashboard(meta(), {"n_done": 0, "n_skipped": 0}, [], [])
        assert "campaign c" in frame and "status running" in frame
        assert "0/4 done" in frame
        assert "none journaled yet" in frame
        assert "no results journaled yet" in frame
        assert "0 firing / 0 tracked" in frame

    def test_no_results_line_disappears_once_rows_land(self):
        frame = render_dashboard(meta(), {"n_done": 1, "n_skipped": 0}, [], [])
        assert "no results journaled yet" not in frame

    def test_worker_rows_render_fleet_summary(self):
        workers = [
            {"shard": 0, "worker": 0, "phase": "running", "n_done": 1,
             "n_skipped": 0, "n_planned": 2, "invocations": 3, "restarts": 0,
             "heartbeat_age": 0.4, "alive": True},
            {"shard": 1, "worker": 3, "phase": "degraded", "n_done": 0,
             "n_skipped": 2, "n_planned": 2, "invocations": 1, "restarts": 2,
             "heartbeat_age": None, "alive": False},
        ]
        frame = render_dashboard(
            meta(), {"n_done": 1, "n_skipped": 0}, [], [], workers=workers
        )
        assert "workers    1/2 alive, 2 restarts, 1 degraded" in frame
        assert "shard 0" in frame and "hb 0.4s" in frame
        assert "worker 3" in frame and "0/2+2s" in frame and "hb -" in frame

    def test_replica_rows_render_serving_fleet_panel(self):
        replicas = [
            {"replica": 0, "pid": 41, "phase": "running", "attempt": 1,
             "requests_total": 120, "restarts": 0, "heartbeat_age": 0.3,
             "alive": True},
            {"replica": 1, "pid": 57, "phase": "drained", "attempt": 3,
             "requests_total": 9, "restarts": 2, "heartbeat_age": 42.0,
             "alive": False},
        ]
        frame = render_dashboard(
            meta(), {"n_done": 0, "n_skipped": 0}, [], [], replicas=replicas
        )
        assert "replicas   1/2 alive, 2 restarts" in frame
        assert "replica 0" in frame and "reqs 120" in frame
        assert "replica 1" in frame and "drained" in frame
        # No replicas given — a plain campaign journal — no panel.
        frame = render_dashboard(meta(), {"n_done": 0, "n_skipped": 0}, [], [])
        assert "replicas " not in frame

    def test_frame_with_samples_rates_and_alerts(self):
        first = make_sample(
            seq=0,
            t_ms=1000.0,
            counters={"calls": 10, "ok": 9, "cache_hits": 1, "cache_misses": 9},
            progress={"n_planned": 4, "n_done": 1, "n_skipped": 0, "n_pending": 3},
        )
        second = make_sample(
            seq=1,
            t_ms=3000.0,
            counters={"calls": 30, "ok": 27, "cache_hits": 6, "cache_misses": 24},
            latency={"count": 30, "sum_ms": 90.0, "p95_ms": 12.0, "max_ms": 40.0,
                     "cumulative_buckets": [["250", 30], ["+Inf", 30]]},
            providers={"EBI": provider_entry(20, 10)},
            progress={"n_planned": 4, "n_done": 3, "n_skipped": 0, "n_pending": 1},
        )
        second["breaker"] = {
            "EBI": {"state": "open"},
            "NCBI": {"state": "closed"},
        }
        second["health"]["n_modules"] = 5
        frame = render_dashboard(
            meta(), {"n_done": 3, "n_skipped": 0}, [first, second], [FIRING_EVENT]
        )
        assert "2 journaled" in frame
        assert "10.0 calls/s" in frame and "1.00 modules/s" in frame
        assert "cache hit 20%" in frame
        assert "p95 12ms" in frame
        assert "breakers   EBI open" in frame
        assert "! EBI" in frame and "availability 50%" in frame
        assert "1 firing / 1 tracked" in frame
        assert "FIRING   availability" in frame

    def test_resolved_alerts_counted_but_not_listed(self):
        resolved = dict(FIRING_EVENT, state="resolved", t_ms=99.0)
        frame = render_dashboard(meta(), {}, [], [FIRING_EVENT, resolved])
        assert "0 firing / 1 tracked" in frame
        assert "FIRING" not in frame.split("alerts")[1]

    def test_all_closed_breakers(self):
        sample = make_sample()
        sample["breaker"] = {"EBI": {"state": "closed"}}
        frame = render_dashboard(meta(), {}, [sample], [])
        assert "breakers   all closed" in frame


# ----------------------------------------------------------------------
@pytest.fixture()
def finished_journal(ctx, catalog, pool, tmp_path):
    journal = CampaignJournal(tmp_path / "dash.sqlite")
    config = CampaignConfig(
        limit=2, retry_base_delay=0.0, sample_interval=0.0001
    )
    CampaignRunner(ctx, catalog, pool, journal, config).run("c")
    yield journal
    journal.close()


class TestDashboard:
    def test_rejects_degenerate_interval(self, finished_journal):
        with pytest.raises(ValueError):
            Dashboard(finished_journal, "c", interval=0.0)

    def test_render_once_writes_one_plain_frame(self, finished_journal):
        stream = io.StringIO()
        dashboard = Dashboard(finished_journal, "c", stream=stream)
        frame = dashboard.render_once()
        assert "campaign c" in frame
        assert "status complete" in frame
        assert "\x1b" not in stream.getvalue()
        assert stream.getvalue() == frame + "\n"
        assert dashboard.redraws == 1

    def test_run_diffs_identical_frames(self, finished_journal):
        stream = io.StringIO()
        sleeps = []
        dashboard = Dashboard(
            finished_journal, "c", stream=stream,
            interval=0.01, sleeper=sleeps.append,
        )
        dashboard.run(iterations=3)
        # A static journal draws once; later identical ticks are skipped.
        assert dashboard.redraws == 1
        assert stream.getvalue().count("repro top") == 1

    def test_run_exits_when_campaign_leaves_running_state(self, finished_journal):
        stream = io.StringIO()
        sleeps = []
        dashboard = Dashboard(
            finished_journal, "c", stream=stream,
            interval=0.01, sleeper=sleeps.append,
        )
        dashboard.run()  # unbounded: must exit because status is terminal
        assert dashboard.redraws == 1
        assert sleeps == []

    def test_run_redraws_with_cursor_escapes_on_change(self, finished_journal):
        stream = io.StringIO()

        class FlippingJournal:
            """Delegates to the real journal but flips the status so the
            second tick renders a different frame."""

            def __init__(self, inner):
                self.inner = inner
                self.ticks = 0

            def meta(self, campaign_id):
                row = self.inner.meta(campaign_id)
                self.ticks += 1
                status = "running" if self.ticks <= 2 else row.status
                return CampaignMeta(
                    campaign_id=row.campaign_id,
                    seed=row.seed,
                    status=status,
                    module_ids=row.module_ids,
                    config=row.config,
                )

            def __getattr__(self, name):
                return getattr(self.inner, name)

        dashboard = Dashboard(
            FlippingJournal(finished_journal), "c", stream=stream,
            interval=0.01, sleeper=lambda _s: None,
        )
        dashboard.run(iterations=2)
        assert dashboard.redraws == 2
        assert "\x1b[" in stream.getvalue()


# ----------------------------------------------------------------------
class _FakeTTY(io.StringIO):
    def isatty(self):
        return True


class TestDumbTerminal:
    """The --no-color / NO_COLOR / TERM=dumb path: append-only frames,
    no cursor escapes, width re-measured on every redraw."""

    def test_explicit_flag_wins_over_environment(self):
        assert ansi_disabled(True, {}) is True
        assert ansi_disabled(False, {"NO_COLOR": "1", "TERM": "dumb"}) is False

    def test_no_color_convention(self):
        assert ansi_disabled(None, {"NO_COLOR": "1"}) is True
        # An *empty* NO_COLOR does not disable (the convention is
        # "present and non-empty").
        assert ansi_disabled(None, {"NO_COLOR": ""}) is False

    def test_dumb_terminal_disables_escapes(self):
        assert ansi_disabled(None, {"TERM": "dumb"}) is True
        assert ansi_disabled(None, {"TERM": "xterm-256color"}) is False

    def test_measure_width_falls_back_for_pipes(self):
        assert measure_width(io.StringIO(), fallback=97) == 97

    def test_measure_width_tolerates_widthless_streams(self):
        class NoIsatty:
            pass

        assert measure_width(NoIsatty(), fallback=80) == 80

    def test_width_is_remeasured_per_call(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "123")
        assert measure_width(_FakeTTY()) == 123
        # A mid-session resize is picked up by the very next call.
        monkeypatch.setenv("COLUMNS", "55")
        assert measure_width(_FakeTTY()) == 55

    def test_width_never_collapses_below_the_floor(self, monkeypatch):
        monkeypatch.setenv("COLUMNS", "10")
        assert measure_width(_FakeTTY()) == MIN_WIDTH

    def test_no_color_run_appends_frames_without_escapes(
        self, finished_journal
    ):
        stream = io.StringIO()

        class FlippingJournal:
            def __init__(self, inner):
                self.inner = inner
                self.ticks = 0

            def meta(self, campaign_id):
                row = self.inner.meta(campaign_id)
                self.ticks += 1
                status = "running" if self.ticks <= 2 else row.status
                return CampaignMeta(
                    campaign_id=row.campaign_id,
                    seed=row.seed,
                    status=status,
                    module_ids=row.module_ids,
                    config=row.config,
                )

            def __getattr__(self, name):
                return getattr(self.inner, name)

        dashboard = Dashboard(
            FlippingJournal(finished_journal), "c", stream=stream,
            interval=0.01, sleeper=lambda _s: None, no_color=True,
        )
        dashboard.run(iterations=2)
        out = stream.getvalue()
        assert dashboard.redraws == 2
        assert "\x1b" not in out
        # Frames are separated by a blank line, not cursor movement.
        assert "\n\n" in out
