"""Tests for the canonical record field builders."""

from repro.biodb import records
from repro.biodb.accessions import species_name


class TestProteinFields:
    def test_core_fields(self, universe):
        protein = universe.proteins[13]
        fields = records.protein_fields(universe, protein)
        assert fields["accession"] == protein.uniprot
        assert fields["sequence"] == protein.sequence
        assert fields["organism"] == species_name(protein.organism_ordinal)

    def test_xrefs_include_gene_and_go(self, universe):
        protein = universe.proteins[13]
        fields = records.protein_fields(universe, protein)
        gene = universe.gene_for_protein(protein)
        assert f"KEGG; {gene.kegg_id}" in fields["xrefs"]
        assert f"EMBL; {gene.embl}" in fields["xrefs"]
        for ordinal in protein.go_term_ordinals:
            assert universe.go_terms[ordinal].go_id in fields["xrefs"]

    def test_pdb_xref_only_when_structure_exists(self, universe):
        structured = universe.proteins[0]  # has a structure
        unstructured = universe.proteins[1]  # does not
        assert "PDB;" in records.protein_fields(universe, structured)["xrefs"]
        assert "PDB;" not in records.protein_fields(universe, unstructured)["xrefs"]

    def test_entry_name_shape(self, universe):
        fields = records.protein_fields(universe, universe.proteins[0])
        assert "_" in fields["entry_name"]
        assert fields["entry_name"].isupper()


class TestOtherBuilders:
    def test_gene_fields_describe_the_protein(self, universe):
        gene = universe.genes[14]
        fields = records.gene_fields(universe, gene)
        assert universe.protein_for_gene(gene).name in fields["description"]
        assert fields["sequence"] == gene.dna_sequence

    def test_kegg_gene_fields_list_pathways(self, universe):
        gene = universe.genes[14]
        fields = records.kegg_gene_fields(universe, gene)
        for ordinal in gene.pathway_ordinals:
            assert universe.pathways[ordinal].kegg_id in fields["pathways"]

    def test_pathway_fields_list_members(self, universe):
        pathway = universe.pathways[5]
        fields = records.pathway_fields(universe, pathway)
        for ordinal in pathway.gene_ordinals:
            assert universe.genes[ordinal].kegg_id in fields["genes"]
        for ordinal in pathway.compound_ordinals:
            assert universe.compounds[ordinal].kegg_id in fields["compounds"]

    def test_enzyme_fields(self, universe):
        enzyme = universe.enzymes[3]
        fields = records.enzyme_fields(universe, enzyme)
        assert fields["accession"] == enzyme.ec_number
        assert fields["genes"]

    def test_compound_fields_format_mass(self, universe):
        compound = universe.compounds[7]
        fields = records.compound_fields(universe, compound)
        assert fields["mass"] == f"{compound.mass:.2f}"
        assert fields["formula"] == compound.formula

    def test_structure_fields_embed_protein_sequence(self, universe):
        structure = universe.structures[3]
        fields = records.structure_fields(universe, structure)
        assert fields["sequence"] == universe.proteins[
            structure.protein_ordinal
        ].sequence

    def test_ligand_fields_reference_compound(self, universe):
        ligand = universe.ligands[2]
        fields = records.ligand_fields(universe, ligand)
        assert fields["compounds"] == universe.compounds[
            ligand.compound_ordinal
        ].kegg_id

    def test_go_term_fields(self, universe):
        term = universe.go_terms[5]
        fields = records.go_term_fields(universe, term)
        assert fields == {
            "accession": term.go_id,
            "name": term.name,
            "namespace": term.namespace,
        }

    def test_publication_fields(self, universe):
        publication = universe.publications[5]
        fields = records.publication_fields(universe, publication)
        assert fields["accession"] == publication.pubmed_id
        assert fields["doi"] == publication.doi
        assert fields["abstract"] == publication.abstract

    def test_glycan_fields(self, universe):
        glycan = universe.glycans[3]
        fields = records.glycan_fields(universe, glycan)
        assert fields["composition"] == glycan.composition
