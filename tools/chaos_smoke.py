#!/usr/bin/env python
"""CI smoke for the sharded campaign (the ``chaos-matrix`` job).

The acceptance scenario of the crash-tolerant sharding work, end to end
at the CLI surface:

1. Start ``repro-cli campaign run --workers 4 --chaos-kill-rate R`` —
   every first-attempt worker plays Russian roulette on each
   invocation, so some (usually all) get SIGKILLed mid-shard and the
   supervisor must restart them.
2. While it runs, SIGKILL the **supervisor process itself** as soon as
   the shard journals show real progress — the worst crash the design
   promises to survive.
3. ``repro-cli campaign resume`` from whatever subset of journals the
   massacre left behind.
4. Run the identical campaign serially (workers=1, no chaos) in a
   fresh journal and demand the resumed report is **byte-identical**
   (same rendered bytes, same content digest line).
5. Assert the post-mortem surfaces work: ``campaign workers`` renders
   the fleet + event timeline, ``top --once`` renders worker rows.

Exits nonzero with a diagnostic on any miss; stdlib only.
"""

from __future__ import annotations

import sqlite3
import subprocess
import sys
import tempfile
import time
from pathlib import Path

WORKERS = 4
LIMIT = 12
KILL_RATE = 0.25
FLAGS = [
    "--limit", str(LIMIT),
    "--latency-ms", "40",
    "--heartbeat-interval", "0.2",
    "--restart-backoff", "0.05",
]


def fail(message: str) -> int:
    print(f"chaos-smoke: FAIL — {message}", file=sys.stderr)
    return 1


def cli(*args: str) -> "subprocess.CompletedProcess":
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def shard_done_count(db: Path) -> int:
    done = 0
    for shard in range(WORKERS):
        path = Path(f"{db}.shard-{shard:02d}")
        if not path.exists():
            continue
        try:
            done += sqlite3.connect(path).execute(
                "SELECT COUNT(*) FROM campaign_entries WHERE status = 'done'"
            ).fetchone()[0]
        except sqlite3.OperationalError:
            pass  # shard schema not committed yet
    return done


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="chaos-smoke-"))
    db = tmp / "chaos.sqlite"
    print(
        f"chaos-smoke: {WORKERS} workers, kill-rate {KILL_RATE}, "
        f"supervisor SIGKILL pending ...",
    )
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "campaign", "run", "chaos",
         "--db", str(db), "--workers", str(WORKERS),
         "--chaos-kill-rate", str(KILL_RATE), *FLAGS],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if shard_done_count(db) >= 2 or victim.poll() is not None:
                break
            time.sleep(0.02)
        else:
            return fail("sharded campaign never journaled progress")
    finally:
        victim.kill()  # SIGKILL the supervisor; workers are orphaned
        victim.wait()
    print(
        f"chaos-smoke: supervisor killed with "
        f"{shard_done_count(db)}/{LIMIT} modules journaled"
    )

    resumed = cli("campaign", "resume", "chaos", "--db", str(db))
    if resumed.returncode != 0:
        return fail(f"resume failed: {resumed.stderr}")
    if "status: complete" not in resumed.stdout:
        return fail(f"resumed campaign not complete:\n{resumed.stdout}")

    reference = cli(
        "campaign", "run", "chaos", "--db", str(tmp / "serial.sqlite"),
        *FLAGS,
    )
    if reference.returncode != 0:
        return fail(f"serial reference failed: {reference.stderr}")
    if resumed.stdout != reference.stdout:
        return fail(
            "resumed report is not byte-identical to the serial run\n"
            f"--- resumed ---\n{resumed.stdout}\n"
            f"--- serial ---\n{reference.stdout}"
        )
    digest = next(
        line for line in resumed.stdout.splitlines() if "content digest" in line
    )
    print(f"chaos-smoke: byte-identical after resume ({digest.strip()})")

    fleet = cli("campaign", "workers", "chaos", "--db", str(db))
    if fleet.returncode != 0 or "EVENTS" not in fleet.stdout:
        return fail(f"campaign workers did not render: {fleet.stderr}")
    if "spawn" not in fleet.stdout:
        return fail("worker event timeline is missing spawn events")
    gauges = cli("campaign", "workers", "chaos", "--db", str(db),
                 "--prometheus")
    if "repro_campaign_worker_up{" not in gauges.stdout:
        return fail("per-worker Prometheus gauges missing")
    top = cli("top", "chaos", "--db", str(db), "--once")
    if top.returncode != 0 or "workers" not in top.stdout:
        return fail(f"top --once did not render worker rows: {top.stderr}")

    events = [
        line for line in fleet.stdout.splitlines()
        if any(k in line for k in ("crash", "restart", "heartbeat-miss"))
    ]
    print(f"chaos-smoke: OK — {len(events)} chaos lifecycle events survived")
    return 0


if __name__ == "__main__":
    sys.exit(main())
