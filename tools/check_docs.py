#!/usr/bin/env python
"""Docs drift checker: fail CI when documentation and code disagree.

Three checks over the repository's Markdown (stdlib only, no network):

1. **Links and path references resolve.**  Every relative Markdown
   link target and every inline-code reference to a repository path
   (``docs/...``, ``src/...``, ``tests/...``, ...) must exist on disk.
2. **Documented CLI exists.**  Every ``repro-cli <subcommand>``
   mention must name a real subcommand of ``repro.cli.build_parser()``,
   and every real subcommand must be documented somewhere — a new
   command cannot ship undocumented, a renamed one cannot leave stale
   walkthroughs behind.
3. **Doctests pass.**  Fenced ``python`` blocks containing ``>>>``
   prompts (currently in ``docs/API.md``) are executed with
   :mod:`doctest`; examples in the API reference must actually work.

Run directly (``python tools/check_docs.py``) or via ``make
docs-check``.  Exit status is the number of failing checks.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

#: The Markdown surface under contract.
DOC_FILES = sorted(
    [
        *REPO.glob("*.md"),
        *(REPO / "docs").glob("*.md"),
        *(REPO / "related").glob("README.md"),
    ]
)

#: Inline-code path references worth resolving: `dir/...` for the
#: repository's real top-level directories, plus repository-root files.
_PATH_REF = re.compile(
    r"`((?:docs|examples|benchmarks|tests|tools|src|\.github)/[A-Za-z0-9_./\-]+)`"
)
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CLI_MENTION = re.compile(
    r"repro-cli (?:campaign |serve |match )?([a-z][a-z-]*)"
)
_CLI_BRACES = re.compile(r"repro-cli \{([^}]*)\}")
_FENCE = re.compile(r"^```(\w*)\s*$")


def iter_code_blocks(text: str):
    """Yield ``(language, first_line_number, body)`` per fenced block."""
    language, start, body = None, 0, []
    for number, line in enumerate(text.splitlines(), 1):
        match = _FENCE.match(line)
        if match and language is None:
            language, start, body = match.group(1) or "", number + 1, []
        elif line.strip() == "```" and language is not None:
            yield language, start, "\n".join(body) + "\n"
            language = None
        elif language is not None:
            body.append(line)


# ----------------------------------------------------------------------
# Check 1: links + path references
# ----------------------------------------------------------------------
def check_links() -> "list[str]":
    problems = []
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        targets = set()
        for target in _MD_LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            targets.add(target.split("#", 1)[0])
        targets.update(_PATH_REF.findall(text))
        for target in sorted(targets):
            if not target:
                continue
            resolved = (doc.parent / target).resolve()
            if not resolved.exists():
                resolved = (REPO / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken reference {target!r}"
                )
    return problems


# ----------------------------------------------------------------------
# Check 2: documented CLI == real CLI
# ----------------------------------------------------------------------
def _parser_subcommands() -> "set[str]":
    import argparse

    from repro.cli import build_parser

    names: "set[str]" = set()

    def visit(parser) -> None:
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name, sub in action.choices.items():
                    names.add(name)
                    visit(sub)

    visit(build_parser())
    return names


def check_cli() -> "list[str]":
    real = _parser_subcommands()
    problems = []
    mentioned: "set[str]" = set()
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        found = set(_CLI_MENTION.findall(text))
        for braces in _CLI_BRACES.findall(text):
            found.update(
                word.strip() for word in braces.split(",") if word.strip()
            )
        for name in sorted(found):
            if name in ("campaign", "match"):
                continue  # group names; their subcommands are checked too
            if name not in real:
                problems.append(
                    f"{doc.relative_to(REPO)}: `repro-cli {name}` is not a "
                    f"real subcommand (have: {', '.join(sorted(real))})"
                )
        mentioned.update(found & real)
    undocumented = real - mentioned
    for name in sorted(undocumented):
        problems.append(
            f"subcommand `repro-cli {name}` exists but is documented in "
            f"none of the checked Markdown files"
        )
    return problems


# ----------------------------------------------------------------------
# Check 3: doctests in fenced python blocks
# ----------------------------------------------------------------------
def check_doctests() -> "list[str]":
    problems = []
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False)
    blocks = 0
    for doc in DOC_FILES:
        text = doc.read_text(encoding="utf-8")
        for language, line, body in iter_code_blocks(text):
            if language != "python" or ">>>" not in body:
                continue
            blocks += 1
            name = f"{doc.relative_to(REPO)}:{line}"
            test = parser.get_doctest(body, {}, name, str(doc), line)
            result = runner.run(test, clear_globs=True)
            if result.failed:
                problems.append(
                    f"{name}: {result.failed}/{result.attempted} doctest "
                    f"example(s) failed (run `python -m doctest` style "
                    f"output above)"
                )
    if blocks == 0:
        problems.append(
            "no doctest blocks found in the docs — docs/API.md is expected "
            "to carry runnable `>>>` examples"
        )
    return problems


def main() -> int:
    checks = [
        ("links/path references", check_links),
        ("CLI subcommands", check_cli),
        ("doctests", check_doctests),
    ]
    failed = 0
    for label, check in checks:
        problems = check()
        if problems:
            failed += 1
            print(f"FAIL {label}:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"ok   {label}")
    if failed:
        print(f"\n{failed} docs check(s) failed")
    else:
        print(f"\nall docs checks passed over {len(DOC_FILES)} files")
    return failed


if __name__ == "__main__":
    raise SystemExit(main())
