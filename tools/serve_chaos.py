#!/usr/bin/env python
"""Serve-chaos acceptance harness (the ``serve-chaos`` CI job).

Three phases against one shared state journal:

**Phase A — SIGKILL under load.**  A 4-replica fleet serves the
1000-client loadgen; two replicas are SIGKILLed mid-load once the run
is deep in steady state.  The contract: zero 5xx, client-visible
transport errors bounded by the killed processes' stranded work
(in-flight + admission-queued requests), every keep-alive reset
absorbed by the loadgen's retry-once rule, and the fleet reconverging
to 4 healthy replicas before a graceful SIGTERM drain (exit 0).

**Phase B — armed chaos.**  A fresh 2-replica fleet on the same
journal runs with ``--chaos-kill-replica`` armed, so every replica's
first process kills itself mid-request at its Nth governed request.
Both replicas die near-simultaneously (balanced load reaches N
together) — that can transiently darken the port, which is the point:
the supervisor must respawn both and the service must answer again.
Asserted: zero 5xx among answered requests, both replicas back alive
on attempt >= 2, and a post-recovery request served.  No transport
bound here — a fully-dark port refuses fresh connections by design.

**Phase C — durability.**  A fresh fleet on the same journal must
serve the memoized answer (``cached: true``) on its very first
request, and the ``serve fleet`` post-mortem must reconstruct the
whole crash/restart/drain story from the file alone.

Exits nonzero with a diagnostic on any miss; stdlib only.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

try:
    from repro.serve import LoadProfile, ServeStateStore, run_loadgen
except ImportError:  # invoked without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.serve import LoadProfile, ServeStateStore, run_loadgen

CLIENTS = 1000
REQUESTS_PER_CLIENT = 20
REPLICAS = 4
MAX_INFLIGHT = 32
MAX_QUEUE = 64
#: SIGKILL two replicas once the fleet has served this many requests —
#: deep enough into steady state that every client's keep-alive
#: connection has answered at least once (a reset then rides the
#: retry-once rule instead of surfacing as a client-visible error).
SIGKILL_AFTER = 5000
#: Phase B: each replica's first process dies mid-request at this
#: governed request (the --chaos-kill-replica fault plan).
CHAOS_KILL_AT = 25

MODULES = (
    "xf.uniprot_to_fasta",
    "xf.uniprot_to_xml",
    "xf.uniprot_to_json",
)


def fail(message: str, server: "subprocess.Popen | None" = None) -> int:
    print(f"serve-chaos: FAIL — {message}", file=sys.stderr)
    if server is not None and server.poll() is None:
        server.kill()
        server.wait()
    return 1


def _served_total(db: str) -> int:
    store = ServeStateStore(db)
    try:
        return sum(row["requests_total"] for row in store.replicas())
    finally:
        store.close()


def _replica_rows(db: str):
    store = ServeStateStore(db)
    try:
        return store.replica_rows()
    finally:
        store.close()


def _start_fleet(db: str, replicas: int, chaos: int = 0) -> "tuple":
    command = [
        sys.executable, "-m", "repro.cli", "serve",
        "--replicas", str(replicas), "--port", "0", "--db", db,
        "--register-all", "--rate", "0",
        "--max-inflight", str(MAX_INFLIGHT), "--max-queue", str(MAX_QUEUE),
        "--queue-timeout", "5.0", "--heartbeat-interval", "0.2",
        "--restart-backoff", "0.1",
    ]
    if chaos:
        command += ["--chaos-kill-replica", str(chaos)]
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(command, stderr=subprocess.PIPE, env=env)
    banner = server.stderr.readline().decode(errors="replace")
    match = re.search(r"http://([\d.]+):(\d+)", banner)
    if match is None:
        raise RuntimeError(f"no address in fleet banner: {banner!r}")
    host, port = match.group(1), int(match.group(2))
    deadline = time.time() + 60
    while time.time() < deadline:
        try:
            connection = http.client.HTTPConnection(host, port, timeout=5)
            connection.request("GET", "/healthz")
            if connection.getresponse().status == 200:
                connection.close()
                return server, host, port
        except OSError:
            time.sleep(0.2)
    raise RuntimeError("fleet never answered /healthz")


def _generate(host: str, port: int, module_id: str) -> dict:
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request(
            "POST", "/v1/generate",
            body=json.dumps({"module_id": module_id}),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = json.loads(response.read())
        payload["_status"] = response.status
        return payload
    finally:
        connection.close()


def _drain(server: "subprocess.Popen", what: str) -> "int | None":
    """SIGTERM the fleet; exit 0 is the graceful-drain verdict."""
    server.send_signal(signal.SIGTERM)
    code = server.wait(timeout=60)
    if code != 0:
        return fail(f"{what} drain exited {code}", server)
    return None


def _load_in_thread(host: str, port: int, profile: LoadProfile):
    outcome: dict = {}

    def drive() -> None:
        try:
            outcome["report"] = run_loadgen(host, port, profile)
        except Exception as error:  # surfaced by the caller
            outcome["error"] = error

    loader = threading.Thread(target=drive, daemon=True)
    loader.start()
    return loader, outcome


def phase_a_sigkill(db: str) -> int:
    server, host, port = _start_fleet(db, REPLICAS)
    print(f"serve-chaos: phase A — {REPLICAS} replicas on {host}:{port}, "
          f"{CLIENTS}-client load, SIGKILL x2 mid-run")
    try:
        # Memoize every module up front (the report store is shared
        # fleet-wide), so the 1000-client wavefront is served from cache
        # instead of stacking uncached work behind the admission queue.
        for module_id in MODULES:
            answer = _generate(host, port, module_id)
            if answer.get("_status") not in (200, 201):
                return fail(
                    f"warmup generate for {module_id} answered "
                    f"{answer.get('_status')}", server,
                )

        profile = LoadProfile(
            clients=CLIENTS,
            requests_per_client=REQUESTS_PER_CLIENT,
            mix={"generate": 0.7, "modules": 0.3},
            module_ids=MODULES,
            tenants=4,
            timeout=60.0,
        )
        loader, outcome = _load_in_thread(host, port, profile)

        # SIGKILL two replicas once real load has landed everywhere.
        deadline = time.time() + 120
        while time.time() < deadline:
            if _served_total(db) >= SIGKILL_AFTER:
                break
            if not loader.is_alive():
                break
            time.sleep(0.1)
        victims = [row for row in _replica_rows(db) if row["alive"]][:2]
        if len(victims) < 2:
            return fail("fewer than 2 live replicas to kill", server)
        for row in victims:
            os.kill(row["pid"], signal.SIGKILL)
        victim_ids = [row["replica"] for row in victims]
        print(f"serve-chaos: SIGKILLed replicas {victim_ids} "
              f"(pids {[row['pid'] for row in victims]}) mid-load")

        loader.join(timeout=300)
        if loader.is_alive():
            return fail("loadgen never finished", server)
        if "error" in outcome:
            return fail(f"loadgen raised: {outcome['error']}", server)
        report = outcome["report"]
        print(report.render())

        if report.n_5xx:
            return fail(f"{report.n_5xx} 5xx answers under chaos", server)
        # Each killed process strands at most its in-flight plus
        # admission-queued requests; everything else must ride the
        # retry-once keep-alive rule.
        bound = len(victims) * (MAX_INFLIGHT + MAX_QUEUE)
        if report.transport_errors > bound:
            return fail(
                f"{report.transport_errors} client-visible transport errors "
                f"exceed the stranded-work bound ({len(victims)} kills x "
                f"({MAX_INFLIGHT} in flight + {MAX_QUEUE} queued) = {bound})",
                server,
            )
        expected = CLIENTS * REQUESTS_PER_CLIENT
        if report.total + report.transport_errors != expected:
            return fail(
                f"requests unaccounted for: {report.total} answered + "
                f"{report.transport_errors} errors != {expected}",
                server,
            )
        if report.stale_retries == 0:
            return fail(
                "no stale-connection retries — the kills never stranded "
                "a keep-alive client, so this run proved nothing", server,
            )
        print(f"serve-chaos: zero 5xx; {report.transport_errors} transport "
              f"errors within bound {bound}; {report.stale_retries} "
              "stale-connection retries absorbed")

        # Convergence: the killed replicas respawned, whole fleet alive.
        deadline = time.time() + 120
        while time.time() < deadline:
            rows = _replica_rows(db)
            if (
                len(rows) == REPLICAS
                and all(row["alive"] for row in rows)
                and all(
                    row["attempt"] >= 2
                    for row in rows if row["replica"] in victim_ids
                )
            ):
                break
            time.sleep(0.2)
        else:
            rows = _replica_rows(db)
            return fail(
                "fleet never reconverged: "
                + ", ".join(
                    f"replica {row['replica']} phase={row['phase']} "
                    f"attempt={row['attempt']} alive={row['alive']}"
                    for row in rows
                ),
                server,
            )
        print(f"serve-chaos: fleet reconverged to {REPLICAS} healthy "
              "replicas after SIGKILL x2")

        verdict = _drain(server, "phase A")
        if verdict is not None:
            return verdict
        print("serve-chaos: phase A SIGTERM drained gracefully (exit 0)")
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    return 0


def phase_b_armed_chaos(db: str) -> int:
    server, host, port = _start_fleet(db, 2, chaos=CHAOS_KILL_AT)
    print(f"serve-chaos: phase B — 2 replicas armed to self-kill at "
          f"governed request {CHAOS_KILL_AT}")
    try:
        profile = LoadProfile(
            clients=20,
            requests_per_client=30,
            mix={"generate": 0.7, "modules": 0.3},
            module_ids=MODULES,
            tenants=2,
            timeout=30.0,
        )
        loader, outcome = _load_in_thread(host, port, profile)
        loader.join(timeout=300)
        if loader.is_alive():
            return fail("phase B loadgen never finished", server)
        if "error" in outcome:
            return fail(f"phase B loadgen raised: {outcome['error']}", server)
        report = outcome["report"]
        print(report.render())
        if report.n_5xx:
            return fail(f"{report.n_5xx} 5xx answers from armed chaos",
                        server)

        # Both first processes must have died by their own fault plan
        # and been respawned by the supervisor.
        deadline = time.time() + 120
        while time.time() < deadline:
            rows = [
                row for row in _replica_rows(db) if row["replica"] in (0, 1)
            ]
            if all(row["alive"] and row["attempt"] >= 2 for row in rows):
                break
            time.sleep(0.2)
        else:
            rows = _replica_rows(db)
            return fail(
                "armed chaos fleet never self-healed: "
                + ", ".join(
                    f"replica {row['replica']} phase={row['phase']} "
                    f"attempt={row['attempt']} alive={row['alive']}"
                    for row in rows
                ),
                server,
            )
        answer = _generate(host, port, MODULES[0])
        if answer.get("_status") != 200:
            return fail(
                f"post-recovery request answered {answer.get('_status')}",
                server,
            )
        print("serve-chaos: armed chaos fired on both replicas; supervisor "
              "respawned them and the service answers again")

        verdict = _drain(server, "phase B")
        if verdict is not None:
            return verdict
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    return 0


def phase_c_durability(db: str) -> int:
    revived, host, port = _start_fleet(db, 2)
    try:
        answer = _generate(host, port, MODULES[0])
        if answer.get("_status") != 200 or answer.get("cached") is not True:
            return fail(
                f"restarted fleet did not serve the memoized report: "
                f"status {answer.get('_status')}, cached "
                f"{answer.get('cached')}",
                revived,
            )
        verdict = _drain(revived, "phase C")
        if verdict is not None:
            return verdict
    finally:
        if revived.poll() is None:
            revived.kill()
            revived.wait()
    print("serve-chaos: restarted fleet served cached report on its "
          "first request")

    # The post-mortem must reconstruct the whole story from the file.
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    post_mortem = subprocess.run(
        [sys.executable, "-m", "repro.cli", "serve", "fleet", "--db", db],
        capture_output=True, text=True, timeout=60, env=env,
    )
    if post_mortem.returncode != 0:
        return fail(f"serve fleet post-mortem exited "
                    f"{post_mortem.returncode}: {post_mortem.stderr}")
    for needle in ("crash", "restart", "fleet-stop"):
        if needle not in post_mortem.stdout:
            return fail(f"post-mortem timeline missing {needle!r}")
    print("serve-chaos: OK — post-mortem timeline has crash/restart/drain")
    return 0


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="serve-chaos-")
    db = os.path.join(workdir, "fleet.sqlite")
    for phase in (phase_a_sigkill, phase_b_armed_chaos, phase_c_durability):
        code = phase(db)
        if code:
            return code
    return 0


if __name__ == "__main__":
    sys.exit(main())
