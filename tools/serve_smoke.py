#!/usr/bin/env python
"""CI smoke for the serving layer (the ``serve-smoke`` job).

Starts a real ``repro-cli serve`` process on an ephemeral port, fires a
short concurrent loadgen burst at it, scrapes ``/metrics``, and asserts
the exposition carries what operators depend on:

* zero 5xx during the burst,
* the ``repro_http_*`` request/latency/admission series,
* the SLO gauges (``repro_slo_alerts_firing`` and friends) produced by
  the serving-path sampler.

Exits nonzero with a diagnostic on any miss; stdlib only.
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
import urllib.request


def fail(message: str, server: "subprocess.Popen | None" = None) -> "int":
    print(f"serve-smoke: FAIL — {message}", file=sys.stderr)
    if server is not None:
        server.terminate()
        stderr = server.stderr.read().decode(errors="replace")
        print(f"--- server stderr ---\n{stderr}", file=sys.stderr)
    return 1


def main() -> int:
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--serve-for", "120", "--register-all",
            "--rate", "0", "--sample", "0.2",
        ],
        stderr=subprocess.PIPE,
    )
    try:
        banner = server.stderr.readline().decode(errors="replace")
        match = re.search(r"http://([\d.]+):(\d+)", banner)
        if match is None:
            return fail(f"no address in server banner: {banner!r}", server)
        host, port = match.group(1), int(match.group(2))
        print(f"serve-smoke: server up on {host}:{port}")

        burst = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "loadgen",
                "--host", host, "--port", str(port),
                "--clients", "40", "--requests", "5", "--json",
            ],
            capture_output=True,
        )
        print(burst.stdout.decode(errors="replace"))
        if burst.returncode != 0:
            return fail(
                f"loadgen exited {burst.returncode}: "
                f"{burst.stderr.decode(errors='replace')}",
                server,
            )

        time.sleep(0.6)  # let the sampler take post-burst samples
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=10
        ) as response:
            exposition = response.read().decode()

        required = [
            "repro_http_requests_total{",
            "repro_http_request_latency_ms_bucket{",
            "repro_http_inflight_limit",
            "repro_http_queue_depth",
            "repro_http_shed_total",
            "repro_slo_alerts_firing",
            "# TYPE repro_slo_burn_rate gauge",
            "# TYPE repro_slo_alert_firing gauge",
        ]
        missing = [needle for needle in required if needle not in exposition]
        if missing:
            return fail(f"exposition missing {missing}", server)
        for line in exposition.splitlines():
            if re.match(r'repro_http_requests_total\{.*status="5\d\d"', line):
                return fail(f"5xx served during the burst: {line}", server)
        print("serve-smoke: OK — http series + SLO gauges present, no 5xx")
        return 0
    finally:
        server.terminate()
        server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
