"""The campaign journal: write-ahead persistence of generation results.

A whole-catalog generation run (§3 over the 252-module catalog) is long
enough to die — the process gets killed, the machine reboots, a provider
blackout stalls everything past patience.  The journal makes the run
crash-safe at module granularity: every completed per-module
:class:`~repro.core.generation.GenerationReport` is committed to SQLite
*before* the campaign moves on, so a killed campaign loses at most the
module in flight and ``campaign resume`` completes the remainder.

The storage reuses the conventions of :mod:`repro.registry.sqlite_store`
(same wire serialization for typed values, same one-file SQLite shape);
journal tables can live in the same database file as a persisted
registry without clashing.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.examples import Binding, DataExample
from repro.core.generation import GenerationReport
from repro.core.quarantine import QuarantinedExample
from repro.modules.interfaces import value_from_wire, value_to_wire
from repro.values import TypedValue

#: Journal lifecycle states of one campaign.
RUNNING = "running"
COMPLETE = "complete"
DEGRADED = "degraded"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    seed INTEGER NOT NULL,
    status TEXT NOT NULL CHECK (status IN ('running', 'complete', 'degraded')),
    module_ids_json TEXT NOT NULL,
    config_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaign_entries (
    campaign_id TEXT NOT NULL REFERENCES campaigns(campaign_id),
    module_id TEXT NOT NULL,
    status TEXT NOT NULL CHECK (status IN ('done', 'skipped')),
    detail TEXT NOT NULL,
    report_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, module_id)
);
CREATE TABLE IF NOT EXISTS campaign_spans (
    span_seq INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL REFERENCES campaigns(campaign_id),
    module_id TEXT NOT NULL,
    outcome TEXT NOT NULL,
    start_ms REAL NOT NULL,
    duration_ms REAL NOT NULL,
    span_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS campaign_spans_by_campaign
    ON campaign_spans (campaign_id, module_id);
CREATE TABLE IF NOT EXISTS campaign_snapshots (
    snap_seq INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL,
    t_ms REAL NOT NULL,
    snapshot_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS campaign_snapshots_by_campaign
    ON campaign_snapshots (campaign_id);
CREATE TABLE IF NOT EXISTS campaign_alerts (
    alert_seq INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL,
    slo TEXT NOT NULL,
    kind TEXT NOT NULL,
    subject TEXT NOT NULL,
    state TEXT NOT NULL CHECK (state IN ('firing', 'resolved')),
    t_ms REAL NOT NULL,
    detail TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS campaign_alerts_by_campaign
    ON campaign_alerts (campaign_id);
CREATE TABLE IF NOT EXISTS worker_events (
    event_seq INTEGER PRIMARY KEY AUTOINCREMENT,
    campaign_id TEXT NOT NULL,
    t_wall REAL NOT NULL,
    worker INTEGER NOT NULL,
    shard INTEGER NOT NULL,
    kind TEXT NOT NULL,
    detail TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS worker_events_by_campaign
    ON worker_events (campaign_id);
CREATE TABLE IF NOT EXISTS match_signatures (
    campaign_id TEXT NOT NULL,
    module_id TEXT NOT NULL,
    signature_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, module_id)
);
CREATE TABLE IF NOT EXISTS shard_status (
    campaign_id TEXT NOT NULL,
    shard INTEGER NOT NULL,
    worker INTEGER NOT NULL,
    pid INTEGER NOT NULL,
    attempt INTEGER NOT NULL,
    invocations INTEGER NOT NULL,
    phase TEXT NOT NULL,
    heartbeat_wall REAL NOT NULL,
    stats_json TEXT NOT NULL,
    PRIMARY KEY (campaign_id, shard)
);
"""


# ----------------------------------------------------------------------
# GenerationReport <-> JSON
# ----------------------------------------------------------------------
def _binding_to_dict(binding: Binding) -> dict:
    return {
        "parameter": binding.parameter,
        "partition": binding.partition,
        "value": value_to_wire(binding.value),
    }


def _binding_from_dict(data: dict) -> Binding:
    return Binding(
        parameter=data["parameter"],
        value=value_from_wire(data["value"]),
        partition=data["partition"],
    )


def report_to_dict(report: GenerationReport) -> dict:
    """Serialize a generation report to a JSON-compatible dict.

    The full report round-trips — examples, per-partition selections,
    unrealized partitions and both failure counters — so a resumed
    campaign reassembles results indistinguishable from a fresh run.
    """
    return {
        "module_id": report.module_id,
        "examples": [
            {
                "inputs": [_binding_to_dict(b) for b in example.inputs],
                "outputs": [_binding_to_dict(b) for b in example.outputs],
            }
            for example in report.examples
        ],
        "selected": [
            [
                parameter,
                [[partition, value_to_wire(value)] for partition, value in chosen.items()],
            ]
            for parameter, chosen in report.selected.items()
        ],
        "unrealized_partitions": [list(pair) for pair in report.unrealized_partitions],
        "invalid_combinations": report.invalid_combinations,
        "unavailable_combinations": report.unavailable_combinations,
        "quarantined": [
            {
                "inputs": [_binding_to_dict(b) for b in record.inputs],
                "outputs": [_binding_to_dict(b) for b in record.outputs],
                "cause": record.cause,
                "detail": record.detail,
            }
            for record in report.quarantined
        ],
    }


def report_from_dict(data: dict) -> GenerationReport:
    """Rebuild a generation report from its journaled form."""
    module_id = data["module_id"]
    selected: dict[str, dict[str, TypedValue]] = {
        parameter: {
            partition: value_from_wire(wire) for partition, wire in chosen
        }
        for parameter, chosen in data["selected"]
    }
    return GenerationReport(
        module_id=module_id,
        examples=[
            DataExample(
                module_id=module_id,
                inputs=tuple(_binding_from_dict(b) for b in example["inputs"]),
                outputs=tuple(_binding_from_dict(b) for b in example["outputs"]),
            )
            for example in data["examples"]
        ],
        selected=selected,
        unrealized_partitions=[
            tuple(pair) for pair in data["unrealized_partitions"]
        ],
        invalid_combinations=data["invalid_combinations"],
        unavailable_combinations=data["unavailable_combinations"],
        # PR-2-era journals predate quarantine; default to none.
        quarantined=[
            QuarantinedExample(
                module_id=module_id,
                inputs=tuple(_binding_from_dict(b) for b in record["inputs"]),
                outputs=tuple(_binding_from_dict(b) for b in record["outputs"]),
                cause=record["cause"],
                detail=record["detail"],
            )
            for record in data.get("quarantined", [])
        ],
    )


# ----------------------------------------------------------------------
# Journal records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JournalEntry:
    """One journaled per-module outcome."""

    module_id: str
    status: str  # 'done' | 'skipped'
    detail: str = ""
    report: "GenerationReport | None" = None


@dataclass(frozen=True)
class CampaignMeta:
    """The campaigns-table row of one campaign."""

    campaign_id: str
    seed: int
    status: str
    module_ids: tuple[str, ...]
    config: dict = field(default_factory=dict)


class UnknownCampaignError(KeyError):
    """The journal holds no campaign under the requested id."""


class CampaignJournal:
    """SQLite-backed write-ahead journal of campaign progress.

    One connection is shared across threads (the batch scheduler journals
    from workers) behind a lock; every record is its own committed
    transaction, so a SIGKILL at any point leaves a consistent journal.

    The database is opened in **WAL mode with an explicit busy timeout**:
    sharded campaigns have one writer per shard journal plus concurrent
    readers (the supervisor's heartbeat poll, ``repro-cli top`` in
    another process, the merge step).  WAL lets readers proceed while a
    writer commits, and the busy timeout makes the rare writer-vs-writer
    collision wait instead of surfacing a spurious ``database is
    locked`` error.

    Args:
        path: The SQLite file.
        busy_timeout: Seconds a blocked statement waits for a lock
            before erroring (applied both as the connect timeout and as
            ``PRAGMA busy_timeout``).
    """

    def __init__(self, path: "str | Path", busy_timeout: float = 10.0) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            self.path, timeout=busy_timeout, check_same_thread=False
        )
        with self._lock, self._connection:
            self._connection.execute(
                f"PRAGMA busy_timeout = {int(busy_timeout * 1000)}"
            )
            # WAL survives in the database file; synchronous=NORMAL is
            # the WAL-recommended durability level — commits survive a
            # process kill (the case campaigns defend against), and only
            # an OS crash can lose the tail of the log.
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
            self._connection.executescript(_SCHEMA)

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    # ------------------------------------------------------------------
    # Campaigns
    # ------------------------------------------------------------------
    def create(
        self,
        campaign_id: str,
        seed: int,
        module_ids: "list[str]",
        config: "dict | None" = None,
    ) -> None:
        """Open a new campaign in ``running`` state.

        Raises:
            ValueError: If the campaign id is already journaled.
        """
        with self._lock, self._connection:
            try:
                self._connection.execute(
                    "INSERT INTO campaigns VALUES (?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        seed,
                        RUNNING,
                        json.dumps(list(module_ids)),
                        json.dumps(config or {}, sort_keys=True),
                    ),
                )
            except sqlite3.IntegrityError:
                raise ValueError(
                    f"campaign {campaign_id!r} already exists in {self.path}"
                ) from None

    def meta(self, campaign_id: str) -> CampaignMeta:
        """The campaign's row.

        Raises:
            UnknownCampaignError: No such campaign in this journal.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT campaign_id, seed, status, module_ids_json, config_json "
                "FROM campaigns WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        if row is None:
            raise UnknownCampaignError(campaign_id)
        return CampaignMeta(
            campaign_id=row[0],
            seed=row[1],
            status=row[2],
            module_ids=tuple(json.loads(row[3])),
            config=json.loads(row[4]),
        )

    def campaigns(self) -> "list[CampaignMeta]":
        """All journaled campaigns, id-ordered."""
        with self._lock:
            ids = [
                row[0]
                for row in self._connection.execute(
                    "SELECT campaign_id FROM campaigns ORDER BY campaign_id"
                ).fetchall()
            ]
        return [self.meta(campaign_id) for campaign_id in ids]

    def set_status(self, campaign_id: str, status: str) -> None:
        """Move a campaign to ``running`` / ``complete`` / ``degraded``."""
        if status not in (RUNNING, COMPLETE, DEGRADED):
            raise ValueError(f"unknown campaign status {status!r}")
        with self._lock, self._connection:
            updated = self._connection.execute(
                "UPDATE campaigns SET status = ? WHERE campaign_id = ?",
                (status, campaign_id),
            ).rowcount
        if not updated:
            raise UnknownCampaignError(campaign_id)

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def record_done(self, campaign_id: str, report: GenerationReport) -> None:
        """Commit one completed module (replacing any earlier skip)."""
        payload = json.dumps(report_to_dict(report), sort_keys=True)
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO campaign_entries VALUES (?, ?, ?, ?, ?)",
                (campaign_id, report.module_id, "done", "", payload),
            )

    def record_skipped(self, campaign_id: str, module_id: str, reason: str) -> None:
        """Journal a module the campaign gave up on (resumable later)."""
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO campaign_entries VALUES (?, ?, ?, ?, ?)",
                (campaign_id, module_id, "skipped", reason, "{}"),
            )

    # ------------------------------------------------------------------
    # Spans (the campaign flight recorder)
    # ------------------------------------------------------------------
    def record_span(self, campaign_id: str, span: dict) -> None:
        """Commit one completed invocation span tree.

        Each span is its own committed transaction — exactly like report
        entries — so a SIGKILLed campaign keeps every trace that finished
        before the kill.  Spans are *observations*, not results: they
        live in their own table and never feed report reassembly, so the
        kill/resume byte-identity guarantee is untouched.
        """
        payload = json.dumps(span, sort_keys=True)
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT INTO campaign_spans "
                "(campaign_id, module_id, outcome, start_ms, duration_ms, span_json) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    span.get("module_id", ""),
                    span.get("outcome", "ok"),
                    span.get("start_ms", 0.0),
                    span.get("duration_ms", 0.0),
                    payload,
                ),
            )

    def spans(
        self, campaign_id: str, module_id: "str | None" = None
    ) -> "list[dict]":
        """Journaled span trees of one campaign, recording order.

        Args:
            campaign_id: The campaign.
            module_id: Restrict to one module's invocations.
        """
        query = (
            "SELECT span_json FROM campaign_spans WHERE campaign_id = ?"
        )
        params: tuple = (campaign_id,)
        if module_id is not None:
            query += " AND module_id = ?"
            params += (module_id,)
        query += " ORDER BY span_seq"
        with self._lock:
            rows = self._connection.execute(query, params).fetchall()
        return [json.loads(row[0]) for row in rows]

    def span_count(self, campaign_id: str) -> int:
        """Journaled spans of one campaign."""
        with self._lock:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM campaign_spans WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        return row[0]

    # ------------------------------------------------------------------
    # Snapshots (the longitudinal time-series, PR 5)
    # ------------------------------------------------------------------
    def record_snapshot(self, campaign_id: str, t_ms: float, snapshot: dict) -> None:
        """Commit one time-series sample.

        Exactly the span discipline: each snapshot is its own committed
        transaction, so a SIGKILLed campaign keeps every sample taken
        before the kill and the time line reconstructs from the journal
        file alone.  Snapshots are observations — they never feed report
        reassembly, so sampling cannot perturb kill/resume byte-identity.
        """
        payload = json.dumps(snapshot, sort_keys=True)
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT INTO campaign_snapshots (campaign_id, t_ms, snapshot_json) "
                "VALUES (?, ?, ?)",
                (campaign_id, t_ms, payload),
            )

    def snapshots(self, campaign_id: str) -> "list[dict]":
        """The journaled time-series of one campaign, recording order.

        Each dict is one sample as the sampler committed it; a resumed
        campaign appends to the same time line (its samples carry a
        fresh ``run`` stamp, so per-process segments stay separable).
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT snapshot_json FROM campaign_snapshots "
                "WHERE campaign_id = ? ORDER BY snap_seq",
                (campaign_id,),
            ).fetchall()
        return [json.loads(row[0]) for row in rows]

    def snapshot_count(self, campaign_id: str) -> int:
        """Journaled samples of one campaign."""
        with self._lock:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM campaign_snapshots WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        return row[0]

    # ------------------------------------------------------------------
    # Alerts (the SLO / drift alert history, PR 5)
    # ------------------------------------------------------------------
    def record_alert(self, campaign_id: str, event: dict) -> None:
        """Commit one alert lifecycle event (``firing`` or ``resolved``).

        The journal keeps the full event *history*; current alert state
        is a fold over it (:func:`repro.obs.slo.alert_states`), so a
        killed campaign's alerts reconstruct from the file alone.
        """
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT INTO campaign_alerts "
                "(campaign_id, slo, kind, subject, state, t_ms, detail) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    event.get("slo", ""),
                    event.get("kind", ""),
                    event.get("subject", ""),
                    event.get("state", "firing"),
                    event.get("t_ms", 0.0),
                    event.get("detail", ""),
                ),
            )

    def alerts(self, campaign_id: str) -> "list[dict]":
        """The alert event history of one campaign, recording order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT slo, kind, subject, state, t_ms, detail "
                "FROM campaign_alerts WHERE campaign_id = ? ORDER BY alert_seq",
                (campaign_id,),
            ).fetchall()
        return [
            {
                "slo": row[0],
                "kind": row[1],
                "subject": row[2],
                "state": row[3],
                "t_ms": row[4],
                "detail": row[5],
            }
            for row in rows
        ]

    # ------------------------------------------------------------------
    # Worker lifecycle (sharded multi-process campaigns)
    # ------------------------------------------------------------------
    def record_worker_event(
        self,
        campaign_id: str,
        worker: int,
        shard: int,
        kind: str,
        detail: str = "",
        t_wall: "float | None" = None,
    ) -> None:
        """Commit one worker lifecycle event (``spawn`` /
        ``heartbeat-miss`` / ``crash`` / ``restart`` / ``shard-reassign``
        / ``shard-done`` / ``shard-degraded``).

        Each event is its own committed transaction, exactly like report
        entries, so a SIGKILLed supervisor leaves a complete post-mortem
        timeline: the whole worker history reconstructs from the journal
        file alone.
        """
        import time as _time

        with self._lock, self._connection:
            self._connection.execute(
                "INSERT INTO worker_events "
                "(campaign_id, t_wall, worker, shard, kind, detail) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    t_wall if t_wall is not None else _time.time(),
                    worker,
                    shard,
                    kind,
                    detail,
                ),
            )

    def worker_events(self, campaign_id: str) -> "list[dict]":
        """The worker lifecycle timeline of one campaign, recording order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT t_wall, worker, shard, kind, detail "
                "FROM worker_events WHERE campaign_id = ? ORDER BY event_seq",
                (campaign_id,),
            ).fetchall()
        return [
            {
                "t_wall": row[0],
                "worker": row[1],
                "shard": row[2],
                "kind": row[3],
                "detail": row[4],
            }
            for row in rows
        ]

    # ------------------------------------------------------------------
    # Shard heartbeats (written by workers into their shard journal)
    # ------------------------------------------------------------------
    def record_shard_status(
        self,
        campaign_id: str,
        shard: int,
        worker: int,
        pid: int,
        attempt: int,
        invocations: int,
        phase: str,
        stats: "dict | None" = None,
        heartbeat_wall: "float | None" = None,
    ) -> None:
        """Commit the worker's current heartbeat row (last write wins).

        The row carries the worker's full engine-stats snapshot: this is
        how per-worker telemetry leaves the process without shared
        memory — the supervisor merges the journaled snapshots at
        checkpoint boundaries
        (:func:`repro.engine.telemetry.merge_stats_snapshots`).
        """
        import time as _time

        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO shard_status VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    shard,
                    worker,
                    pid,
                    attempt,
                    invocations,
                    phase,
                    heartbeat_wall if heartbeat_wall is not None else _time.time(),
                    json.dumps(stats or {}, sort_keys=True),
                ),
            )

    def shard_status(self, campaign_id: str, shard: int) -> "dict | None":
        """The latest heartbeat row of one shard, or ``None``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT worker, pid, attempt, invocations, phase, "
                "heartbeat_wall, stats_json FROM shard_status "
                "WHERE campaign_id = ? AND shard = ?",
                (campaign_id, shard),
            ).fetchone()
        if row is None:
            return None
        return {
            "shard": shard,
            "worker": row[0],
            "pid": row[1],
            "attempt": row[2],
            "invocations": row[3],
            "phase": row[4],
            "heartbeat_wall": row[5],
            "stats": json.loads(row[6]),
        }

    # ------------------------------------------------------------------
    # Match signatures (the signature-index build campaign, PR 9)
    # ------------------------------------------------------------------
    def record_signature(
        self, campaign_id: str, module_id: str, record: dict
    ) -> None:
        """Commit one module's computed behavior signature.

        Exactly the report-entry discipline: each signature is its own
        committed transaction *before* the index build moves on, so a
        killed ``repro-cli match index`` run resumes by re-loading the
        journaled signatures and sketching only the remainder.  Re-adds
        replace (last write wins) — re-sketching a module is idempotent.
        """
        payload = json.dumps(record, sort_keys=True)
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO match_signatures VALUES (?, ?, ?)",
                (campaign_id, module_id, payload),
            )

    def signatures(self, campaign_id: str) -> "dict[str, dict]":
        """All journaled signature records of one campaign, by module id."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT module_id, signature_json FROM match_signatures "
                "WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        return {module_id: json.loads(payload) for module_id, payload in rows}

    def signature_count(self, campaign_id: str) -> int:
        """Journaled signatures of one campaign (cheap, no JSON parse)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT COUNT(*) FROM match_signatures WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        return row[0]

    # ------------------------------------------------------------------
    def progress_counts(self, campaign_id: str) -> "dict[str, int]":
        """Cheap per-status entry counts (no report deserialization).

        The sampler calls this once per campaign round; parsing every
        journaled report JSON there would make sampling O(results), not
        O(1) queries.
        """
        with self._lock:
            rows = self._connection.execute(
                "SELECT status, COUNT(*) FROM campaign_entries "
                "WHERE campaign_id = ? GROUP BY status",
                (campaign_id,),
            ).fetchall()
        counts = {status: count for status, count in rows}
        return {
            "n_done": counts.get("done", 0),
            "n_skipped": counts.get("skipped", 0),
        }

    def entries(self, campaign_id: str) -> "dict[str, JournalEntry]":
        """All journaled entries of one campaign, keyed by module id."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT module_id, status, detail, report_json "
                "FROM campaign_entries WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchall()
        entries: dict[str, JournalEntry] = {}
        for module_id, status, detail, report_json in rows:
            report = None
            if status == "done":
                report = report_from_dict(json.loads(report_json))
            entries[module_id] = JournalEntry(
                module_id=module_id, status=status, detail=detail, report=report
            )
        return entries


# ----------------------------------------------------------------------
# Read-only progress rollup (CLI `campaign status`, HTTP campaign API).
# ----------------------------------------------------------------------
def campaign_progress(journal: CampaignJournal, meta: CampaignMeta) -> dict:
    """One campaign's JSON-compatible progress rollup.

    Everything is derived from the journal alone, so any read-only
    consumer — ``repro-cli campaign status``, the serving layer's
    ``GET /v1/campaigns/{id}`` — can report on a campaign running in a
    different process (or post-mortem a killed one) without sharing any
    state beyond the SQLite file.
    """
    entries = journal.entries(meta.campaign_id)
    done = [e for e in entries.values() if e.status == "done"]
    skipped = {
        e.module_id: e.detail for e in entries.values() if e.status == "skipped"
    }
    return {
        "campaign_id": meta.campaign_id,
        "seed": meta.seed,
        "status": meta.status,
        "n_planned": len(meta.module_ids),
        "n_done": len(done),
        "n_skipped": len(skipped),
        "n_pending": len(meta.module_ids) - len(done) - len(skipped),
        "n_examples": sum(entry.report.n_examples for entry in done),
        "timed_out_combinations": sum(
            entry.report.timed_out_combinations for entry in done
        ),
        "quarantined_combinations": sum(
            entry.report.quarantined_combinations for entry in done
        ),
        "skipped": skipped,
    }
