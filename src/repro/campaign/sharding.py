"""Deterministic catalog sharding and shard-journal merging.

The sharded campaign (:mod:`repro.campaign.supervisor`) splits the
planned module list across N worker processes.  Everything in this
module is a pure function of journal state, which is what makes the
whole scheme crash-tolerant:

* **The shard plan is deterministic.**  :func:`shard_plan` is a fixed
  round-robin over the planned module ids, so a resumed supervisor —
  even one SIGKILLed mid-merge — re-derives exactly the same shards
  from the main journal's ``module_ids`` row.  No placement state needs
  to survive the crash.
* **Shard journals are derived paths.**  Shard *i* of ``campaign.db``
  lives in ``campaign.db.shard-0i``; the per-shard campaign id is
  ``<campaign_id>::shard-0i``.  Any subset of these files plus the main
  journal is enough to resume.
* **The merge is idempotent.**  :func:`merge_shard_journal` copies
  per-module entries into the main journal via the same
  ``INSERT OR REPLACE`` discipline the serial runner uses, so duplicate
  rows from a restarted worker — or a merge re-run after the supervisor
  was killed halfway through — converge to the same final table.
* **Assembly is planned-order.**  :func:`assemble_result` rebuilds the
  :class:`~repro.campaign.runner.CampaignResult` by walking the main
  journal's planned module ids, exactly like the serial runner's
  ``finalize`` — which is why the merged report of a sharded campaign
  is byte-identical to the single-process run (witnessed by
  ``CampaignResult.digest()``).
"""

from __future__ import annotations

import os

from repro.campaign.journal import (
    COMPLETE,
    DEGRADED,
    CampaignJournal,
    CampaignMeta,
    UnknownCampaignError,
)
from repro.campaign.runner import CampaignResult
from repro.core.generation import GenerationReport


def shard_plan(module_ids: "list[str]", n_shards: int) -> "list[list[str]]":
    """Round-robin the planned module ids across ``n_shards``.

    Deterministic in the input order, so the supervisor and any resumer
    derive identical shards from the journaled plan.  Shards may be
    empty when there are more workers than modules — the merge
    tolerates zero-row shard journals.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be at least 1, got {n_shards}")
    shards: "list[list[str]]" = [[] for _ in range(n_shards)]
    for index, module_id in enumerate(module_ids):
        shards[index % n_shards].append(module_id)
    return shards


def shard_journal_path(db_path: "str | os.PathLike", shard: int) -> str:
    """The derived per-shard SQLite file of shard ``shard``."""
    return f"{db_path}.shard-{shard:02d}"


def shard_campaign_id(campaign_id: str, shard: int) -> str:
    """The campaign id a worker runs its shard under (in its own
    journal), namespaced so shard rows can never collide with the main
    campaign even if both tables land in one file."""
    return f"{campaign_id}::shard-{shard:02d}"


# ----------------------------------------------------------------------
# Merge
# ----------------------------------------------------------------------
def merge_shard_journal(
    main: CampaignJournal,
    campaign_id: str,
    shard_path: "str | os.PathLike",
    shard_cid: str,
) -> int:
    """Copy one shard journal's entries into the main journal.

    Idempotent and tolerant by construction:

    * A missing shard file, or one whose campaign row was never created
      (the worker died before its first commit), contributes nothing.
    * ``record_done`` / ``record_skipped`` are keyed
      ``(campaign_id, module_id)`` upserts, so merging the same shard
      twice — or merging duplicate rows left by a restarted worker —
      lands on the same final table.

    Returns:
        Entries copied (0 for absent/empty shards).
    """
    if not os.path.exists(str(shard_path)):
        return 0
    shard_journal = CampaignJournal(shard_path)
    try:
        try:
            shard_journal.meta(shard_cid)
        except UnknownCampaignError:
            return 0
        entries = shard_journal.entries(shard_cid)
        for entry in entries.values():
            if entry.status == "done":
                main.record_done(campaign_id, entry.report)
            else:
                main.record_skipped(campaign_id, entry.module_id, entry.detail)
        return len(entries)
    finally:
        shard_journal.close()


def assemble_result(
    journal: CampaignJournal,
    campaign_id: str,
    breaker_states: "dict[str, dict] | None" = None,
    drift: "list | None" = None,
) -> CampaignResult:
    """Rebuild the campaign result from the merged main journal.

    The exact planned-order reassembly of the serial runner's
    ``finalize``: walk ``meta.module_ids``, collect done reports and
    skip reasons, persist the terminal status.  Because per-module
    reports are deterministic and the walk order is the journaled plan,
    this renders and digests byte-identically to the single-process run.
    """
    meta = journal.meta(campaign_id)
    entries = journal.entries(campaign_id)
    reports: "dict[str, GenerationReport]" = {}
    skipped: "dict[str, str]" = {}
    for module_id in meta.module_ids:
        entry = entries.get(module_id)
        if entry is not None and entry.status == "done":
            reports[module_id] = entry.report
        else:
            detail = entry.detail if entry is not None else "never attempted"
            skipped[module_id] = detail
    status = COMPLETE if not skipped else DEGRADED
    journal.set_status(campaign_id, status)
    return CampaignResult(
        campaign_id=campaign_id,
        seed=meta.seed,
        status=status,
        reports=reports,
        skipped=skipped,
        breaker_states=breaker_states or {},
        n_planned=len(meta.module_ids),
        drift=drift or [],
    )


# ----------------------------------------------------------------------
# Read-only worker views (CLI `campaign workers`, `top`, Prometheus)
# ----------------------------------------------------------------------
def shard_statuses(
    db_path: "str | os.PathLike", campaign_id: str, n_shards: int
) -> "list[dict | None]":
    """The latest heartbeat row of every shard (``None`` where a shard
    journal does not exist yet or holds no heartbeat)."""
    statuses: "list[dict | None]" = []
    for shard in range(n_shards):
        path = shard_journal_path(db_path, shard)
        if not os.path.exists(str(path)):
            statuses.append(None)
            continue
        shard_journal = CampaignJournal(path)
        try:
            statuses.append(
                shard_journal.shard_status(
                    shard_campaign_id(campaign_id, shard), shard
                )
            )
        finally:
            shard_journal.close()
    return statuses


def worker_rows(
    db_path: "str | os.PathLike",
    campaign_id: str,
    meta: "CampaignMeta | None" = None,
    events: "list[dict] | None" = None,
    now: "float | None" = None,
) -> "list[dict]":
    """Per-shard worker rows for dashboards and metrics.

    Everything is read from the journals alone — the supervisor may be
    alive in another process, or long dead — so ``repro-cli top`` and
    ``campaign workers`` reconstruct the worker fleet post-mortem.

    Args:
        db_path: The main journal file (shard paths derive from it).
        campaign_id: The campaign.
        meta: Pre-fetched main-journal meta (opened on demand if None).
        events: Pre-fetched worker-event timeline (fetched if None).
        now: Wall clock for heartbeat ages, injectable for tests.
    """
    import time as _time

    if meta is None or events is None:
        main = CampaignJournal(db_path)
        try:
            if meta is None:
                meta = main.meta(campaign_id)
            if events is None:
                events = main.worker_events(campaign_id)
        finally:
            main.close()
    config = meta.config or {}
    n_shards = max(1, int(config.get("workers", 1) or 1))
    heartbeat_timeout = float(config.get("heartbeat_timeout", 10.0) or 10.0)
    plan = shard_plan(list(meta.module_ids), n_shards)
    now = now if now is not None else _time.time()

    restarts = [0] * n_shards
    degraded = [False] * n_shards
    for event in events:
        if 0 <= event["shard"] < n_shards:
            if event["kind"] == "restart":
                restarts[event["shard"]] += 1
            elif event["kind"] == "shard-degraded":
                degraded[event["shard"]] = True

    rows: "list[dict]" = []
    for shard, status in enumerate(
        shard_statuses(db_path, campaign_id, n_shards)
    ):
        n_done = n_skipped = 0
        path = shard_journal_path(db_path, shard)
        if os.path.exists(str(path)):
            shard_journal = CampaignJournal(path)
            try:
                counts = shard_journal.progress_counts(
                    shard_campaign_id(campaign_id, shard)
                )
                n_done, n_skipped = counts["n_done"], counts["n_skipped"]
            finally:
                shard_journal.close()
        heartbeat_age = (
            max(0.0, now - status["heartbeat_wall"])
            if status is not None
            else None
        )
        phase = status["phase"] if status is not None else "pending"
        if degraded[shard]:
            phase = "degraded"
        rows.append(
            {
                "shard": shard,
                "worker": status["worker"] if status is not None else shard,
                "pid": status["pid"] if status is not None else 0,
                "attempt": status["attempt"] if status is not None else 0,
                "phase": phase,
                "invocations": (
                    status["invocations"] if status is not None else 0
                ),
                "n_planned": len(plan[shard]),
                "n_done": n_done,
                "n_skipped": n_skipped,
                "restarts": restarts[shard],
                "heartbeat_age": heartbeat_age,
                "alive": (
                    phase == "running"
                    and heartbeat_age is not None
                    and heartbeat_age <= heartbeat_timeout
                ),
                "stats": status["stats"] if status is not None else {},
            }
        )
    return rows


def merged_worker_stats(rows: "list[dict]") -> dict:
    """Fold the per-worker journaled snapshots into one campaign-wide
    engine-stats view (:func:`repro.engine.telemetry.merge_stats_snapshots`)."""
    from repro.engine.telemetry import merge_stats_snapshots

    return merge_stats_snapshots([row["stats"] for row in rows])
