"""The campaign supervisor: spawn, watch, restart, merge.

Drives a sharded multi-process campaign end to end:

1. **Plan.**  Round-robin the planned modules into ``config.workers``
   shards (:func:`repro.campaign.sharding.shard_plan`) and journal the
   campaign row in the *main* journal — the single durable record a
   resumed supervisor needs to re-derive everything.
2. **Spawn.**  One ``spawn``-context process per shard
   (:func:`repro.campaign.worker.shard_worker_main`), each writing its
   own per-shard journal.  Process chaos (kill-at-invocation-K,
   kill-rate, stall-heartbeat) is armed only on a shard's first
   attempt, so recovery always converges.
3. **Supervise.**  A poll loop watches exit codes and heartbeat rows.
   A worker that died (crash, chaos kill, OOM-kill) or went mute past
   ``heartbeat_timeout`` (wedged) is SIGKILLed and its shard is
   reassigned to a fresh worker after exponential backoff — up to
   ``max_restarts`` times, after which the shard is declared degraded
   and its unfinished modules are journaled skipped.  Every lifecycle
   event (spawn, heartbeat-miss, crash, restart, shard-reassign,
   shard-done, shard-degraded) is committed to the main journal, so the
   post-mortem timeline reconstructs from the file alone.
4. **Merge + finalize.**  Shard entries are upserted into the main
   journal (idempotent), degraded shards' gaps are journaled skipped,
   and the result is assembled in planned order — byte-identical to the
   serial runner's report, including after the supervisor itself was
   SIGKILLed at *any* point (``resume`` re-derives the plan, respawns
   unfinished shards, and re-merges).

The supervisor never builds an invocation engine: all telemetry is
merged from the per-worker snapshots journaled at heartbeat boundaries.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable

from repro.campaign.journal import CampaignJournal
from repro.campaign.runner import (
    CampaignConfig,
    CampaignResult,
    evaluate_drift,
)
from repro.campaign.sharding import (
    assemble_result,
    merge_shard_journal,
    shard_campaign_id,
    shard_journal_path,
    shard_plan,
)
from repro.campaign.worker import shard_worker_main, worker_config
from repro.obs.propagation import TraceContext, campaign_trace_id


@dataclass
class _ShardState:
    """Supervision bookkeeping of one shard (in-memory only — nothing
    here needs to survive a supervisor crash)."""

    shard: int
    module_ids: "list[str]"
    worker: int
    attempt: int = 0
    restarts: int = 0
    process: "multiprocessing.process.BaseProcess | None" = None
    spawned_at: float = 0.0
    restart_at: float = 0.0
    done: bool = False
    degraded: bool = False

    @property
    def finished(self) -> bool:
        return self.done or self.degraded


class CampaignSupervisor:
    """Runs and resumes sharded campaigns over worker processes.

    Args:
        db_path: The main journal SQLite file (shard journal paths
            derive from it).
        module_ids: The planned module ids, catalog order
            (``config.limit`` truncates; only consulted by ``run`` —
            ``resume`` replans from the journal).
        config: Campaign knobs; ``config.workers`` is the shard count.
        wall_clock: Wall-clock source for heartbeat ages, injectable.
        sleep: Poll-loop sleep, injectable.
    """

    def __init__(
        self,
        db_path: str,
        module_ids: "list[str]",
        config: CampaignConfig = CampaignConfig(),
        wall_clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if config.workers < 1:
            raise ValueError(f"workers must be at least 1, got {config.workers}")
        self.db_path = str(db_path)
        self.module_ids = list(module_ids)
        self.config = config
        self._wall = wall_clock
        self._sleep = sleep
        self._mp = multiprocessing.get_context("spawn")
        self._next_worker = 0

    # ------------------------------------------------------------------
    def run(self, campaign_id: str) -> CampaignResult:
        """Start a fresh sharded campaign and drive it to a result.

        Raises:
            ValueError: The campaign id is already journaled (use
                ``resume``).
        """
        planned = (
            self.module_ids[: self.config.limit]
            if self.config.limit
            else self.module_ids
        )
        journal = CampaignJournal(self.db_path)
        try:
            journal.create(
                campaign_id, self.config.seed, planned, self.config.to_dict()
            )
            return self._drive(journal, campaign_id, planned, chaos_armed=True)
        finally:
            journal.close()

    def resume(self, campaign_id: str) -> CampaignResult:
        """Continue after the supervisor itself died (or was killed).

        The shard plan re-derives deterministically from the journaled
        module ids; workers resume their shard journals (any subset of
        which may exist); the merge is idempotent.  Chaos is never
        re-armed on resume, so a chaos-killed campaign converges.

        Raises:
            UnknownCampaignError: No such campaign in the main journal.
        """
        journal = CampaignJournal(self.db_path)
        try:
            meta = journal.meta(campaign_id)
            self.config = CampaignConfig.from_dict(meta.config)
            journal.set_status(campaign_id, "running")
            return self._drive(
                journal, campaign_id, list(meta.module_ids), chaos_armed=False
            )
        finally:
            journal.close()

    # ------------------------------------------------------------------
    def _drive(
        self,
        journal: CampaignJournal,
        campaign_id: str,
        planned: "list[str]",
        chaos_armed: bool,
    ) -> CampaignResult:
        shards = shard_plan(planned, self.config.workers)
        states = [
            _ShardState(shard=index, module_ids=ids, worker=index)
            for index, ids in enumerate(shards)
        ]
        self._next_worker = len(states)
        for state in states:
            self._spawn(journal, campaign_id, state, chaos_armed, kind="spawn")
        self._supervise(journal, campaign_id, states, chaos_armed)
        return self._merge(journal, campaign_id, states)

    def _spawn(
        self,
        journal: CampaignJournal,
        campaign_id: str,
        state: _ShardState,
        chaos_armed: bool,
        kind: str,
    ) -> None:
        state.attempt += 1
        # Chaos is armed only on the shard's very first attempt of a
        # fresh run: a restarted (or resumed) worker must be allowed to
        # finish, or a kill-at-invocation plan would loop forever.
        has_chaos = (
            self.config.chaos_kill_at > 0
            or self.config.chaos_kill_rate > 0
            or self.config.chaos_stall_after > 0
        )
        armed = chaos_armed and state.attempt == 1 and has_chaos
        spec = {
            "worker": state.worker,
            "shard": state.shard,
            "attempt": state.attempt,
            "journal_path": shard_journal_path(self.db_path, state.shard),
            "campaign_id": shard_campaign_id(campaign_id, state.shard),
            "module_ids": state.module_ids,
            "config": worker_config(self.config, chaos_armed=armed).to_dict(),
            # The campaign's trace id is *derived* from the campaign id,
            # so a resumed supervisor (fresh process, journal only)
            # stamps the same id and the fleet trace stays one trace.
            "trace_context": TraceContext(
                trace_id=campaign_trace_id(campaign_id)
            ).to_dict(),
        }
        process = self._mp.Process(
            target=shard_worker_main,
            args=(spec,),
            name=f"repro-shard-{state.shard:02d}",
        )
        process.start()
        state.process = process
        state.spawned_at = self._wall()
        journal.record_worker_event(
            campaign_id,
            worker=state.worker,
            shard=state.shard,
            kind=kind,
            detail=(
                f"pid {process.pid} attempt {state.attempt} "
                f"({len(state.module_ids)} modules"
                f"{', chaos armed' if armed else ''})"
            ),
            t_wall=state.spawned_at,
        )

    # ------------------------------------------------------------------
    def _supervise(
        self,
        journal: CampaignJournal,
        campaign_id: str,
        states: "list[_ShardState]",
        chaos_armed: bool,
    ) -> None:
        poll = max(0.05, min(0.2, self.config.heartbeat_interval / 2.0))
        while not all(state.finished for state in states):
            for state in states:
                if state.finished:
                    continue
                if state.process is None:
                    # Waiting out restart backoff.
                    if self._wall() >= state.restart_at:
                        self._spawn(
                            journal, campaign_id, state, chaos_armed,
                            kind="restart",
                        )
                    continue
                exitcode = state.process.exitcode
                if exitcode is not None:
                    state.process.join()
                    if exitcode == 0:
                        state.done = True
                        journal.record_worker_event(
                            campaign_id,
                            worker=state.worker,
                            shard=state.shard,
                            kind="shard-done",
                            detail=f"attempt {state.attempt}",
                        )
                    else:
                        journal.record_worker_event(
                            campaign_id,
                            worker=state.worker,
                            shard=state.shard,
                            kind="crash",
                            detail=f"exit code {exitcode}",
                        )
                        self._schedule_restart(journal, campaign_id, state)
                    continue
                if self._heartbeat_stale(campaign_id, state):
                    journal.record_worker_event(
                        campaign_id,
                        worker=state.worker,
                        shard=state.shard,
                        kind="heartbeat-miss",
                        detail=(
                            f"no heartbeat for "
                            f">{self.config.heartbeat_timeout:g}s — killing "
                            f"pid {state.process.pid}"
                        ),
                    )
                    state.process.kill()
                    state.process.join()
                    self._schedule_restart(journal, campaign_id, state)
            if not all(state.finished for state in states):
                self._sleep(poll)

    def _heartbeat_stale(self, campaign_id: str, state: _ShardState) -> bool:
        """Is the shard's latest journaled heartbeat older than the
        timeout?  Before the first beat lands, staleness is measured
        from the spawn instant (world rebuild takes a moment)."""
        shard_path = shard_journal_path(self.db_path, state.shard)
        last = state.spawned_at
        if os.path.exists(shard_path):
            shard_journal = CampaignJournal(shard_path)
            try:
                status = shard_journal.shard_status(
                    shard_campaign_id(campaign_id, state.shard), state.shard
                )
            finally:
                shard_journal.close()
            if status is not None and status["attempt"] == state.attempt:
                last = max(last, status["heartbeat_wall"])
        return self._wall() - last > self.config.heartbeat_timeout

    def _schedule_restart(
        self, journal: CampaignJournal, campaign_id: str, state: _ShardState
    ) -> None:
        state.process = None
        if state.restarts >= self.config.max_restarts:
            state.degraded = True
            journal.record_worker_event(
                campaign_id,
                worker=state.worker,
                shard=state.shard,
                kind="shard-degraded",
                detail=(
                    f"restart budget exhausted "
                    f"({self.config.max_restarts} restarts)"
                ),
            )
            return
        backoff = self.config.restart_backoff * (2 ** state.restarts)
        state.restarts += 1
        state.restart_at = self._wall() + backoff
        old_worker, state.worker = state.worker, self._next_worker
        self._next_worker += 1
        journal.record_worker_event(
            campaign_id,
            worker=state.worker,
            shard=state.shard,
            kind="shard-reassign",
            detail=(
                f"worker {old_worker} -> {state.worker}, "
                f"restart {state.restarts}/{self.config.max_restarts} "
                f"after {backoff:g}s backoff"
            ),
        )

    # ------------------------------------------------------------------
    def _merge(
        self,
        journal: CampaignJournal,
        campaign_id: str,
        states: "list[_ShardState]",
    ) -> CampaignResult:
        """Deterministic journal-merge: upsert every shard's entries,
        fill degraded shards' gaps with skip rows, assemble planned-
        order.  Idempotent end to end — a supervisor SIGKILLed anywhere
        in here re-merges to the same table on resume."""
        for state in states:
            merge_shard_journal(
                journal,
                campaign_id,
                shard_journal_path(self.db_path, state.shard),
                shard_campaign_id(campaign_id, state.shard),
            )
        entries = journal.entries(campaign_id)
        for state in states:
            if not state.degraded:
                continue
            for module_id in state.module_ids:
                if module_id not in entries:
                    journal.record_skipped(
                        campaign_id,
                        module_id,
                        f"shard {state.shard:02d} degraded "
                        f"(restart budget exhausted after "
                        f"{self.config.max_restarts} restarts)",
                    )
        breaker_states = self._merged_breaker(campaign_id, len(states))
        result = assemble_result(
            journal, campaign_id, breaker_states=breaker_states
        )
        result.drift = evaluate_drift(
            journal, campaign_id, self.config.baseline, result.reports
        )
        return result

    def _merged_breaker(
        self, campaign_id: str, n_shards: int
    ) -> "dict[str, dict]":
        """Fold the per-worker breaker snapshots (from the journaled
        heartbeat stats) into one per-provider view for the degradation
        manifest."""
        from repro.campaign.sharding import shard_statuses
        from repro.engine.telemetry import merge_stats_snapshots

        statuses = shard_statuses(self.db_path, campaign_id, n_shards)
        merged = merge_stats_snapshots(
            [status["stats"] for status in statuses if status is not None]
        )
        return merged.get("breaker", {})
