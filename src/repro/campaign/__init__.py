"""Resilient generation campaigns: crash-safe, decay-aware catalog runs.

The campaign layer turns the §3 harvesting loop into a long-running job
that survives the §6 world::

    CampaignRunner          run / resume / finalize over a planned module list
        CampaignJournal     SQLite write-ahead journal of per-module reports
        InvocationEngine    cache + retry + breaker + watchdog + conformance
    render_campaign_report  deterministic final report + degradation manifest

Byzantine modules — ones that hang, answer with the wrong arity, or
answer nondeterministically — produce *quarantined* examples: journaled
and counted (``timed_out_combinations`` / ``quarantined_combinations``)
but never admitted to annotations or matching.

``repro-cli campaign run`` can be killed at any journal boundary;
``campaign resume`` completes the remainder and the finalized report is
byte-identical to an uninterrupted run.  Providers that stay dark past
the deadline end up in the degradation manifest instead of failing the
campaign.

With ``sample_interval`` set, the runner also journals a longitudinal
snapshot timeline and SLO alert history (:mod:`repro.obs.timeseries`,
:mod:`repro.obs.slo`) — observations in their own tables, never part of
report reassembly, so byte-identity is unaffected.  ``baseline`` diffs
every fresh report against an earlier campaign's examples and raises
behavior-drift alerts (:mod:`repro.obs.drift`).
"""

from repro.campaign.journal import (
    COMPLETE,
    DEGRADED,
    RUNNING,
    CampaignJournal,
    CampaignMeta,
    JournalEntry,
    UnknownCampaignError,
    campaign_progress,
    report_from_dict,
    report_to_dict,
)
from repro.campaign.runner import (
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    render_campaign_report,
)

__all__ = [
    "COMPLETE",
    "DEGRADED",
    "RUNNING",
    "CampaignConfig",
    "CampaignJournal",
    "CampaignMeta",
    "CampaignResult",
    "CampaignRunner",
    "JournalEntry",
    "UnknownCampaignError",
    "campaign_progress",
    "render_campaign_report",
    "report_from_dict",
    "report_to_dict",
]
