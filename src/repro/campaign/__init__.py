"""Resilient generation campaigns: crash-safe, decay-aware catalog runs.

The campaign layer turns the §3 harvesting loop into a long-running job
that survives the §6 world::

    CampaignRunner          run / resume / finalize over a planned module list
        CampaignJournal     SQLite write-ahead journal of per-module reports
        InvocationEngine    cache + retry + breaker + watchdog + conformance
    render_campaign_report  deterministic final report + degradation manifest

Byzantine modules — ones that hang, answer with the wrong arity, or
answer nondeterministically — produce *quarantined* examples: journaled
and counted (``timed_out_combinations`` / ``quarantined_combinations``)
but never admitted to annotations or matching.

``repro-cli campaign run`` can be killed at any journal boundary;
``campaign resume`` completes the remainder and the finalized report is
byte-identical to an uninterrupted run.  Providers that stay dark past
the deadline end up in the degradation manifest instead of failing the
campaign.

With ``sample_interval`` set, the runner also journals a longitudinal
snapshot timeline and SLO alert history (:mod:`repro.obs.timeseries`,
:mod:`repro.obs.slo`) — observations in their own tables, never part of
report reassembly, so byte-identity is unaffected.  ``baseline`` diffs
every fresh report against an earlier campaign's examples and raises
behavior-drift alerts (:mod:`repro.obs.drift`).

With ``workers > 1`` the campaign runs sharded across supervised worker
*processes* (:mod:`repro.campaign.supervisor`): each shard writes its
own journal, crashed or wedged workers are restarted with exponential
backoff, and a deterministic journal-merge reconstructs the exact
single-process report — byte-identical even after SIGKILLing workers
and the supervisor itself (:mod:`repro.campaign.sharding`).
"""

from repro.campaign.journal import (
    COMPLETE,
    DEGRADED,
    RUNNING,
    CampaignJournal,
    CampaignMeta,
    JournalEntry,
    UnknownCampaignError,
    campaign_progress,
    report_from_dict,
    report_to_dict,
)
from repro.campaign.runner import (
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    evaluate_drift,
    render_campaign_report,
)
from repro.campaign.sharding import (
    assemble_result,
    merge_shard_journal,
    merged_worker_stats,
    shard_campaign_id,
    shard_journal_path,
    shard_plan,
    shard_statuses,
    worker_rows,
)
from repro.campaign.supervisor import CampaignSupervisor
from repro.campaign.worker import build_world, shard_worker_main, worker_config

__all__ = [
    "COMPLETE",
    "DEGRADED",
    "RUNNING",
    "CampaignConfig",
    "CampaignJournal",
    "CampaignMeta",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSupervisor",
    "JournalEntry",
    "UnknownCampaignError",
    "assemble_result",
    "build_world",
    "campaign_progress",
    "evaluate_drift",
    "merge_shard_journal",
    "merged_worker_stats",
    "render_campaign_report",
    "report_from_dict",
    "report_to_dict",
    "shard_campaign_id",
    "shard_journal_path",
    "shard_plan",
    "shard_statuses",
    "shard_worker_main",
    "worker_config",
    "worker_rows",
]
