"""Resilient whole-catalog generation campaigns.

A *campaign* is the §3 harvesting loop run as a long-lived job against a
decaying world (§6): it generates data examples for a planned list of
modules, journals every completed module (:mod:`repro.campaign.journal`),
fails fast on dark providers through the engine's circuit breaker, and
— when providers stay unreachable past the configured deadline —
degrades gracefully into a partial report with an explicit degradation
manifest instead of failing the whole run.

Execution semantics:

* **Checkpoint/resume.**  ``run`` journals each module as it completes;
  a killed campaign is continued by ``resume``, which re-runs only the
  unjournaled (and previously skipped) modules.  Because generation is
  deterministic per module and the final assembly is planned-order (the
  same input-ordered reassembly the batch scheduler uses), the finalized
  report of a killed-and-resumed campaign is byte-identical to an
  uninterrupted one.
* **Probe rounds.**  A module whose report is incomplete (its provider
  never answered some combinations) is not journaled done; the campaign
  sleeps one probe interval — letting the breaker's half-open probe
  through — and retries, until everything answered or the deadline ran
  out.
* **Degradation.**  Modules still unreachable at the deadline are
  journaled skipped, the campaign is finalized ``degraded``, and the
  report carries the manifest: every skipped module with its reason,
  the breaker state per provider, and the coverage impact.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.campaign.journal import (
    COMPLETE,
    DEGRADED,
    CampaignJournal,
    report_to_dict,
)
from repro.core.generation import ExampleGenerator, GenerationReport
from repro.core.quarantine import QuarantineLog
from repro.engine import (
    BreakerPolicy,
    ConformancePolicy,
    EngineConfig,
    FaultPlan,
    InvocationEngine,
    RetryPolicy,
    WatchdogPolicy,
)
from repro.engine.telemetry import default_clock
from repro.modules.model import Module, ModuleContext
from repro.pool.pool import InstancePool


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of one campaign, journal-serializable for resume.

    Attributes:
        seed: Master seed — the world and the generator derive from it.
        parallelism: Scheduler worker threads (1 = serial).
        cache_size: Invocation-cache capacity (``None`` disables).
        max_attempts: Retry attempts per call.
        retry_base_delay: Backoff before the first retry, seconds.
        fault_rate: Injected transient-failure probability (testing).
        latency_ms: Injected mean latency per call (testing).
        blackout_providers: Providers starting blacked out (testing).
        blackout_calls: Failing calls served per blackout.
        permanent_blackouts: Providers that never recover (testing).
        failure_threshold: Breaker trip threshold (consecutive failures).
        probe_interval: Breaker probe interval and campaign re-probe
            sleep, in seconds.
        deadline: Wall-clock budget for riding out unreachable modules;
            ``None`` skips them after the first pass.
        limit: Only campaign the first N planned modules.
        watchdog_budget: Hard wall-clock budget per invocation, in
            seconds; ``None`` disables the watchdog.
        conformance: Validate every successful invocation's outputs
            against the module's declared interface (on by default —
            the whole catalog conforms, so honest modules pay only the
            check).
        probe_rate: Fraction of successful combinations to double-invoke
            for nondeterminism (0 disables).
        hang_providers: Providers whose calls hang (testing).
        stall_providers: Providers whose calls stall ``stall_ms``
            (testing); empty stalls every provider when ``stall_ms > 0``.
        stall_ms: Fixed extra delay per stalled call (testing).
        corrupt_providers: Providers whose outputs lose a parameter
            (testing).
        nondeterministic_providers: Providers whose outputs vary per
            call (testing).
        trace: Record one span tree per invocation and journal every
            completed trace (the flight recorder).  Off by default —
            the untraced engine pays no tracing cost.
        sample_interval: Seconds between longitudinal samples
            (:mod:`repro.obs.timeseries`); 0 disables sampling.  When
            enabled, every sample is journaled and the SLO evaluator
            runs over the ring, journaling alert transitions.
        baseline: Campaign id (in the same journal) whose reports are
            the behavioral baseline; at finalize, each fresh report is
            diffed against it (:mod:`repro.obs.drift`) and drifting
            modules raise drift alerts.  Empty disables.
        workers: Worker *processes* to shard the catalog across
            (:mod:`repro.campaign.supervisor`); 1 runs in-process.
        heartbeat_interval: Seconds between worker heartbeat commits
            into the shard journal.
        heartbeat_timeout: Heartbeat staleness past which the supervisor
            declares a worker wedged and kills it.
        max_restarts: Restarts allowed per shard before it is declared
            degraded and its remaining modules are journaled skipped.
        restart_backoff: Base delay before a shard restart, doubled per
            restart (exponential backoff).
        chaos_kill_at: Kill the worker process at its Nth invocation
            (process-chaos testing; 0 disables).
        chaos_kill_rate: Per-invocation probability of killing the
            worker process (seeded; testing).
        chaos_stall_after: Stop heartbeating (while staying alive) from
            the Nth invocation on — exercises the supervisor's wedged-
            worker detection (testing; 0 disables).
    """

    seed: int = 2014
    parallelism: int = 1
    cache_size: "int | None" = 4096
    max_attempts: int = 3
    retry_base_delay: float = 0.05
    fault_rate: float = 0.0
    latency_ms: float = 0.0
    blackout_providers: tuple = ()
    blackout_calls: int = 3
    permanent_blackouts: tuple = ()
    failure_threshold: int = 3
    probe_interval: float = 0.1
    deadline: "float | None" = None
    limit: "int | None" = None
    watchdog_budget: "float | None" = None
    conformance: bool = True
    probe_rate: float = 0.0
    hang_providers: tuple = ()
    stall_providers: tuple = ()
    stall_ms: float = 0.0
    corrupt_providers: tuple = ()
    nondeterministic_providers: tuple = ()
    trace: bool = False
    sample_interval: float = 0.0
    baseline: str = ""
    workers: int = 1
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 10.0
    max_restarts: int = 3
    restart_backoff: float = 0.1
    chaos_kill_at: int = 0
    chaos_kill_rate: float = 0.0
    chaos_stall_after: int = 0

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "parallelism": self.parallelism,
            "cache_size": self.cache_size,
            "max_attempts": self.max_attempts,
            "retry_base_delay": self.retry_base_delay,
            "fault_rate": self.fault_rate,
            "latency_ms": self.latency_ms,
            "blackout_providers": list(self.blackout_providers),
            "blackout_calls": self.blackout_calls,
            "permanent_blackouts": list(self.permanent_blackouts),
            "failure_threshold": self.failure_threshold,
            "probe_interval": self.probe_interval,
            "deadline": self.deadline,
            "limit": self.limit,
            "watchdog_budget": self.watchdog_budget,
            "conformance": self.conformance,
            "probe_rate": self.probe_rate,
            "hang_providers": list(self.hang_providers),
            "stall_providers": list(self.stall_providers),
            "stall_ms": self.stall_ms,
            "corrupt_providers": list(self.corrupt_providers),
            "nondeterministic_providers": list(self.nondeterministic_providers),
            "trace": self.trace,
            "sample_interval": self.sample_interval,
            "baseline": self.baseline,
            "workers": self.workers,
            "heartbeat_interval": self.heartbeat_interval,
            "heartbeat_timeout": self.heartbeat_timeout,
            "max_restarts": self.max_restarts,
            "restart_backoff": self.restart_backoff,
            "chaos_kill_at": self.chaos_kill_at,
            "chaos_kill_rate": self.chaos_kill_rate,
            "chaos_stall_after": self.chaos_stall_after,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        data = dict(data)
        for key in (
            "blackout_providers",
            "permanent_blackouts",
            "hang_providers",
            "stall_providers",
            "corrupt_providers",
            "nondeterministic_providers",
        ):
            data[key] = tuple(data.get(key, ()))
        return cls(**data)

    # ------------------------------------------------------------------
    def engine_config(self) -> EngineConfig:
        """The invocation-engine stack this campaign runs on."""
        fault_plan = None
        if (
            self.fault_rate > 0
            or self.latency_ms > 0
            or self.blackout_providers
            or self.permanent_blackouts
            or self.hang_providers
            or self.stall_ms > 0
            or self.corrupt_providers
            or self.nondeterministic_providers
            or self.chaos_kill_at > 0
            or self.chaos_kill_rate > 0
            or self.chaos_stall_after > 0
        ):
            fault_plan = FaultPlan(
                seed=self.seed,
                transient_failure_rate=self.fault_rate,
                latency_ms=self.latency_ms,
                blackout_providers=frozenset(self.blackout_providers),
                blackout_calls=self.blackout_calls,
                permanent_blackout_providers=frozenset(self.permanent_blackouts),
                hang_providers=frozenset(self.hang_providers),
                stall_providers=frozenset(self.stall_providers),
                stall_ms=self.stall_ms,
                corrupt_output_providers=frozenset(self.corrupt_providers),
                nondeterministic_providers=frozenset(
                    self.nondeterministic_providers
                ),
                kill_at_invocation=self.chaos_kill_at,
                kill_rate=self.chaos_kill_rate,
                stall_heartbeat_after=self.chaos_stall_after,
            )
        return EngineConfig(
            parallelism=self.parallelism,
            cache_size=self.cache_size,
            retry=RetryPolicy(
                seed=self.seed,
                max_attempts=self.max_attempts,
                base_delay=self.retry_base_delay,
            ),
            fault_plan=fault_plan,
            breaker=BreakerPolicy(
                failure_threshold=self.failure_threshold,
                probe_interval=self.probe_interval,
            ),
            conformance=(
                ConformancePolicy(probe_rate=self.probe_rate, probe_seed=self.seed)
                if self.conformance
                else None
            ),
            watchdog=(
                WatchdogPolicy(budget=self.watchdog_budget)
                if self.watchdog_budget is not None
                else None
            ),
            tracing=self.trace,
        )


@dataclass
class CampaignResult:
    """The finalized outcome of one campaign.

    Attributes:
        campaign_id: The campaign.
        seed: Its master seed.
        status: ``complete`` or ``degraded``.
        reports: Per-module generation reports, planned order (only the
            modules that completed).
        skipped: Skipped module id -> reason, planned order — the
            degradation manifest's core.
        breaker_states: Per-provider circuit snapshot at finalize time.
        n_planned: Modules the campaign set out to annotate.
        drift: Per-module :class:`repro.obs.drift.DriftReport` list when
            the campaign ran against a baseline, module-id order.
    """

    campaign_id: str
    seed: int
    status: str
    reports: "dict[str, GenerationReport]" = field(default_factory=dict)
    skipped: "dict[str, str]" = field(default_factory=dict)
    breaker_states: "dict[str, dict]" = field(default_factory=dict)
    n_planned: int = 0
    drift: "list" = field(default_factory=list)

    @property
    def n_examples(self) -> int:
        return sum(report.n_examples for report in self.reports.values())

    @property
    def timed_out_combinations(self) -> int:
        """Combinations the watchdog abandoned, over all reports."""
        return sum(
            report.timed_out_combinations for report in self.reports.values()
        )

    @property
    def quarantined_combinations(self) -> int:
        """Semantically quarantined combinations, over all reports."""
        return sum(
            report.quarantined_combinations for report in self.reports.values()
        )

    def quarantine_log(self) -> QuarantineLog:
        """Every quarantined example of the campaign, planned order —
        the feed for :func:`repro.workflow.monitoring.analyze_decay`."""
        log = QuarantineLog()
        for report in self.reports.values():
            log.ingest_report(report)
        return log

    @property
    def coverage(self) -> float:
        """Fraction of planned modules that completed."""
        return len(self.reports) / self.n_planned if self.n_planned else 1.0

    def digest(self) -> str:
        """Content digest over every journaled report, planned order.

        Two campaigns that annotated the same modules to the same
        examples share a digest — the byte-identity witness for
        kill/resume testing.
        """
        canonical = json.dumps(
            [report_to_dict(report) for report in self.reports.values()],
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CampaignRunner:
    """Runs, resumes and finalizes campaigns over a module list."""

    def __init__(
        self,
        ctx: ModuleContext,
        catalog: "list[Module]",
        pool: InstancePool,
        journal: CampaignJournal,
        config: CampaignConfig = CampaignConfig(),
        clock: Callable[[], float] = default_clock,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Args:
            ctx: Execution context (universe + ontology).
            catalog: The planned modules (``config.limit`` truncates).
            pool: The annotated instance pool.
            journal: The write-ahead journal (shared across processes
                via its SQLite file).
            config: Campaign knobs; persisted on ``run`` so ``resume``
                in a fresh process reconstructs the same engine.
            clock: Monotonic clock, injectable for tests.
            sleep: Sleep function for probe rounds, injectable for tests.
        """
        self.ctx = ctx
        self.modules = list(catalog[: config.limit] if config.limit else catalog)
        self.by_id = {module.module_id: module for module in self.modules}
        self.journal = journal
        self.config = config
        self._clock = clock
        self._sleep = sleep
        self.engine = InvocationEngine(
            config.engine_config(), clock=clock, sleep=sleep
        )
        self.generator = ExampleGenerator(
            ctx, pool, seed=config.seed, engine=self.engine
        )
        #: The longitudinal sampler, armed per campaign when
        #: ``config.sample_interval > 0`` (see :meth:`_arm_sampler`).
        self.sampler = None
        self._last_sample_at: "float | None" = None

    # ------------------------------------------------------------------
    def _arm_recorder(self, campaign_id: str) -> None:
        """Point the tracer's sink at this campaign's journal.

        The campaign id is only known at ``run``/``resume`` time, so the
        flight recorder is installed here rather than at construction.
        """
        if self.engine.tracer is not None:
            from repro.obs.recorder import FlightRecorder

            self.engine.tracer.sink = FlightRecorder(self.journal, campaign_id)

    def _arm_sampler(self, campaign_id: str) -> None:
        """Install the longitudinal sampler + SLO evaluator.

        Lazy like :meth:`_arm_recorder`: the obs layer is only imported
        when sampling is configured, and the campaign id is only known
        at ``run``/``resume`` time.  The first sample lands immediately
        so every timeline starts with a zero-point for the run segment.
        """
        if self.config.sample_interval <= 0:
            return
        from repro.obs.slo import SLOEvaluator
        from repro.obs.timeseries import CampaignSampler

        self.sampler = CampaignSampler(
            self.engine,
            journal=self.journal,
            campaign_id=campaign_id,
            evaluator=SLOEvaluator(),
            clock=self._clock,
        )
        self.sampler.sample()
        self._last_sample_at = self._clock()

    def _maybe_sample(self) -> None:
        """Take one sample if armed and the interval has elapsed."""
        if self.sampler is None:
            return
        now = self._clock()
        if (
            self._last_sample_at is None
            or now - self._last_sample_at >= self.config.sample_interval
        ):
            self.sampler.sample()
            self._last_sample_at = now

    def run(self, campaign_id: str) -> CampaignResult:
        """Start a fresh campaign and drive it to a finalized result."""
        self.journal.create(
            campaign_id,
            self.config.seed,
            [module.module_id for module in self.modules],
            self.config.to_dict(),
        )
        self._arm_recorder(campaign_id)
        self._arm_sampler(campaign_id)
        self._execute(campaign_id, self.modules)
        return self.finalize(campaign_id)

    def resume(self, campaign_id: str) -> CampaignResult:
        """Continue a journaled campaign: re-run every module without a
        committed report (including previously skipped ones), then
        finalize.

        Raises:
            UnknownCampaignError: No such campaign in the journal.
            KeyError: The journal plans a module this runner's catalog
                does not supply.
        """
        meta = self.journal.meta(campaign_id)
        entries = self.journal.entries(campaign_id)
        pending = [
            self.by_id[module_id]
            for module_id in meta.module_ids
            if entries.get(module_id) is None
            or entries[module_id].status == "skipped"
        ]
        self.journal.set_status(campaign_id, "running")
        self._arm_recorder(campaign_id)
        self._arm_sampler(campaign_id)
        self._execute(campaign_id, pending)
        return self.finalize(campaign_id)

    # ------------------------------------------------------------------
    def _execute(self, campaign_id: str, pending: "list[Module]") -> None:
        start = self._clock()
        pending = list(pending)
        while pending:
            unreachable = [
                module
                for module in self.engine.scheduler.map(
                    lambda module: self._attempt(campaign_id, module), pending
                )
                if module is not None
            ]
            self._maybe_sample()
            if not unreachable:
                return
            deadline = self.config.deadline
            budget_left = (
                deadline is not None and self._clock() - start < deadline
            )
            if not budget_left:
                for module in unreachable:
                    self.journal.record_skipped(
                        campaign_id,
                        module.module_id,
                        f"provider {module.provider} unreachable "
                        f"(breaker {self.engine.breaker.state(module.provider).value})",
                    )
                return
            self._sleep(self.config.probe_interval)
            pending = unreachable

    def _attempt(self, campaign_id: str, module: Module) -> "Module | None":
        """Generate one module; journal on completion, else hand the
        module back for the next probe round."""
        report = self.generator.generate(module)
        if report.complete:
            self.journal.record_done(campaign_id, report)
            return None
        return module

    # ------------------------------------------------------------------
    def finalize(self, campaign_id: str) -> CampaignResult:
        """Assemble the campaign's result in planned order and persist
        its terminal status (``complete`` / ``degraded``)."""
        meta = self.journal.meta(campaign_id)
        entries = self.journal.entries(campaign_id)
        reports: dict[str, GenerationReport] = {}
        skipped: dict[str, str] = {}
        for module_id in meta.module_ids:
            entry = entries.get(module_id)
            if entry is not None and entry.status == "done":
                reports[module_id] = entry.report
            else:
                detail = entry.detail if entry is not None else "never attempted"
                skipped[module_id] = detail
        status = COMPLETE if not skipped else DEGRADED
        self.journal.set_status(campaign_id, status)
        drift = self._evaluate_drift(campaign_id, reports)
        if self.sampler is not None:
            # Close the timeline with a terminal sample so post-mortem
            # reconstruction sees the finalized progress counts.
            self.sampler.sample()
        return CampaignResult(
            campaign_id=campaign_id,
            seed=meta.seed,
            status=status,
            reports=reports,
            skipped=skipped,
            breaker_states=(
                self.engine.breaker.snapshot() if self.engine.breaker else {}
            ),
            n_planned=len(meta.module_ids),
            drift=drift,
        )

    def _evaluate_drift(
        self, campaign_id: str, reports: "dict[str, GenerationReport]"
    ) -> "list":
        return evaluate_drift(
            self.journal,
            campaign_id,
            self.config.baseline,
            reports,
            sampler=self.sampler,
        )


# ----------------------------------------------------------------------
def evaluate_drift(
    journal: CampaignJournal,
    campaign_id: str,
    baseline: str,
    reports: "dict[str, GenerationReport]",
    sampler=None,
) -> "list":
    """Diff fresh reports against a baseline campaign in the same
    journal and journal drift-alert transitions.

    Standalone (not a runner method) so the sharded supervisor — which
    finalizes a merged campaign without ever building an engine — shares
    the exact drift semantics of the in-process runner.

    Alert events are deduplicated against the journal's current fold,
    so a resumed campaign re-running finalize does not append a second
    ``firing`` event for an already-firing module.
    """
    if not baseline:
        return []
    from repro.obs.drift import campaign_drift
    from repro.obs.slo import SLOEvaluator, alert_states

    drift = campaign_drift(journal, baseline, reports)
    evaluator = (
        sampler.evaluator
        if sampler is not None and sampler.evaluator is not None
        else SLOEvaluator()
    )
    t_ms = sampler.elapsed_ms() if sampler is not None else 0.0
    existing = alert_states(journal.alerts(campaign_id))
    for report in drift:
        event = evaluator.register_drift(report, t_ms)
        if event is None:
            continue
        prior = existing.get((event["slo"], event["subject"]))
        if prior is None or prior["state"] != event["state"]:
            journal.record_alert(campaign_id, event)
    return drift


# ----------------------------------------------------------------------
def render_campaign_report(result: CampaignResult) -> str:
    """The campaign's final report.

    Deterministic for complete campaigns: only journaled, planned-order
    content appears (no wall-clock, no telemetry), so a killed-and-
    resumed campaign renders byte-identically to an uninterrupted one.
    Degraded campaigns get the degradation manifest appended.
    """
    lines = [
        f"Campaign {result.campaign_id} (seed {result.seed})",
        f"  modules annotated: {len(result.reports)}/{result.n_planned}",
        f"  data examples:     {result.n_examples}",
        f"  content digest:    {result.digest()}",
    ]
    if result.timed_out_combinations or result.quarantined_combinations:
        lines.append(
            f"  withheld:          {result.timed_out_combinations} timed out, "
            f"{result.quarantined_combinations} quarantined"
        )
    for module_id, report in result.reports.items():
        line = (
            f"    {module_id:<34} examples={report.n_examples:<4} "
            f"invalid={report.invalid_combinations}"
        )
        if report.timed_out_combinations:
            line += f" timed_out={report.timed_out_combinations}"
        if report.quarantined_combinations:
            line += f" quarantined={report.quarantined_combinations}"
        lines.append(line)
    if result.drift:
        from repro.obs.drift import render_drift

        lines.append("")
        lines.append(render_drift(result.drift))
    lines.append(f"  status: {result.status}")
    if result.skipped:
        lines.append("")
        lines.append("Degradation manifest")
        lines.append(
            f"  coverage impact:  {len(result.skipped)}/{result.n_planned} "
            f"modules skipped ({1.0 - result.coverage:.0%} of the plan)"
        )
        lines.append("  skipped modules:")
        for module_id, reason in result.skipped.items():
            lines.append(f"    {module_id:<34} {reason}")
        if result.breaker_states:
            lines.append("  breaker states:")
            for provider, state in result.breaker_states.items():
                lines.append(
                    f"    {provider:<16} {state['state']} "
                    f"(opened {state['times_opened']}x, "
                    f"{state['fast_failures']} fast failures)"
                )
    return "\n".join(lines)
