"""The shard worker: one spawned process, one shard, one journal.

A worker is deliberately thin: it rebuilds the deterministic world from
the seed, restricts the catalog to its shard's module ids, and drives a
plain :class:`~repro.campaign.runner.CampaignRunner` against its *own*
shard journal under its shard campaign id.  That reuse is the whole
point — every crash-tolerance property the serial runner already has
(per-module commits, resume-from-journal, planned-order assembly)
applies verbatim inside each shard, so a worker killed mid-shard and
respawned by the supervisor simply resumes where the journal left off.

On top of the runner the worker adds exactly one thing: a heartbeat
thread that commits a ``shard_status`` row (phase, invocation count,
and the full ``engine.stats()`` snapshot) into the shard journal every
``heartbeat_interval`` seconds.  The snapshot row is how per-worker
telemetry leaves the process without any shared memory; the supervisor
merges the journaled snapshots at checkpoint boundaries.  When the
fault plan's ``stall_heartbeat_after`` chaos trips, the thread stops
committing while the process stays alive — the exact wedged-worker
shape the supervisor's heartbeat timeout must catch.

``shard_worker_main`` must stay a module-level importable function:
the supervisor spawns workers with the ``spawn`` start method (no
fork-inherited state, same behavior everywhere), which pickles the
entry point by qualified name.
"""

from __future__ import annotations

import json
import os
import threading

from repro.campaign.journal import CampaignJournal
from repro.campaign.runner import CampaignConfig, CampaignRunner
from repro.obs.profiler import PROFILE_EVENT_KIND, maybe_start_profiler
from repro.obs.propagation import TraceContext, propagation_scope


def build_world(seed: int = 2014):
    """Rebuild the deterministic world: context, catalog, pool.

    The single world-construction recipe shared by the CLI and every
    spawned shard worker — both must derive the identical catalog from
    the seed or the shard plan would not line up across processes.
    """
    from repro.modules.catalog import default_catalog, default_context
    from repro.ontology import build_mygrid_ontology
    from repro.pool import InstancePool, default_factory

    ctx = default_context(seed)
    catalog = list(default_catalog())
    pool = InstancePool.bootstrap(default_factory(seed), build_mygrid_ontology())
    return ctx, catalog, pool


def worker_config(config: CampaignConfig, chaos_armed: bool) -> CampaignConfig:
    """The per-worker view of the campaign config.

    * ``limit`` is cleared — the supervisor already applied it when
      planning, and the shard module list *is* the limit.
    * ``workers`` collapses to 1 — a worker never recurses into
      sharding.
    * ``baseline`` is cleared — drift evaluation runs once, at the
      supervisor's merge, against the main journal (the baseline
      campaign does not exist in shard journals).
    * Process chaos is stripped unless ``chaos_armed`` — the supervisor
      arms chaos only on a shard's first attempt, so restarted workers
      converge instead of being killed forever.
    """
    from dataclasses import replace

    overrides: dict = {"limit": None, "workers": 1, "baseline": ""}
    if not chaos_armed:
        overrides.update(
            {"chaos_kill_at": 0, "chaos_kill_rate": 0.0, "chaos_stall_after": 0}
        )
    return replace(config, **overrides)


class _Heartbeat(threading.Thread):
    """Commits the worker's liveness + telemetry row on a fixed cadence."""

    def __init__(
        self,
        journal: CampaignJournal,
        campaign_id: str,
        worker: int,
        shard: int,
        attempt: int,
        engine,
        interval: float,
    ) -> None:
        super().__init__(name=f"shard-{shard:02d}-heartbeat", daemon=True)
        self.journal = journal
        self.campaign_id = campaign_id
        self.worker = worker
        self.shard = shard
        self.attempt = attempt
        self.engine = engine
        self.interval = interval
        # NB: not named ``_stop`` — threading.Thread.join() calls an
        # internal ``self._stop()`` method that an Event would shadow.
        self._halt = threading.Event()

    def beat(self, phase: str) -> None:
        injector = self.engine.fault_injector
        self.journal.record_shard_status(
            self.campaign_id,
            self.shard,
            worker=self.worker,
            pid=os.getpid(),
            attempt=self.attempt,
            invocations=(
                injector.invocations
                if injector is not None
                else self.engine.telemetry.snapshot()["counters"].get("calls", 0)
            ),
            phase=phase,
            stats=self.engine.stats(),
        )

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            injector = self.engine.fault_injector
            if injector is not None and injector.heartbeat_stalled.is_set():
                # Chaos: the worker wedges silently — alive but mute.
                continue
            self.beat("running")

    def stop(self, final_phase: "str | None" = None) -> None:
        self._halt.set()
        self.join(timeout=5.0)
        if final_phase is not None:
            self.beat(final_phase)


def shard_worker_main(spec: dict) -> int:
    """Entry point of one spawned shard worker.

    Args:
        spec: ``{"worker", "shard", "attempt", "journal_path",
            "campaign_id" (the shard campaign id), "module_ids",
            "config" (CampaignConfig dict, already worker-shaped)}``.

    Returns:
        0 on a finalized shard (complete *or* degraded-with-skips —
        the supervisor reads the journal, not the exit code, for
        results); nonzero propagates as a crash.
    """
    config = CampaignConfig.from_dict(spec["config"])
    ctx, catalog, pool = build_world(config.seed)
    by_id = {module.module_id: module for module in catalog}
    shard_modules = [by_id[module_id] for module_id in spec["module_ids"]]
    # The supervisor's trace context crossed the spawn boundary in the
    # spec; rebuilding it here makes every span this worker journals
    # carry the campaign-wide trace id plus this process's identity.
    context = TraceContext.from_dict(spec.get("trace_context"))
    profiler = maybe_start_profiler()
    journal = CampaignJournal(spec["journal_path"])
    try:
        runner = CampaignRunner(ctx, shard_modules, pool, journal, config)
        heartbeat = _Heartbeat(
            journal,
            spec["campaign_id"],
            worker=spec["worker"],
            shard=spec["shard"],
            attempt=spec["attempt"],
            engine=runner.engine,
            interval=config.heartbeat_interval,
        )
        heartbeat.beat("running")
        heartbeat.start()
        try:
            with propagation_scope(
                context,
                "shard-worker",
                process_id=spec["shard"],
                worker=spec["worker"],
            ):
                try:
                    runner.run(spec["campaign_id"])
                except ValueError:
                    # The shard campaign already exists: a previous
                    # attempt journaled it before dying.  Resume re-runs
                    # only the unjournaled remainder.
                    runner.resume(spec["campaign_id"])
        finally:
            heartbeat.stop(final_phase="done")
        if profiler is not None:
            journal.record_worker_event(
                spec["campaign_id"],
                worker=spec["worker"],
                shard=spec["shard"],
                kind=PROFILE_EVENT_KIND,
                detail=json.dumps(profiler.stop(), sort_keys=True),
            )
    finally:
        journal.close()
    return 0
