"""The scientific module registry and its SQLite persistence."""

from repro.registry.registry import ModuleRegistry, RegistryEntry
from repro.registry.sqlite_store import load_examples, load_registry, save_registry

__all__ = [
    "ModuleRegistry",
    "RegistryEntry",
    "save_registry",
    "load_registry",
    "load_examples",
]
