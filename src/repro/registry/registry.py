"""The scientific module registry (Figure 3).

The registry stores parameter annotations and the generated data examples,
and answers the queries the architecture's consumers need: curators browse
modules, experiment designers search by the concepts they want to consume
or produce, and the matcher pulls candidate substitutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.examples import DataExample
from repro.modules.model import Category, Module
from repro.ontology.model import Ontology


@dataclass
class RegistryEntry:
    """One registered module plus its annotation artefacts."""

    module: Module
    examples: list[DataExample] = field(default_factory=list)


class ModuleRegistry:
    """In-memory registry of modules, annotations and data examples."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self._entries: dict[str, RegistryEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, module_id: str) -> bool:
        return module_id in self._entries

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, module: Module) -> RegistryEntry:
        """Register a module (idempotent); validates its annotations.

        Raises:
            ValueError: If a parameter is annotated with a concept the
                registry's ontology does not know.
        """
        for parameter in module.inputs + module.outputs:
            if parameter.concept not in self.ontology:
                raise ValueError(
                    f"{module.module_id}: unknown concept {parameter.concept!r}"
                )
        entry = self._entries.get(module.module_id)
        if entry is None:
            entry = RegistryEntry(module=module)
            self._entries[module.module_id] = entry
        return entry

    def attach_examples(self, module_id: str, examples: "list[DataExample]") -> None:
        """Store generated data examples for a registered module.

        Raises:
            KeyError: If the module is not registered.
        """
        self._entries[module_id].examples = list(examples)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, module_id: str) -> RegistryEntry:
        """The entry for ``module_id``.

        Raises:
            KeyError: If the module is not registered.
        """
        return self._entries[module_id]

    def modules(self) -> "list[Module]":
        """All registered modules, registration-ordered."""
        return [entry.module for entry in self._entries.values()]

    def examples_of(self, module_id: str) -> "list[DataExample]":
        """The stored data examples of one module (empty if none)."""
        entry = self._entries.get(module_id)
        return list(entry.examples) if entry else []

    def by_category(self, category: Category) -> "list[Module]":
        """Modules of one Table 3 category."""
        return [m for m in self.modules() if m.category is category]

    def available_modules(self) -> "list[Module]":
        """Modules still supplied by their providers."""
        return [m for m in self.modules() if m.available]

    def consuming(self, concept: str) -> "list[Module]":
        """Modules with an input accepting instances of ``concept`` —
        i.e. whose input annotation subsumes (or equals) it."""
        found = []
        for module in self.modules():
            for parameter in module.inputs:
                if self.ontology.subsumes(parameter.concept, concept):
                    found.append(module)
                    break
        return found

    def producing(self, concept: str) -> "list[Module]":
        """Modules with an output whose annotation is subsumed by
        ``concept`` (their results are usable wherever ``concept`` is
        expected)."""
        found = []
        for module in self.modules():
            for parameter in module.outputs:
                if self.ontology.subsumes(concept, parameter.concept):
                    found.append(module)
                    break
        return found

    def search_by_name(self, needle: str) -> "list[Module]":
        """Case-insensitive substring search over module names."""
        needle = needle.lower()
        return [m for m in self.modules() if needle in m.name.lower()]
