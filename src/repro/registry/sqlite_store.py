"""SQLite persistence for the module registry.

The registry's annotation artefacts — module signatures, parameter
annotations and the generated data examples — are persisted in a small
relational schema, so a curation session can be saved and reloaded without
regenerating examples.  Module *behavior* (the executable branches) is not
serialized: on load, entries are re-bound to live modules by id, exactly
as a real registry references remotely supplied services.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path

from repro.core.examples import Binding, DataExample
from repro.modules.interfaces import value_from_wire, value_to_wire
from repro.modules.model import Module
from repro.registry.registry import ModuleRegistry

_SCHEMA = """
CREATE TABLE IF NOT EXISTS modules (
    module_id TEXT PRIMARY KEY,
    name TEXT NOT NULL,
    category TEXT NOT NULL,
    interface TEXT NOT NULL,
    provider TEXT NOT NULL,
    available INTEGER NOT NULL,
    popularity INTEGER NOT NULL,
    legible INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS parameters (
    module_id TEXT NOT NULL REFERENCES modules(module_id),
    side TEXT NOT NULL CHECK (side IN ('in', 'out')),
    position INTEGER NOT NULL,
    name TEXT NOT NULL,
    structural TEXT NOT NULL,
    concept TEXT NOT NULL,
    optional INTEGER NOT NULL,
    PRIMARY KEY (module_id, side, position)
);
CREATE TABLE IF NOT EXISTS data_examples (
    module_id TEXT NOT NULL REFERENCES modules(module_id),
    ordinal INTEGER NOT NULL,
    PRIMARY KEY (module_id, ordinal)
);
CREATE TABLE IF NOT EXISTS example_bindings (
    module_id TEXT NOT NULL,
    ordinal INTEGER NOT NULL,
    side TEXT NOT NULL CHECK (side IN ('in', 'out')),
    parameter TEXT NOT NULL,
    partition_concept TEXT,
    value_json TEXT NOT NULL,
    FOREIGN KEY (module_id, ordinal)
        REFERENCES data_examples(module_id, ordinal)
);
CREATE INDEX IF NOT EXISTS idx_parameters_concept ON parameters(concept);
"""


def save_registry(registry: ModuleRegistry, path: "str | Path") -> None:
    """Persist signatures, annotations and examples to a SQLite file."""
    connection = sqlite3.connect(str(path))
    try:
        with connection:
            connection.executescript(_SCHEMA)
            connection.execute("DELETE FROM example_bindings")
            connection.execute("DELETE FROM data_examples")
            connection.execute("DELETE FROM parameters")
            connection.execute("DELETE FROM modules")
            for module in registry.modules():
                connection.execute(
                    "INSERT INTO modules VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        module.module_id,
                        module.name,
                        module.category.value,
                        module.interface.value,
                        module.provider,
                        int(module.available),
                        module.popularity,
                        int(module.legible),
                    ),
                )
                for side, parameters in (("in", module.inputs), ("out", module.outputs)):
                    for position, parameter in enumerate(parameters):
                        connection.execute(
                            "INSERT INTO parameters VALUES (?, ?, ?, ?, ?, ?, ?)",
                            (
                                module.module_id,
                                side,
                                position,
                                parameter.name,
                                parameter.structural.name,
                                parameter.concept,
                                int(parameter.optional),
                            ),
                        )
                for ordinal, example in enumerate(
                    registry.examples_of(module.module_id)
                ):
                    connection.execute(
                        "INSERT INTO data_examples VALUES (?, ?)",
                        (module.module_id, ordinal),
                    )
                    for side, bindings in (
                        ("in", example.inputs),
                        ("out", example.outputs),
                    ):
                        for binding in bindings:
                            connection.execute(
                                "INSERT INTO example_bindings VALUES (?, ?, ?, ?, ?, ?)",
                                (
                                    module.module_id,
                                    ordinal,
                                    side,
                                    binding.parameter,
                                    binding.partition,
                                    json.dumps(value_to_wire(binding.value)),
                                ),
                            )
    finally:
        connection.close()


def load_examples(path: "str | Path") -> dict[str, "list[DataExample]"]:
    """Load the persisted data examples, keyed by module id."""
    connection = sqlite3.connect(str(path))
    try:
        examples: dict[str, list[DataExample]] = {}
        cursor = connection.execute(
            "SELECT module_id, ordinal FROM data_examples ORDER BY module_id, ordinal"
        )
        keys = cursor.fetchall()
        for module_id, ordinal in keys:
            rows = connection.execute(
                "SELECT side, parameter, partition_concept, value_json "
                "FROM example_bindings WHERE module_id = ? AND ordinal = ? ",
                (module_id, ordinal),
            ).fetchall()
            inputs = []
            outputs = []
            for side, parameter, partition, value_json in rows:
                binding = Binding(
                    parameter=parameter,
                    value=value_from_wire(json.loads(value_json)),
                    partition=partition,
                )
                (inputs if side == "in" else outputs).append(binding)
            examples.setdefault(module_id, []).append(
                DataExample(
                    module_id=module_id,
                    inputs=tuple(inputs),
                    outputs=tuple(outputs),
                )
            )
        return examples
    finally:
        connection.close()


def load_registry(
    path: "str | Path",
    registry: ModuleRegistry,
    live_modules: dict[str, Module],
) -> int:
    """Rebind persisted entries to live modules and restore examples.

    Returns:
        Number of modules restored (persisted modules without a live
        counterpart are skipped — their providers are gone for good).
    """
    connection = sqlite3.connect(str(path))
    try:
        ids = [
            row[0]
            for row in connection.execute("SELECT module_id FROM modules").fetchall()
        ]
    finally:
        connection.close()
    examples = load_examples(path)
    restored = 0
    for module_id in ids:
        module = live_modules.get(module_id)
        if module is None:
            continue
        registry.register(module)
        registry.attach_examples(module_id, examples.get(module_id, []))
        restored += 1
    return restored
