"""Per-provider circuit breaker for the invocation engine.

The decay phenomenon of §6 is provider-granular: when a provider goes
dark, *every* module it supplies fails, and a harvesting campaign that
keeps calling it burns a full retry budget per invocation for nothing.
The breaker is the classic three-state machine, keyed per provider:

* **closed** — calls flow through; consecutive availability failures are
  counted, and reaching ``failure_threshold`` trips the breaker open;
* **open** — calls fail fast with :class:`CircuitOpenError` *without*
  touching the wrapped invoker (and therefore without consuming any
  retry budget), until ``probe_interval`` seconds have elapsed;
* **half-open** — the next call is admitted as a probe; a failure
  re-opens the breaker, while ``half_open_successes`` consecutive
  successes close it again.

Placement matters: the breaker wraps the *retrying* invoker, so one
tripped provider costs at most ``failure_threshold`` fully-retried calls
plus one probe per ``probe_interval`` — O(probe interval), not O(catalog).

Only :class:`~repro.modules.errors.ModuleUnavailableError` counts as a
failure.  An abnormal termination (``InvalidInputError``) is a *response*:
the provider answered, so it feeds the success path.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Callable

from repro.engine.telemetry import default_clock
from repro.modules.errors import ModuleUnavailableError
from repro.modules.model import Module, ModuleContext
from repro.values import TypedValue


class CircuitOpenError(ModuleUnavailableError):
    """Fast failure served by an open circuit — the provider was not
    called.  Subclasses :class:`ModuleUnavailableError` so every existing
    caller keeps treating it as an availability failure."""


class BreakerState(enum.Enum):
    """The three states of one provider's circuit."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs of one circuit breaker.

    Attributes:
        failure_threshold: Consecutive availability failures that trip a
            closed circuit open.
        probe_interval: Seconds an open circuit waits before admitting a
            probe call (the open → half-open transition).
        half_open_successes: Consecutive probe successes that close a
            half-open circuit.
    """

    failure_threshold: int = 5
    probe_interval: float = 30.0
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.probe_interval < 0:
            raise ValueError("probe_interval must be non-negative")
        if self.half_open_successes < 1:
            raise ValueError("half_open_successes must be at least 1")


@dataclass
class _Circuit:
    """Mutable state of one provider's circuit."""

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    opened_at: float = 0.0
    times_opened: int = 0
    fast_failures: int = 0


class CircuitBreaker:
    """A thread-safe set of per-provider circuits under one policy."""

    def __init__(
        self,
        policy: BreakerPolicy = BreakerPolicy(),
        clock: Callable[[], float] = default_clock,
        on_transition: "Callable[[str, BreakerState, BreakerState], None] | None" = None,
    ) -> None:
        """Args:
            policy: Thresholds and probe timing.
            clock: Monotonic clock, injectable for tests.
            on_transition: Called as ``(provider, old_state, new_state)``
                on every state change (telemetry hook).
        """
        self.policy = policy
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._circuits: dict[str, _Circuit] = {}

    # ------------------------------------------------------------------
    def _circuit(self, provider: str) -> _Circuit:
        circuit = self._circuits.get(provider)
        if circuit is None:
            circuit = _Circuit()
            self._circuits[provider] = circuit
        return circuit

    def _transition(self, provider: str, circuit: _Circuit, new: BreakerState) -> None:
        old = circuit.state
        if old is new:
            return
        circuit.state = new
        if new is BreakerState.OPEN:
            circuit.opened_at = self._clock()
            circuit.times_opened += 1
            circuit.consecutive_successes = 0
        elif new is BreakerState.CLOSED:
            circuit.consecutive_failures = 0
            circuit.consecutive_successes = 0
        if self._on_transition is not None:
            self._on_transition(provider, old, new)

    # ------------------------------------------------------------------
    def state(self, provider: str) -> BreakerState:
        """The provider's current state (an unseen provider is closed)."""
        with self._lock:
            circuit = self._circuits.get(provider)
            return circuit.state if circuit else BreakerState.CLOSED

    def allow(self, provider: str) -> bool:
        """Admit or fast-fail a call to ``provider``.

        An open circuit whose probe interval has elapsed transitions to
        half-open and admits the call as a probe.
        """
        with self._lock:
            circuit = self._circuit(provider)
            if circuit.state is BreakerState.OPEN:
                waited = self._clock() - circuit.opened_at
                if waited >= self.policy.probe_interval:
                    self._transition(provider, circuit, BreakerState.HALF_OPEN)
                    return True
                circuit.fast_failures += 1
                return False
            return True

    def record_success(self, provider: str) -> None:
        """Feed one successful (answered) call into the circuit."""
        with self._lock:
            circuit = self._circuit(provider)
            circuit.consecutive_failures = 0
            if circuit.state is BreakerState.HALF_OPEN:
                circuit.consecutive_successes += 1
                if circuit.consecutive_successes >= self.policy.half_open_successes:
                    self._transition(provider, circuit, BreakerState.CLOSED)

    def record_failure(self, provider: str) -> None:
        """Feed one availability failure into the circuit."""
        with self._lock:
            circuit = self._circuit(provider)
            circuit.consecutive_failures += 1
            if circuit.state is BreakerState.HALF_OPEN:
                self._transition(provider, circuit, BreakerState.OPEN)
            elif (
                circuit.state is BreakerState.CLOSED
                and circuit.consecutive_failures >= self.policy.failure_threshold
            ):
                self._transition(provider, circuit, BreakerState.OPEN)

    # ------------------------------------------------------------------
    def open_providers(self) -> "list[str]":
        """Providers whose circuit is currently not closed, sorted."""
        with self._lock:
            return sorted(
                provider
                for provider, circuit in self._circuits.items()
                if circuit.state is not BreakerState.CLOSED
            )

    def snapshot(self) -> "dict[str, dict]":
        """JSON-compatible per-provider circuit state."""
        with self._lock:
            return {
                provider: {
                    "state": circuit.state.value,
                    "consecutive_failures": circuit.consecutive_failures,
                    "times_opened": circuit.times_opened,
                    "fast_failures": circuit.fast_failures,
                }
                for provider, circuit in sorted(self._circuits.items())
            }


class CircuitBreakingInvoker:
    """Wraps an invoker with a per-provider :class:`CircuitBreaker`.

    Sits *outside* the retry layer: a fast failure never reaches (and
    never re-arms) the retry policy, which is the whole point.
    """

    def __init__(
        self,
        inner,
        breaker: CircuitBreaker,
        on_fast_fail: "Callable[[Module], None] | None" = None,
    ) -> None:
        self.inner = inner
        self.breaker = breaker
        self._on_fast_fail = on_fast_fail

    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Invoke through the circuit.

        Raises:
            CircuitOpenError: The provider's circuit is open; the call
                was not attempted.
            ModuleInvocationError: Whatever the wrapped invoker raises.
        """
        provider = module.provider
        if not self.breaker.allow(provider):
            if self._on_fast_fail is not None:
                self._on_fast_fail(module)
            raise CircuitOpenError(
                f"{module.module_id}: circuit open for provider {provider}"
            )
        try:
            outputs = self.inner.invoke(module, ctx, bindings)
        except ModuleUnavailableError:
            self.breaker.record_failure(provider)
            raise
        except Exception:
            # The provider answered, just not happily (invalid input,
            # transport-level complaint): the circuit stays healthy.
            self.breaker.record_success(provider)
            raise
        self.breaker.record_success(provider)
        return outputs
