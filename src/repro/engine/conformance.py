"""Output-conformance validation: catch modules that lie.

The generation heuristic (§3.2) admits a data example whenever an
invocation "terminates normally" — but a decayed or buggy module can
terminate normally while violating its own declared interface: wrong
output arity or parameter names, values of the wrong structural type,
values outside the annotated semantic domain, or different answers to
identical questions.  Admitting such outputs silently poisons the
annotations (§5) and the Figure-8 behavior matches (§6) the examples
exist to support.

The conforming invoker validates every *successful* invocation against
the module's declared interface before the result is allowed to
propagate:

* **arity** — the output binding names must equal the declared output
  parameter names, no more and no fewer;
* **structure** — each output value's structural type must feed the
  declared ``str(o)`` of its parameter;
* **semantics** — each output value's concept must be subsumed by the
  declared ``sem(o)`` in the annotation ontology (untyped values are
  tolerated; unknown concepts are not).

A violation raises :class:`~repro.modules.errors.MalformedOutputError`
— deliberately *not* an unavailability (the provider answered; circuits
stay closed and nothing is retried) and not an invalid input (the
inputs were fine).  Callers quarantine the combination.

An opt-in **nondeterminism probe** re-invokes a seeded, content-keyed
sample of combinations and compares the canonical wire forms of both
answers; a mismatch raises
:class:`~repro.modules.errors.NondeterministicOutputError` and flags
the module unstable.  The probe decision hashes
``seed:module_id:wire-bindings`` rather than drawing from a sequential
RNG, so the same combination is probed (or not) regardless of call
order, retries, or resume — a requirement for byte-identical resumed
campaigns.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.modules.errors import MalformedOutputError, NondeterministicOutputError
from repro.modules.interfaces import bindings_to_wire
from repro.modules.model import Module, ModuleContext
from repro.values import TypedValue


@dataclass(frozen=True)
class ConformancePolicy:
    """Tuning knobs of one conformance checker.

    Attributes:
        check_arity: Require output names to match the declared outputs.
        check_structure: Require each value to feed its declared
            structural type.
        check_semantics: Require each value's concept to be subsumed by
            the declared ontology annotation.
        probe_rate: Fraction in [0, 1] of successful combinations to
            double-invoke for nondeterminism (0 disables the probe).
        probe_seed: Seed mixed into the content hash that selects which
            combinations are probed.
    """

    check_arity: bool = True
    check_structure: bool = True
    check_semantics: bool = True
    probe_rate: float = 0.0
    probe_seed: int = 2014

    def __post_init__(self) -> None:
        if not 0.0 <= self.probe_rate <= 1.0:
            raise ValueError("probe_rate must lie in [0, 1]")


@dataclass
class ConformanceStats:
    """Violation accounting of one conformance checker.

    Attributes:
        checked: Successful invocations validated.
        arity_violations: Invocations with wrong output names/arity.
        structure_violations: Invocations with a structurally
            incompatible output value.
        semantic_violations: Invocations with a value outside its
            annotated semantic domain.
        probes: Nondeterminism double-invocations performed.
        unstable: Probes whose two answers disagreed.
        unstable_modules: Module ids flagged unstable at least once.
    """

    checked: int = 0
    arity_violations: int = 0
    structure_violations: int = 0
    semantic_violations: int = 0
    probes: int = 0
    unstable: int = 0
    unstable_modules: set = field(default_factory=set)

    @property
    def violations(self) -> int:
        """Total interface violations (arity + structure + semantics)."""
        return (
            self.arity_violations
            + self.structure_violations
            + self.semantic_violations
        )


class ConformingInvoker:
    """Wraps an invoker with a :class:`ConformancePolicy` output check."""

    def __init__(
        self,
        inner,
        policy: ConformancePolicy,
        on_violation: "Callable[[Module, MalformedOutputError], None] | None" = None,
    ) -> None:
        """Args:
            inner: The invoker whose outputs to validate.
            policy: What to check and how often to probe.
            on_violation: Called as ``(module, error)`` for every
                violation, probe mismatches included (telemetry hook).
        """
        self.inner = inner
        self.policy = policy
        self.stats = ConformanceStats()
        self._on_violation = on_violation
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def should_probe(self, module: Module, bindings: dict[str, TypedValue]) -> bool:
        """Whether this combination is in the nondeterminism sample.

        The decision is a pure function of (seed, module, canonical
        bindings) — stable across call order, retries and resume.
        """
        rate = self.policy.probe_rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        token = f"{self.policy.probe_seed}:{module.module_id}:" + bindings_to_wire(
            bindings
        )
        digest = hashlib.sha256(token.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < rate

    # ------------------------------------------------------------------
    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Invoke and validate the outputs.

        Raises:
            MalformedOutputError: The outputs violate the declared
                interface.
            NondeterministicOutputError: The probe's second answer
                differed from the first.
            ModuleInvocationError: Whatever the wrapped invoker raised.
        """
        outputs = self.inner.invoke(module, ctx, bindings)
        with self._lock:
            self.stats.checked += 1
        self._validate(module, ctx, outputs)
        if self.should_probe(module, bindings):
            with self._lock:
                self.stats.probes += 1
            second = self.inner.invoke(module, ctx, bindings)
            if bindings_to_wire(outputs) != bindings_to_wire(second):
                error = NondeterministicOutputError(
                    f"{module.module_id}: two invocations on identical inputs "
                    "returned different canonical outputs",
                    outputs=outputs,
                )
                with self._lock:
                    self.stats.unstable += 1
                    self.stats.unstable_modules.add(module.module_id)
                if self._on_violation is not None:
                    self._on_violation(module, error)
                raise error
        return outputs

    # ------------------------------------------------------------------
    def _validate(
        self, module: Module, ctx: ModuleContext, outputs: dict[str, TypedValue]
    ) -> None:
        policy = self.policy
        if policy.check_arity:
            declared = {p.name for p in module.outputs}
            actual = set(outputs)
            if actual != declared:
                self._fail(
                    module,
                    "arity",
                    MalformedOutputError(
                        f"{module.module_id}: output names {sorted(actual)} != "
                        f"declared {sorted(declared)}",
                        outputs=outputs,
                    ),
                )
        for parameter in module.outputs:
            value = outputs.get(parameter.name)
            if value is None:
                continue  # absence already booked as an arity violation
            if policy.check_structure and not value.feeds(parameter.structural):
                self._fail(
                    module,
                    "structure",
                    MalformedOutputError(
                        f"{module.module_id}: output {parameter.name!r} requires "
                        f"{parameter.structural}, got {value.structural}",
                        outputs=outputs,
                    ),
                )
            if policy.check_semantics and value.concept is not None:
                ontology = ctx.ontology
                if value.concept not in ontology or not ontology.subsumes(
                    parameter.concept, value.concept
                ):
                    self._fail(
                        module,
                        "semantics",
                        MalformedOutputError(
                            f"{module.module_id}: output {parameter.name!r} "
                            f"carries concept {value.concept!r} outside its "
                            f"annotated domain {parameter.concept!r}",
                            outputs=outputs,
                        ),
                    )

    def _fail(self, module: Module, kind: str, error: MalformedOutputError) -> None:
        with self._lock:
            if kind == "arity":
                self.stats.arity_violations += 1
            elif kind == "structure":
                self.stats.structure_violations += 1
            else:
                self.stats.semantic_violations += 1
        if self._on_violation is not None:
            self._on_violation(module, error)
        raise error

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-compatible violation accounting."""
        with self._lock:
            return {
                "checked": self.stats.checked,
                "violations": self.stats.violations,
                "arity_violations": self.stats.arity_violations,
                "structure_violations": self.stats.structure_violations,
                "semantic_violations": self.stats.semantic_violations,
                "probes": self.stats.probes,
                "unstable": self.stats.unstable,
                "unstable_modules": sorted(self.stats.unstable_modules),
            }
