"""Per-module health accounting for long-running campaigns.

Decay detection in the reproduction so far is *static*: a module is dead
when its catalog entry says so.  A real registry operator learns about
decay the other way round — from the observed behavior of harvesting
runs (§6).  The health registry accumulates per-module outcome and
latency statistics as the engine invokes, rolls them up per provider,
and feeds :func:`repro.workflow.monitoring.analyze_decay`, so the decay
report can be driven by what a campaign actually saw.

A module is considered **observed-dead** once its ``dead_after`` most
recent final outcomes were all availability failures.  Transient blips
that a retry policy rode out never reach the registry (the engine only
accounts final outcomes), so a healthy-but-flaky module stays healthy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class HealthRecord:
    """Accumulated observations of one module.

    Attributes:
        module_id: The observed module.
        provider: Its provider (the breaker / decay aggregation key).
        ok: Normal terminations.
        invalid: Abnormal terminations (the module answered).
        unavailable: Availability failures (including breaker fast-fails).
        timeouts: Watchdog abandonments — the module never answered
            inside its wall-clock budget.  Counted separately from plain
            unavailability so a wedged-but-alive provider is
            distinguishable from a dark one, but like unavailability it
            extends ``consecutive_failures`` (no answer is no answer).
        malformed: Normal terminations whose outputs violated the
            declared interface (conformance rejections, nondeterminism
            included).  The provider *answered*, so this resets
            ``consecutive_failures`` — a lying module is semantically
            decayed, not observed-dead.
        transport_errors: Transport-layer failures.
        consecutive_failures: Current run of trailing availability
            failures; reset by any answered call.
        total_latency_ms: Sum of observed call latencies.
        max_latency_ms: Worst observed call latency.
    """

    module_id: str
    provider: str
    ok: int = 0
    invalid: int = 0
    unavailable: int = 0
    timeouts: int = 0
    malformed: int = 0
    transport_errors: int = 0
    consecutive_failures: int = 0
    total_latency_ms: float = 0.0
    max_latency_ms: float = 0.0

    @property
    def calls(self) -> int:
        return (
            self.ok
            + self.invalid
            + self.unavailable
            + self.timeouts
            + self.malformed
            + self.transport_errors
        )

    @property
    def answered(self) -> int:
        """Calls the provider actually responded to (well or badly)."""
        return self.ok + self.invalid + self.malformed

    @property
    def availability(self) -> float:
        """Fraction of calls the provider answered."""
        calls = self.calls
        return self.answered / calls if calls else 1.0

    @property
    def mean_latency_ms(self) -> float:
        calls = self.calls
        return self.total_latency_ms / calls if calls else 0.0


class ModuleHealthRegistry:
    """Thread-safe per-module health stats, fed by the engine.

    Args:
        dead_after: Trailing availability failures after which a module
            counts as observed-dead.
    """

    def __init__(self, dead_after: int = 3) -> None:
        if dead_after < 1:
            raise ValueError("dead_after must be at least 1")
        self.dead_after = dead_after
        self._lock = threading.Lock()
        self._records: dict[str, HealthRecord] = {}
        # Provider-rollup memoization: the summary is recomputed only
        # when an observation has landed since the last computation, so
        # repeated readers (decay analysis, the metrics exporter, the
        # campaign sampler) pay O(modules) once per batch of
        # observations instead of per call.
        self._generation = 0
        self._summary_generation = -1
        self._summary: dict[str, dict] = {}
        #: Times the rollup was actually recomputed (regression tests
        #: pin that readers are O(modules), not O(invocations)).
        self.rollup_computations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # ------------------------------------------------------------------
    def observe(
        self, module_id: str, provider: str, outcome: str, latency_ms: float = 0.0
    ) -> None:
        """Record one final invocation outcome.

        Args:
            module_id: The module invoked.
            provider: Its provider.
            outcome: The engine's accounting label — ``ok`` / ``invalid``
                / ``unavailable`` / ``timeout`` / ``malformed`` /
                ``transport_error``.
            latency_ms: Wall-clock cost of the call.
        """
        with self._lock:
            record = self._records.get(module_id)
            if record is None:
                record = HealthRecord(module_id=module_id, provider=provider)
                self._records[module_id] = record
            if outcome == "ok":
                record.ok += 1
                record.consecutive_failures = 0
            elif outcome == "invalid":
                record.invalid += 1
                record.consecutive_failures = 0
            elif outcome == "unavailable":
                record.unavailable += 1
                record.consecutive_failures += 1
            elif outcome == "timeout":
                record.timeouts += 1
                record.consecutive_failures += 1
            elif outcome == "malformed":
                record.malformed += 1
                record.consecutive_failures = 0
            else:
                record.transport_errors += 1
            record.total_latency_ms += latency_ms
            record.max_latency_ms = max(record.max_latency_ms, latency_ms)
            self._generation += 1

    # ------------------------------------------------------------------
    def record(self, module_id: str) -> "HealthRecord | None":
        """The record of one module, or ``None`` if never observed."""
        with self._lock:
            return self._records.get(module_id)

    def records(self) -> "list[HealthRecord]":
        """All records, sorted by module id."""
        with self._lock:
            return [self._records[key] for key in sorted(self._records)]

    def is_dead(self, module_id: str) -> bool:
        """True when the module's trailing ``dead_after`` outcomes were
        all availability failures."""
        with self._lock:
            record = self._records.get(module_id)
            return (
                record is not None
                and record.consecutive_failures >= self.dead_after
            )

    def dead_modules(self) -> "list[str]":
        """Observed-dead module ids, sorted."""
        with self._lock:
            return sorted(
                module_id
                for module_id, record in self._records.items()
                if record.consecutive_failures >= self.dead_after
            )

    def provider_summary(self) -> "dict[str, dict]":
        """Per-provider rollup: calls, answered, availability, dead.

        Memoized per observation generation: the rollup recomputes only
        when :meth:`observe` has landed since the last computation, and
        every call hands out fresh entry dicts so a caller mutating its
        copy cannot poison the cache.
        """
        with self._lock:
            if self._summary_generation != self._generation:
                summary: dict[str, dict] = {}
                for module_id in sorted(self._records):
                    record = self._records[module_id]
                    entry = summary.setdefault(
                        record.provider,
                        {
                            "calls": 0,
                            "answered": 0,
                            "timeouts": 0,
                            "malformed": 0,
                            "modules": 0,
                            "dead_modules": 0,
                        },
                    )
                    entry["calls"] += record.calls
                    entry["answered"] += record.answered
                    entry["timeouts"] += record.timeouts
                    entry["malformed"] += record.malformed
                    entry["modules"] += 1
                    if record.consecutive_failures >= self.dead_after:
                        entry["dead_modules"] += 1
                for entry in summary.values():
                    entry["availability"] = (
                        entry["answered"] / entry["calls"] if entry["calls"] else 1.0
                    )
                self._summary = summary
                self._summary_generation = self._generation
                self.rollup_computations += 1
            return {
                provider: dict(entry)
                for provider, entry in self._summary.items()
            }

    def snapshot(self) -> dict:
        """JSON-compatible registry state."""
        return {
            "n_modules": len(self),
            "dead_modules": self.dead_modules(),
            "providers": self.provider_summary(),
        }

    def render(self, limit: int = 8) -> str:
        """Operator-facing summary of observed campaign health."""
        dead = self.dead_modules()
        lines = [
            "Module health — observed by the engine",
            f"  modules observed:  {len(self)}",
            f"  observed-dead:     {len(dead)}",
        ]
        for module_id in dead[:limit]:
            lines.append(f"    {module_id}")
        unhealthy = [
            (provider, entry)
            for provider, entry in sorted(self.provider_summary().items())
            if entry["availability"] < 1.0
        ]
        if unhealthy:
            lines.append("  degraded providers:")
            for provider, entry in unhealthy:
                lines.append(
                    f"    {provider:<16} availability "
                    f"{entry['availability']:.0%} over {entry['calls']} calls"
                )
        byzantine = [
            (provider, entry)
            for provider, entry in sorted(self.provider_summary().items())
            if entry["timeouts"] or entry["malformed"]
        ]
        if byzantine:
            lines.append("  byzantine providers:")
            for provider, entry in byzantine:
                lines.append(
                    f"    {provider:<16} {entry['timeouts']} timeouts, "
                    f"{entry['malformed']} malformed outputs"
                )
        return "\n".join(lines)
