"""Seeded fault injection for invocation robustness testing.

Real harvesting suffers the decay phenomenon of §6 — providers blink out,
calls stall, whole hosts go dark for a while.  Reproducing that against
live endpoints is neither deterministic nor kind; the fault injector
wraps any invoker and manufactures the same weather from a seed:

* *transient faults* — a seeded coin flip turns a call into a
  :class:`~repro.modules.errors.ModuleUnavailableError` before it
  reaches the endpoint;
* *injected latency* — every call sleeps a jittered interval first,
  modelling the network round trip the simulators don't have;
* *provider blackouts* — the first ``blackout_calls`` calls to a
  blacked-out provider fail, after which the provider "recovers" —
  exactly the shape a retry policy must ride out;
* *hangs* — calls to a hung provider block on real wall-clock for
  ``hang_duration_s`` before failing: the silent stall only a watchdog
  budget can contain (tests call :meth:`FaultInjectingInvoker.release_hangs`
  in teardown so abandoned worker threads drain promptly);
* *stalls* — a fixed, jitter-free extra delay per call, modelling a
  degraded-but-answering provider; used by the CI hang matrix to run
  the whole suite under the watchdog without changing any outcome;
* *byzantine outputs* — providers whose modules answer but lie:
  ``corrupt_output_providers`` drop an output parameter (wrong arity),
  ``nondeterministic_providers`` perturb outputs with a per-combination
  call counter so two invocations on identical bindings disagree.  The
  counter is keyed by ``(module_id, canonical bindings)`` — *not* a
  global sequence — so the first answer for a combination is identical
  across call orders, retries and campaign resumes.
* *process chaos* — faults at the granularity sharded multi-process
  campaigns care about: ``kill_at_invocation`` terminates the *whole
  worker process* after serving K calls (an OOM-kill stand-in),
  ``kill_rate`` is its seeded per-call coin flip, and
  ``stall_heartbeat_after`` wedges the worker's heartbeat (the process
  stays alive but stops reporting) so a supervisor's hang detection is
  itself fault-injectable.  Termination goes through an injectable
  ``terminate`` callable (default :func:`os._exit` with status 137) so
  unit tests can observe the kill without dying.

Because the RNG is seeded and consulted under a lock in call order, a
serial run of a fault plan is reproducible; tests assert exact outcomes.

The injector is **picklable**: locks, events and callbacks are dropped
at pickle time and rebuilt on unpickle (RNG state, blackout ledgers and
call nonces survive), so an engine configuration can cross a
``multiprocessing`` spawn boundary into a shard worker.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.modules.errors import ModuleUnavailableError
from repro.modules.interfaces import bindings_to_wire
from repro.modules.model import Module, ModuleContext
from repro.values import TypedValue


class InjectedFaultError(ModuleUnavailableError):
    """A transient failure manufactured by the fault injector."""


@dataclass(frozen=True)
class FaultPlan:
    """The weather one fault injector produces.

    Attributes:
        seed: Seed of the fault RNG.
        transient_failure_rate: Probability in [0, 1] that a call fails
            with :class:`InjectedFaultError` before reaching the module.
        latency_ms: Mean injected latency per call (0 disables).
        latency_jitter: Fractional jitter on the injected latency.
        blackout_providers: Providers that start blacked out.
        blackout_calls: Failing calls served per blacked-out provider
            before it recovers.
        permanent_blackout_providers: Providers that never recover —
            the §6 shutdown a circuit breaker must contain.
        hang_providers: Providers whose calls block on real wall-clock
            for ``hang_duration_s`` before failing — only a watchdog
            budget bounds them.
        hang_duration_s: How long a hung call blocks, in seconds.
        stall_providers: Providers whose calls sleep an extra fixed
            ``stall_ms`` before proceeding normally; empty means the
            stall (when ``stall_ms > 0``) applies to every provider.
        stall_ms: Fixed, jitter-free extra delay per stalled call.
        corrupt_output_providers: Providers whose successful outputs
            lose their last (sorted) output parameter — a wrong-arity
            lie the conformance checker must catch.
        nondeterministic_providers: Providers whose successful outputs
            are perturbed by a per-combination call counter, so repeat
            invocations on identical bindings disagree.
        kill_at_invocation: Terminate the whole process after serving
            this many invocations (0 disables) — the deterministic
            "worker OOM-killed at invocation K" chaos a supervisor's
            restart path must contain.
        kill_rate: Probability in [0, 1] that any given invocation
            terminates the process (seeded coin flip; 0 disables).
        kill_at_request: Terminate the whole process when it admits this
            many *HTTP requests* (0 disables).  The serving-fleet
            counterpart of ``kill_at_invocation``: the request clock
            ticks via :meth:`FaultInjectingInvoker.note_request` on
            every governed request, cached answers included, so a
            replica can be killed mid-traffic even when every response
            is memoized and no module invocation happens.
        stall_heartbeat_after: After this many invocations, raise the
            :attr:`heartbeat_stalled` flag (0 disables).  The injector
            itself keeps answering — a worker's heartbeat loop is
            expected to consult the flag and go silent, so supervisor
            hang detection (not crash detection) has to fire.
    """

    seed: int = 2014
    transient_failure_rate: float = 0.0
    latency_ms: float = 0.0
    latency_jitter: float = 0.25
    blackout_providers: frozenset = frozenset()
    blackout_calls: int = 3
    permanent_blackout_providers: frozenset = frozenset()
    hang_providers: frozenset = frozenset()
    hang_duration_s: float = 60.0
    stall_providers: frozenset = frozenset()
    stall_ms: float = 0.0
    corrupt_output_providers: frozenset = frozenset()
    nondeterministic_providers: frozenset = frozenset()
    kill_at_invocation: int = 0
    kill_rate: float = 0.0
    kill_at_request: int = 0
    stall_heartbeat_after: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_failure_rate <= 1.0:
            raise ValueError("transient_failure_rate must lie in [0, 1]")
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")
        if self.hang_duration_s <= 0:
            raise ValueError("hang_duration_s must be positive")
        if self.stall_ms < 0:
            raise ValueError("stall_ms must be non-negative")
        if not 0.0 <= self.kill_rate <= 1.0:
            raise ValueError("kill_rate must lie in [0, 1]")
        if self.kill_at_invocation < 0:
            raise ValueError("kill_at_invocation must be non-negative")
        if self.kill_at_request < 0:
            raise ValueError("kill_at_request must be non-negative")
        if self.stall_heartbeat_after < 0:
            raise ValueError("stall_heartbeat_after must be non-negative")

    @property
    def process_chaos(self) -> bool:
        """Whether any process-level chaos is armed."""
        return bool(
            self.kill_at_invocation or self.kill_rate
            or self.kill_at_request or self.stall_heartbeat_after
        )


def _default_terminate() -> None:  # pragma: no cover - kills the process
    """The real process-chaos kill: immediate, no cleanup, like SIGKILL."""
    import os

    os._exit(137)


class FaultInjectingInvoker:
    """Wraps an invoker with a seeded :class:`FaultPlan`."""

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
        on_fault: "Callable[[Module, str], None] | None" = None,
        terminate: "Callable[[], None] | None" = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        self._on_fault = on_fault
        self._terminate = terminate if terminate is not None else _default_terminate
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._blackout_remaining = {
            provider: plan.blackout_calls for provider in plan.blackout_providers
        }
        # Per-(module_id, canonical-bindings) call counters for the
        # nondeterministic perturbation; content-keyed so call order,
        # retries and resume cannot shift the nonce of a combination's
        # first answer.
        self._call_nonce: dict[tuple[str, str], int] = {}
        # Hung calls wait on this real-time event; tests set it in
        # teardown so abandoned watchdog workers drain promptly.
        self._hang_release = threading.Event()
        #: Invocations this injector has admitted (process-chaos clock).
        self.invocations = 0
        #: HTTP requests noted via :meth:`note_request` (serving-chaos
        #: clock — ticks even for memoized answers).
        self.requests = 0
        #: Raised once ``stall_heartbeat_after`` invocations have been
        #: served; heartbeat loops consult it and go silent.
        self.heartbeat_stalled = threading.Event()

    def blackout_remaining(self, provider: str) -> int:
        """Failing calls the blackout on ``provider`` still has to serve."""
        with self._lock:
            return self._blackout_remaining.get(provider, 0)

    # ------------------------------------------------------------------
    # Pickling: locks / events / callbacks cannot cross a spawn
    # boundary; everything deterministic (RNG state, blackout ledgers,
    # call nonces, the invocation clock) does.
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_rng"] = self._rng.getstate()
        state["heartbeat_stalled"] = self.heartbeat_stalled.is_set()
        del state["_lock"]
        del state["_hang_release"]
        # Callbacks and injected callables are process-local wiring; the
        # receiving engine re-installs its own.
        state["_sleep"] = None
        state["_on_fault"] = None
        state["_terminate"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        rng_state = state.pop("_rng")
        stalled = state.pop("heartbeat_stalled")
        self.__dict__.update(state)
        self._rng = random.Random()
        self._rng.setstate(rng_state)
        self._lock = threading.Lock()
        self._hang_release = threading.Event()
        self.heartbeat_stalled = threading.Event()
        if stalled:
            self.heartbeat_stalled.set()
        if self._sleep is None:
            self._sleep = time.sleep
        if self._terminate is None:
            self._terminate = _default_terminate

    def note_request(self) -> None:
        """Tick the serving-chaos request clock; kill at the Kth tick.

        Serving replicas call this once per governed HTTP request.  When
        ``kill_at_request`` is armed and this is exactly the Kth request,
        the process dies through the injectable ``terminate`` — mid-
        request, before a response is written, so the client on that
        connection sees the raw connection drop a real replica crash
        produces.
        """
        plan = self.plan
        if not plan.kill_at_request:
            return
        with self._lock:
            self.requests += 1
            killed = self.requests == plan.kill_at_request
        if killed:
            self._terminate()

    def release_hangs(self) -> None:
        """Unblock every in-flight and future hung call immediately.

        Hung calls still fail (they were going to fail after
        ``hang_duration_s`` anyway) — they just stop occupying threads.
        """
        self._hang_release.set()

    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Invoke through the injected weather.

        Raises:
            InjectedFaultError: A manufactured transient failure.
            ModuleInvocationError: Whatever the wrapped invoker raises.
        """
        plan = self.plan
        with self._lock:
            self.invocations += 1
            killed = (
                plan.kill_at_invocation
                and self.invocations == plan.kill_at_invocation
            ) or (
                plan.kill_rate and self._rng.random() < plan.kill_rate
            )
            if (
                plan.stall_heartbeat_after
                and self.invocations >= plan.stall_heartbeat_after
            ):
                self.heartbeat_stalled.set()
            latency_s = 0.0
            if plan.latency_ms:
                jitter = 1.0 + plan.latency_jitter * self._rng.uniform(-1.0, 1.0)
                latency_s = plan.latency_ms * jitter / 1000.0
            remaining = self._blackout_remaining.get(module.provider, 0)
            if module.provider in plan.permanent_blackout_providers:
                fault = f"provider {module.provider} permanently dark"
            elif remaining > 0:
                self._blackout_remaining[module.provider] = remaining - 1
                fault = f"provider {module.provider} blacked out"
            elif plan.transient_failure_rate and (
                self._rng.random() < plan.transient_failure_rate
            ):
                fault = "injected transient failure"
            else:
                fault = None
        if killed:
            # The process dies *before* the call reaches the module and
            # before any journal write — the worst moment for a worker
            # to vanish.  No exception propagates: like a real SIGKILL,
            # nothing downstream gets to clean up.
            if self._on_fault is not None:
                self._on_fault(module, "process chaos kill")
            self._terminate()
        if latency_s:
            self._sleep(latency_s)
        if module.provider in plan.hang_providers:
            # Real wall-clock, deliberately not the injectable sleep: the
            # watchdog's thread-join timeout is what must contain this.
            self._hang_release.wait(plan.hang_duration_s)
            detail = f"provider {module.provider} hung for {plan.hang_duration_s}s"
            if self._on_fault is not None:
                self._on_fault(module, detail)
            raise InjectedFaultError(f"{module.module_id}: {detail}")
        if plan.stall_ms > 0 and (
            not plan.stall_providers or module.provider in plan.stall_providers
        ):
            self._sleep(plan.stall_ms / 1000.0)
        if fault is not None:
            if self._on_fault is not None:
                self._on_fault(module, fault)
            raise InjectedFaultError(f"{module.module_id}: {fault}")
        outputs = self.inner.invoke(module, ctx, bindings)
        if module.provider in plan.corrupt_output_providers and outputs:
            outputs = dict(outputs)
            del outputs[sorted(outputs)[-1]]
        if module.provider in plan.nondeterministic_providers and outputs:
            outputs = self._perturb_outputs(module, bindings, outputs)
        return outputs

    def _perturb_outputs(
        self,
        module: Module,
        bindings: dict[str, TypedValue],
        outputs: dict[str, TypedValue],
    ) -> dict[str, TypedValue]:
        """Stamp the first (sorted) output with this combination's call
        nonce, so identical questions get different answers per call but
        any given call number answers identically across runs."""
        key = (module.module_id, bindings_to_wire(bindings))
        with self._lock:
            nonce = self._call_nonce.get(key, 0)
            self._call_nonce[key] = nonce + 1
        name = sorted(outputs)[0]
        value = outputs[name]
        outputs = dict(outputs)
        outputs[name] = TypedValue(
            _perturb_payload(value.payload, nonce), value.structural, value.concept
        )
        return outputs


def _perturb_payload(payload, nonce: int):
    """A deterministic, type-preserving perturbation by ``nonce``."""
    if isinstance(payload, str):
        return f"{payload}#run{nonce}"
    if isinstance(payload, bool):
        return payload if nonce % 2 == 0 else not payload
    if isinstance(payload, (int, float)):
        return payload + nonce
    if isinstance(payload, tuple):
        return tuple(_perturb_payload(item, nonce) for item in payload)
    return payload
