"""Seeded fault injection for invocation robustness testing.

Real harvesting suffers the decay phenomenon of §6 — providers blink out,
calls stall, whole hosts go dark for a while.  Reproducing that against
live endpoints is neither deterministic nor kind; the fault injector
wraps any invoker and manufactures the same weather from a seed:

* *transient faults* — a seeded coin flip turns a call into a
  :class:`~repro.modules.errors.ModuleUnavailableError` before it
  reaches the endpoint;
* *injected latency* — every call sleeps a jittered interval first,
  modelling the network round trip the simulators don't have;
* *provider blackouts* — the first ``blackout_calls`` calls to a
  blacked-out provider fail, after which the provider "recovers" —
  exactly the shape a retry policy must ride out.

Because the RNG is seeded and consulted under a lock in call order, a
serial run of a fault plan is reproducible; tests assert exact outcomes.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.modules.errors import ModuleUnavailableError
from repro.modules.model import Module, ModuleContext
from repro.values import TypedValue


class InjectedFaultError(ModuleUnavailableError):
    """A transient failure manufactured by the fault injector."""


@dataclass(frozen=True)
class FaultPlan:
    """The weather one fault injector produces.

    Attributes:
        seed: Seed of the fault RNG.
        transient_failure_rate: Probability in [0, 1] that a call fails
            with :class:`InjectedFaultError` before reaching the module.
        latency_ms: Mean injected latency per call (0 disables).
        latency_jitter: Fractional jitter on the injected latency.
        blackout_providers: Providers that start blacked out.
        blackout_calls: Failing calls served per blacked-out provider
            before it recovers.
        permanent_blackout_providers: Providers that never recover —
            the §6 shutdown a circuit breaker must contain.
    """

    seed: int = 2014
    transient_failure_rate: float = 0.0
    latency_ms: float = 0.0
    latency_jitter: float = 0.25
    blackout_providers: frozenset = frozenset()
    blackout_calls: int = 3
    permanent_blackout_providers: frozenset = frozenset()

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_failure_rate <= 1.0:
            raise ValueError("transient_failure_rate must lie in [0, 1]")
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be non-negative")


class FaultInjectingInvoker:
    """Wraps an invoker with a seeded :class:`FaultPlan`."""

    def __init__(
        self,
        inner,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
        on_fault: "Callable[[Module, str], None] | None" = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._sleep = sleep
        self._on_fault = on_fault
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()
        self._blackout_remaining = {
            provider: plan.blackout_calls for provider in plan.blackout_providers
        }

    def blackout_remaining(self, provider: str) -> int:
        """Failing calls the blackout on ``provider`` still has to serve."""
        with self._lock:
            return self._blackout_remaining.get(provider, 0)

    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Invoke through the injected weather.

        Raises:
            InjectedFaultError: A manufactured transient failure.
            ModuleInvocationError: Whatever the wrapped invoker raises.
        """
        plan = self.plan
        with self._lock:
            latency_s = 0.0
            if plan.latency_ms:
                jitter = 1.0 + plan.latency_jitter * self._rng.uniform(-1.0, 1.0)
                latency_s = plan.latency_ms * jitter / 1000.0
            remaining = self._blackout_remaining.get(module.provider, 0)
            if module.provider in plan.permanent_blackout_providers:
                fault = f"provider {module.provider} permanently dark"
            elif remaining > 0:
                self._blackout_remaining[module.provider] = remaining - 1
                fault = f"provider {module.provider} blacked out"
            elif plan.transient_failure_rate and (
                self._rng.random() < plan.transient_failure_rate
            ):
                fault = "injected transient failure"
            else:
                fault = None
        if latency_s:
            self._sleep(latency_s)
        if fault is not None:
            if self._on_fault is not None:
                self._on_fault(module, fault)
            raise InjectedFaultError(f"{module.module_id}: {fault}")
        return self.inner.invoke(module, ctx, bindings)
