"""The invoker protocol and the invocation engine facade.

Every module call in the system flows through an :class:`Invoker` — the
single choke point where caching, retry, fault injection and telemetry
compose.  Callers (the generation heuristic, the service bus, the
experiments) never import ``invoke_via_interface`` directly any more;
they hold an engine and call :meth:`InvocationEngine.invoke`.

The stack, innermost first::

    DirectInvoker              the real supply-interface round trip
      FaultInjectingInvoker    (optional) seeded decay weather
        ConformingInvoker      (optional) output validation + probes
          WatchdogInvoker      (optional) hard wall-clock budget
            RetryingInvoker    (optional) backoff + deadline
              CircuitBreakingInvoker  (optional) per-provider fast-fail
                InvocationCache    (optional) memoization, checked first
                  Telemetry        always-on accounting around the call

The breaker deliberately sits *outside* the retry layer: once a
provider's circuit is open, calls fail fast without consuming any retry
budget — a blacked-out provider costs O(probe interval), not O(catalog).
The conformance checker sits *inside* the watchdog (probe re-invocations
count against the same budget) and *outside* the fault injector (so
injected output corruption is caught exactly like a real lying module).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

from repro.engine.breaker import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    CircuitBreakingInvoker,
)
from repro.engine.cache import InvocationCache, canonical_key
from repro.engine.conformance import ConformancePolicy, ConformingInvoker
from repro.engine.faults import FaultInjectingInvoker, FaultPlan
from repro.engine.health import ModuleHealthRegistry
from repro.engine.retry import RetryingInvoker, RetryPolicy
from repro.engine.scheduler import BatchScheduler
from repro.engine.telemetry import Telemetry, default_clock
from repro.engine.watchdog import WatchdogInvoker, WatchdogPolicy
from repro.modules.errors import (
    InvalidInputError,
    MalformedOutputError,
    ModuleInvocationError,
    ModuleTimeoutError,
    ModuleUnavailableError,
)
from repro.modules.interfaces import invoke_via_interface
from repro.modules.model import Module, ModuleContext
from repro.values import TypedValue


@runtime_checkable
class Invoker(Protocol):
    """Anything that can execute a module on input bindings."""

    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Execute ``module`` on ``bindings``; returns output bindings.

        Raises:
            ModuleInvocationError: On abnormal termination or
                unavailability, exactly like the supply interfaces.
        """
        ...  # pragma: no cover - protocol


class DirectInvoker:
    """The baseline invoker: one supply-interface round trip, no frills.

    This is exactly the behavior every call site had before the engine
    existed.
    """

    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        return invoke_via_interface(module, ctx, bindings)


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of one :class:`InvocationEngine`.

    Attributes:
        parallelism: Worker threads of the batch scheduler (1 = serial).
        cache_size: LRU capacity of the invocation cache; ``None``
            disables caching entirely.
        negative_ttl: Seconds a negative-cache entry stays replayable;
            ``None`` keeps rejections until a repair bumps the cache
            generation.
        retry: Retry policy for transient failures; ``None`` disables.
        fault_plan: Seeded fault injection; ``None`` disables.
        breaker: Per-provider circuit-breaker policy; ``None`` disables.
        conformance: Output-conformance validation (and optional
            nondeterminism probing); ``None`` disables.
        watchdog: Hard wall-clock budget per invocation; ``None``
            disables.
        tracing: Build a per-invocation span tree around every call
            (:mod:`repro.obs.tracing`).  Off by default — the untraced
            stack is byte-identical to the pre-observability one and
            pays no tracing cost at all.
        max_events: Ring-buffer capacity of the telemetry event log
            (evictions are counted in ``dropped_events``).
        max_traces: Ring-buffer capacity for completed traces kept in
            memory when tracing is on.
    """

    parallelism: int = 1
    cache_size: "int | None" = None
    negative_ttl: "float | None" = None
    retry: "RetryPolicy | None" = None
    fault_plan: "FaultPlan | None" = None
    breaker: "BreakerPolicy | None" = None
    conformance: "ConformancePolicy | None" = None
    watchdog: "WatchdogPolicy | None" = None
    tracing: bool = False
    max_events: int = 10_000
    max_traces: int = 1000


class InvocationEngine:
    """The execution layer all module invocations flow through."""

    def __init__(
        self,
        config: EngineConfig = EngineConfig(),
        invoker: "Invoker | None" = None,
        telemetry: "Telemetry | None" = None,
        health: "ModuleHealthRegistry | None" = None,
        tracer=None,
        clock: Callable[[], float] = default_clock,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        """Args:
            config: Cache / retry / fault / breaker / parallelism knobs.
            invoker: Innermost invoker (default: :class:`DirectInvoker`).
            telemetry: Shared telemetry sink (default: a fresh one).
            health: Module-health registry fed with every final outcome
                (default: a fresh one).
            tracer: Span recorder (:class:`repro.obs.tracing.Tracer`);
                passing one implies tracing even when ``config.tracing``
                is false.  With neither, the stack is built untraced and
                the hot path performs no tracing work.
            clock: Monotonic clock, injectable for tests.
            sleep: Sleep function used by retry backoff and injected
                latency, injectable for tests.
        """
        self.config = config
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(max_events=config.max_events)
        )
        self.health = health if health is not None else ModuleHealthRegistry()
        self.scheduler = BatchScheduler(config.parallelism)
        self._clock = clock
        if tracer is None and config.tracing:
            from repro.obs.tracing import Tracer

            tracer = Tracer(clock=clock, max_traces=config.max_traces)
        self.tracer = tracer

        def traced(layer: str, inner: Invoker) -> Invoker:
            return tracer.wrap(layer, inner) if tracer is not None else inner

        stack: Invoker = invoker if invoker is not None else DirectInvoker()
        # The ``direct`` span separates the supply-interface round trip
        # from everything stacked on top of it.  In a bare stack there
        # is no "on top": the root span already times the direct call
        # exactly, so wrapping it would double the tracing cost of
        # every invocation to record a span that duplicates its parent.
        layered = (
            config.cache_size is not None
            or config.fault_plan is not None
            or config.conformance is not None
            or config.watchdog is not None
            or config.retry is not None
            or config.breaker is not None
        )
        if layered:
            stack = traced("direct", stack)
        self.fault_injector = None
        if config.fault_plan is not None:
            stack = self.fault_injector = FaultInjectingInvoker(
                stack, config.fault_plan, sleep=sleep, on_fault=self._note_fault
            )
            stack = traced("faults", stack)
        self.conformance = None
        if config.conformance is not None:
            stack = self.conformance = ConformingInvoker(
                stack, config.conformance, on_violation=self._note_violation
            )
            stack = traced("conformance", stack)
        self.watchdog = None
        if config.watchdog is not None:
            stack = self.watchdog = WatchdogInvoker(
                stack, config.watchdog, on_timeout=self._note_timeout,
                tracer=tracer,
            )
            stack = traced("watchdog", stack)
        if config.retry is not None:
            stack = RetryingInvoker(
                stack,
                config.retry,
                clock=clock,
                sleep=sleep,
                on_retry=self._note_retry,
                on_exhausted=self._note_exhausted,
            )
            stack = traced("retry", stack)
        self.breaker = (
            CircuitBreaker(
                config.breaker, clock=clock, on_transition=self._note_transition
            )
            if config.breaker is not None
            else None
        )
        if self.breaker is not None:
            stack = CircuitBreakingInvoker(
                stack, self.breaker, on_fast_fail=self._note_fast_fail
            )
            stack = traced("breaker", stack)
        self.invoker = stack
        self.cache = (
            InvocationCache(
                config.cache_size, negative_ttl=config.negative_ttl, clock=clock
            )
            if config.cache_size is not None
            else None
        )

    # ------------------------------------------------------------------
    # Telemetry hooks for the wrapped layers
    # ------------------------------------------------------------------
    def _note_fault(self, module: Module, detail: str) -> None:
        self.telemetry.incr("faults_injected")
        self.telemetry.event("fault_injected", module.module_id, detail)

    def _note_timeout(self, module: Module, budget: float) -> None:
        self.telemetry.incr("watchdog_timeouts")
        self.telemetry.event(
            "watchdog_timeout", module.module_id, f"budget {budget:.3f}s"
        )

    def _note_violation(self, module: Module, error: MalformedOutputError) -> None:
        self.telemetry.incr("conformance_violations")
        self.telemetry.event(
            "conformance_violation", module.module_id, type(error).__name__
        )

    def _note_retry(
        self, module: Module, attempt: int, error: ModuleUnavailableError
    ) -> None:
        self.telemetry.incr("retries")
        self.telemetry.event(
            "retry", module.module_id, f"attempt {attempt}: {type(error).__name__}"
        )
        if self.tracer is not None:
            self.tracer.incr_root("retries")

    def _note_exhausted(self, module: Module, error: ModuleUnavailableError) -> None:
        self.telemetry.incr("retries_exhausted")
        self.telemetry.event(
            "retry_exhausted", module.module_id, type(error).__name__
        )

    def _note_transition(
        self, provider: str, old: BreakerState, new: BreakerState
    ) -> None:
        if new is BreakerState.OPEN:
            self.telemetry.incr("breaker_opened")
        elif new is BreakerState.CLOSED:
            self.telemetry.incr("breaker_closed")
        self.telemetry.event(
            "breaker_transition", provider, f"{old.value} -> {new.value}"
        )

    def _note_fast_fail(self, module: Module) -> None:
        self.telemetry.incr("breaker_fast_fails")
        self.telemetry.event("breaker_fast_fail", module.module_id, module.provider)

    # ------------------------------------------------------------------
    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Invoke ``module`` through the configured stack.

        Raises:
            InvalidInputError: Abnormal termination (possibly replayed
                from the negative cache).
            ModuleTimeoutError: The watchdog abandoned the call.
            ModuleUnavailableError: Transient failure surviving retries.
            MalformedOutputError: The outputs violate the declared
                interface (never cached — the module answered, but the
                answer must not be admitted anywhere).
        """
        tracer = self.tracer
        if tracer is None:
            return self._invoke(module, ctx, bindings, None)
        # The attribute dict is live for the duration of the call: the
        # cache lookup below and the retry hook annotate it before
        # close_root seals it into the exported trace.
        attributes = {"provider": module.provider}
        token = tracer.open_root(attributes)
        try:
            outputs = self._invoke(module, ctx, bindings, attributes)
        except BaseException as error:
            tracer.close_root(
                module.module_id, token, type(error).__name__, str(error)
            )
            raise
        tracer.close_root(module.module_id, token)
        return outputs

    def _invoke(
        self,
        module: Module,
        ctx: ModuleContext,
        bindings: dict[str, TypedValue],
        trace_attrs: "dict | None",
    ) -> dict[str, TypedValue]:
        if self.cache is not None:
            key = canonical_key(module, bindings)
            outcome = self.cache.lookup(key)
            if outcome is not None:
                if outcome.is_failure:
                    self.telemetry.incr("cache_negative_hits")
                    disposition = "negative-hit"
                else:
                    self.telemetry.incr("cache_hits")
                    disposition = "hit"
                self.telemetry.event("cache_hit", module.module_id)
                if trace_attrs is not None:
                    trace_attrs["cache"] = disposition
                return outcome.replay()
            self.telemetry.incr("cache_misses")
            if trace_attrs is not None:
                trace_attrs["cache"] = "miss"
        else:
            key = None

        self.telemetry.incr("calls")
        start = self._clock()
        try:
            outputs = self.invoker.invoke(module, ctx, bindings)
        except InvalidInputError as error:
            self._account("invalid", module, start, type(error).__name__)
            if key is not None:
                self.cache.store_failure(key, error)
            raise
        except ModuleTimeoutError as error:
            # No answer inside the budget: transient, never cached.
            self._account("timeout", module, start, type(error).__name__)
            raise
        except ModuleUnavailableError as error:
            # Transient: never cached.
            self._account("unavailable", module, start, type(error).__name__)
            raise
        except MalformedOutputError as error:
            # The module answered but lied: quarantine material, never
            # cached (a repair should get a fresh look) and never
            # admitted as a success.
            self._account("malformed", module, start, type(error).__name__)
            raise
        except ModuleInvocationError as error:
            self._account("transport_error", module, start, type(error).__name__)
            raise
        self._account("ok", module, start, "")
        if key is not None:
            self.cache.store_success(key, outputs)
        return outputs

    def _account(self, outcome: str, module: Module, start: float, detail: str) -> None:
        latency_ms = (self._clock() - start) * 1000.0
        self.telemetry.incr(outcome)
        self.telemetry.record_latency(latency_ms)
        self.telemetry.event("call", module.module_id, detail or outcome, latency_ms)
        self.health.observe(module.module_id, module.provider, outcome, latency_ms)

    # ------------------------------------------------------------------
    def map(self, fn, items) -> list:
        """Run ``fn`` over ``items`` on this engine's scheduler."""
        return self.scheduler.map(fn, items)

    def stats(self) -> dict:
        """Merged snapshot: telemetry plus cache / breaker / health."""
        snapshot = self.telemetry.snapshot()
        if self.cache is not None:
            snapshot["cache"] = {
                "size": len(self.cache),
                "maxsize": self.cache.maxsize,
                "hits": self.cache.stats.hits,
                "negative_hits": self.cache.stats.negative_hits,
                "misses": self.cache.stats.misses,
                "evictions": self.cache.stats.evictions,
                "negative_expired": self.cache.stats.negative_expired,
                "hit_rate": self.cache.stats.hit_rate,
            }
        if self.breaker is not None:
            snapshot["breaker"] = self.breaker.snapshot()
        if self.watchdog is not None:
            snapshot["watchdog"] = self.watchdog.snapshot()
        if self.conformance is not None:
            snapshot["conformance"] = self.conformance.snapshot()
        if self.tracer is not None:
            snapshot["tracing"] = self.tracer.snapshot()
        snapshot["health"] = self.health.snapshot()
        return snapshot

    def render_stats(self) -> str:
        """Human-readable accounting (the report's invocation-cost section)."""
        lines = [self.telemetry.render()]
        if self.cache is not None:
            stats = self.cache.stats
            lines.append(
                f"  cache size:      {len(self.cache)}/{self.cache.maxsize} "
                f"entries, hit rate {stats.hit_rate:.1%}"
            )
        if self.breaker is not None:
            open_providers = self.breaker.open_providers()
            label = ", ".join(open_providers) if open_providers else "none"
            lines.append(f"  breaker:         open circuits: {label}")
        if self.watchdog is not None:
            stats = self.watchdog.stats
            lines.append(
                f"  watchdog:        budget {self.watchdog.policy.budget:g}s, "
                f"{stats.timeouts} timeouts "
                f"({stats.abandoned_in_flight} abandoned calls in flight)"
            )
        if self.conformance is not None:
            stats = self.conformance.stats
            lines.append(
                f"  conformance:     {stats.checked} checked, "
                f"{stats.violations} violations, "
                f"{stats.probes} probes ({stats.unstable} unstable)"
            )
        lines.append(
            f"  scheduler:       parallelism {self.scheduler.parallelism}"
        )
        return "\n".join(lines)
