"""Watchdog: a hard wall-clock budget around every invocation.

PR 2 hardened campaigns against modules that fail *loudly* — the breaker
and retry layers contain providers that answer with errors.  A decayed
module can also fail *silently*: it terminates normally eventually, but
only after hanging for minutes, and a single wedged endpoint then stalls
a whole harvesting campaign (§6's decay phenomenon at its most
pathological).  The watchdog executes the wrapped invoker on a worker
thread and waits at most ``budget`` seconds:

* the call finishes in time — its outcome (value or exception) is
  relayed untouched;
* the budget elapses — the call is **abandoned** (the worker thread is
  left to finish on its own; Python cannot safely kill it) and a
  :class:`~repro.modules.errors.ModuleTimeoutError` is raised.  Since
  that subclasses ``ModuleUnavailableError``, the breaker counts it
  toward tripping the provider's circuit, the retry layer may retry it,
  and the health registry books a no-answer outcome.

Abandoned calls are accounted: ``abandoned_in_flight`` is the number of
worker threads still running past their budget (a persistently wedged
provider shows a growing backlog until its circuit opens), and
``abandoned_completed`` counts the ones that eventually came back.
Worker threads are daemons, so a wedged call never blocks process exit.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.engine.telemetry import default_clock
from repro.modules.errors import ModuleTimeoutError
from repro.modules.model import Module, ModuleContext
from repro.values import TypedValue

#: The ambient request deadline, as an *absolute* time on the engine's
#: monotonic clock.  Serving-layer requests arm it with
#: :func:`deadline_scope`; the watchdog clamps every per-invocation
#: budget to whatever remains.  A context variable (not a thread-local)
#: so nested scopes restore correctly and the value is invisible to
#: unrelated threads — the watchdog reads it on the *calling* thread,
#: before the worker hop, so no cross-thread propagation is needed.
_REQUEST_DEADLINE: "contextvars.ContextVar[float | None]" = contextvars.ContextVar(
    "repro_request_deadline", default=None
)


@contextmanager
def deadline_scope(seconds: "float | None", clock: Callable[[], float] = default_clock):
    """Arm a request deadline for the duration of the ``with`` block.

    Everything invoked inside the block through a watchdog-equipped
    engine runs under ``min(watchdog budget, remaining deadline)``; once
    the deadline is exhausted further invocations fail immediately with
    :class:`~repro.modules.errors.ModuleTimeoutError` instead of
    starting work the caller will never wait for.  Nested scopes take
    the *tighter* of the two deadlines.  ``seconds=None`` is a no-op, so
    call sites can pass an optional deadline through unconditionally.
    """
    if seconds is None:
        yield
        return
    requested = clock() + seconds
    current = _REQUEST_DEADLINE.get()
    token = _REQUEST_DEADLINE.set(
        requested if current is None else min(current, requested)
    )
    try:
        yield
    finally:
        _REQUEST_DEADLINE.reset(token)


def remaining_deadline(clock: Callable[[], float] = default_clock) -> "float | None":
    """Seconds left in the ambient request deadline, or ``None`` when no
    scope is armed.  May be negative once the deadline has passed."""
    deadline = _REQUEST_DEADLINE.get()
    if deadline is None:
        return None
    return deadline - clock()


@dataclass(frozen=True)
class WatchdogPolicy:
    """Tuning knobs of one watchdog.

    Attributes:
        budget: Hard wall-clock budget per invocation, in seconds.  The
            budget covers the whole wrapped stack below the watchdog —
            injected weather, conformance probes and the supply-interface
            round trip alike.
    """

    budget: float = 5.0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"watchdog budget must be positive, got {self.budget}")


@dataclass
class WatchdogStats:
    """Abandoned-call accounting of one watchdog.

    Attributes:
        timeouts: Calls that exceeded the budget and were abandoned.
        abandoned_in_flight: Abandoned worker threads still running.
        abandoned_completed: Abandoned calls that eventually finished
            (their late result is discarded).
        deadline_preempted: Calls refused before they started because the
            ambient request deadline (:func:`deadline_scope`) was already
            exhausted — no worker thread was ever spawned.
    """

    timeouts: int = 0
    abandoned_in_flight: int = 0
    abandoned_completed: int = 0
    deadline_preempted: int = 0


class WatchdogInvoker:
    """Wraps an invoker with a :class:`WatchdogPolicy` wall-clock budget."""

    def __init__(
        self,
        inner,
        policy: WatchdogPolicy,
        on_timeout: "Callable[[Module, float], None] | None" = None,
        tracer=None,
    ) -> None:
        """Args:
            inner: The invoker to budget.
            policy: The wall-clock budget.
            on_timeout: Called as ``(module, budget)`` on every abandoned
                call (telemetry hook).
            tracer: Optional :class:`repro.obs.tracing.Tracer`.  The
                spans recorded on the worker thread are handed back to
                the caller through a fork/join pair so the layers below
                the watchdog stay attached to the same span tree
                despite the thread hop; abandoned calls deposit late
                spans that are dropped and counted instead.
        """
        self.inner = inner
        self.policy = policy
        self.stats = WatchdogStats()
        self._on_timeout = on_timeout
        self._tracer = tracer
        self._lock = threading.Lock()

    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Invoke under the budget.

        Raises:
            ModuleTimeoutError: The budget elapsed; the call was
                abandoned on its worker thread.  Also raised *before*
                any work starts when an ambient request deadline
                (:func:`deadline_scope`) is already exhausted.
            ModuleInvocationError: Whatever the wrapped invoker raised
                within the budget.
        """
        budget = self.policy.budget
        remaining = remaining_deadline()
        if remaining is not None:
            if remaining <= 0:
                with self._lock:
                    self.stats.deadline_preempted += 1
                if self._on_timeout is not None:
                    self._on_timeout(module, 0.0)
                raise ModuleTimeoutError(
                    f"{module.module_id}: request deadline exhausted "
                    f"before invocation started",
                    budget=0.0,
                )
            budget = min(budget, remaining)
        outcome: dict = {}
        done = threading.Event()
        abandoned = threading.Event()
        tracer = self._tracer
        fork = tracer.fork() if tracer is not None else None

        def run() -> None:
            if tracer is not None:
                tracer.seed(fork)
            try:
                outcome["outputs"] = self.inner.invoke(module, ctx, bindings)
            except BaseException as error:  # relayed, not swallowed
                outcome["error"] = error
            finally:
                # Deposit before done.set(): a caller woken by ``done``
                # must find the worker's spans already in the fork.
                if tracer is not None:
                    tracer.unseed(fork)
                done.set()
                if abandoned.is_set():
                    with self._lock:
                        self.stats.abandoned_in_flight -= 1
                        self.stats.abandoned_completed += 1

        worker = threading.Thread(
            target=run, name=f"watchdog-{module.module_id}", daemon=True
        )
        worker.start()
        if not done.wait(budget):
            # The order matters: mark abandoned first, then re-check done
            # — a worker finishing in the gap must not leak an in-flight
            # count it will never decrement.
            abandoned.set()
            if not done.is_set():
                if tracer is not None:
                    tracer.abandon(fork)
                with self._lock:
                    self.stats.timeouts += 1
                    self.stats.abandoned_in_flight += 1
                if self._on_timeout is not None:
                    self._on_timeout(module, budget)
                raise ModuleTimeoutError(
                    f"{module.module_id}: no answer within "
                    f"{budget:.3f}s (call abandoned)",
                    budget=budget,
                )
            abandoned.clear()
        if tracer is not None:
            tracer.join(fork)
        if "error" in outcome:
            raise outcome["error"]
        return outcome["outputs"]

    def snapshot(self) -> dict:
        """JSON-compatible abandoned-call accounting."""
        with self._lock:
            return {
                "budget_s": self.policy.budget,
                "timeouts": self.stats.timeouts,
                "abandoned_in_flight": self.stats.abandoned_in_flight,
                "abandoned_completed": self.stats.abandoned_completed,
                "deadline_preempted": self.stats.deadline_preempted,
            }
