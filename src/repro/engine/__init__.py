"""The invocation engine: the execution layer for module calls.

The generation heuristic (§3.2–3.3) is invocation-bound — it calls each
black-box module on the full cross-product of selected input values, and
§4 runs that over 252 modules.  This package is the single layer those
calls flow through::

    generator / bus / experiments
            │
            ▼
    InvocationEngine        telemetry + module health around every call
        InvocationCache     (module_id, canonical bindings) → outcome
        CircuitBreakingInvoker  per-provider fast-fail (closed/open/half-open)
        RetryingInvoker     backoff + deadline for transient failures
        WatchdogInvoker     hard wall-clock budget, abandoned-call accounting
        ConformingInvoker   output validation + nondeterminism probes
        FaultInjectingInvoker   seeded decay weather for tests/benches
        DirectInvoker       the real supply-interface round trip
            │
            ▼
    invoke_via_interface (SOAP / REST / local program simulators)

plus a :class:`BatchScheduler` that fans generation over modules on a
thread pool while keeping reports bit-identical to a serial run.
"""

from repro.engine.breaker import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    CircuitBreakingInvoker,
    CircuitOpenError,
)
from repro.engine.cache import CachedOutcome, CacheStats, InvocationCache, canonical_key
from repro.engine.conformance import (
    ConformancePolicy,
    ConformanceStats,
    ConformingInvoker,
)
from repro.engine.faults import FaultInjectingInvoker, FaultPlan, InjectedFaultError
from repro.engine.health import HealthRecord, ModuleHealthRegistry
from repro.engine.invoker import (
    DirectInvoker,
    EngineConfig,
    InvocationEngine,
    Invoker,
)
from repro.engine.retry import DeadlineExceededError, RetryPolicy, RetryingInvoker
from repro.engine.scheduler import BatchScheduler
from repro.engine.telemetry import (
    EngineEvent,
    LatencyHistogram,
    Telemetry,
    default_clock,
)
from repro.engine.watchdog import (
    WatchdogInvoker,
    WatchdogPolicy,
    WatchdogStats,
    deadline_scope,
    remaining_deadline,
)

__all__ = [
    "BatchScheduler",
    "BreakerPolicy",
    "BreakerState",
    "CachedOutcome",
    "CacheStats",
    "CircuitBreaker",
    "CircuitBreakingInvoker",
    "CircuitOpenError",
    "ConformancePolicy",
    "ConformanceStats",
    "ConformingInvoker",
    "DeadlineExceededError",
    "DirectInvoker",
    "EngineConfig",
    "EngineEvent",
    "FaultInjectingInvoker",
    "FaultPlan",
    "HealthRecord",
    "InjectedFaultError",
    "InvocationCache",
    "InvocationEngine",
    "Invoker",
    "LatencyHistogram",
    "ModuleHealthRegistry",
    "RetryingInvoker",
    "RetryPolicy",
    "Telemetry",
    "WatchdogInvoker",
    "WatchdogPolicy",
    "WatchdogStats",
    "canonical_key",
    "deadline_scope",
    "default_clock",
    "remaining_deadline",
]
