"""Thread-pool batch scheduler with deterministic result assembly.

The generation heuristic is embarrassingly parallel across modules: each
module's four phases read shared immutable state (ontology, pool,
catalog) and write only their own report.  The scheduler fans a callable
over a work list with a bounded thread pool and reassembles results in
submission order, so a parallel run is indistinguishable from a serial
one — the paper-facing reports stay bit-identical (the per-module RNG
derivation in :mod:`repro.core.generation` covers the one source of
call-order dependence).

``parallelism=1`` short-circuits the pool entirely and runs inline; that
is the default everywhere, so nothing changes for existing callers until
they opt in.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class BatchScheduler:
    """Runs batches of independent calls, serially or on a thread pool."""

    def __init__(self, parallelism: int = 1) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be at least 1, got {parallelism}")
        self.parallelism = parallelism

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> "list[R]":
        """Apply ``fn`` to every item; results in input order.

        Worker exceptions propagate to the caller (the first one raised
        in iteration order), matching serial semantics.
        """
        work: Sequence[T] = list(items)
        if self.parallelism == 1 or len(work) <= 1:
            return [fn(item) for item in work]
        workers = min(self.parallelism, len(work))
        with ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-engine"
        ) as pool:
            return list(pool.map(fn, work))

    def starmap_indexed(
        self, fn: Callable[[int, T], R], items: Iterable[T]
    ) -> "list[R]":
        """Like :meth:`map`, but ``fn`` also receives the item's index —
        handy for index-derived labelling or seeding."""
        return self.map(lambda pair: fn(pair[0], pair[1]), list(enumerate(items)))
