"""Memoizing invocation cache.

Module behaviors are deterministic functions of their input bindings
(§2: a module computes one output tuple per valid input combination), so
an invocation is safe to memoize on ``(module_id, canonical bindings)``.
The canonical form reuses the wire serialization — the same JSON document
that would travel to a SOAP/REST endpoint — which already sorts keys and
normalizes payloads.

Abnormal terminations are memoized too (*negative caching*): an input
combination a module rejects is rejected forever — as long as the module
itself stays the same.  A *repaired* module (§6: a provider re-supplies
a fixed implementation) may start accepting combinations it used to
reject, so negative entries carry a **generation stamp** and an optional
**TTL**: :meth:`InvocationCache.bump_generation` lazily expires the
negative entries of a repaired module (or of the whole cache), and a
``negative_ttl`` re-opens every rejection for revisiting after it ages
out.  Positive entries are true functions of the inputs and never expire.
Availability failures are **not** cached — provider decay (§6) is a
transient property of the provider, not of the input combination.
"""

from __future__ import annotations

import json
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.engine.telemetry import default_clock
from repro.modules.errors import InvalidInputError
from repro.modules.model import Module
from repro.values import TypedValue


def _canonical_payload(payload):
    """Normalize a payload for keying.

    ``json.dumps`` would emit the non-standard ``NaN`` token for a NaN
    float — and NaN's ``x != x`` semantics make it a hazard anywhere a
    payload is compared rather than serialized — so NaN is replaced by a
    tagged, self-equal token.  Tuples are canonicalized recursively (the
    wire form renders them as JSON arrays anyway).
    """
    if isinstance(payload, float) and math.isnan(payload):
        return {"__float__": "nan"}
    if isinstance(payload, (tuple, list)):
        return [_canonical_payload(item) for item in payload]
    return payload


def canonical_key(module: Module, bindings: dict[str, TypedValue]) -> tuple[str, str]:
    """The cache key of one invocation: module id + canonical bindings.

    The canonical form is deliberately self-contained rather than
    delegating to the wire serialization: parameter insertion order is
    erased by sorting, and NaN payloads are normalized to a self-equal
    token so identical inputs always key identically.
    """
    document = json.dumps(
        {
            name: {
                "payload": _canonical_payload(value.payload),
                "structural": value.structural.name,
                "concept": value.concept,
            }
            for name, value in sorted(bindings.items())
        },
        sort_keys=True,
    )
    return module.module_id, document


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting of one cache."""

    hits: int = 0
    negative_hits: int = 0
    misses: int = 0
    evictions: int = 0
    negative_expired: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.negative_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return (self.hits + self.negative_hits) / lookups if lookups else 0.0


@dataclass(frozen=True)
class CachedOutcome:
    """The memoized result of one invocation: either the output bindings
    or the permanent failure the module answered with.

    Negative outcomes additionally remember *when* (``stored_at``, on
    the cache's clock) and *under which generation* they were stored, so
    TTL expiry and repair-driven invalidation can revisit them."""

    outputs: "dict[str, TypedValue] | None" = None
    error_type: "type[InvalidInputError] | None" = None
    error_message: str = ""
    stored_at: float = 0.0
    generation: int = 0

    @property
    def is_failure(self) -> bool:
        return self.error_type is not None

    def replay(self) -> dict[str, TypedValue]:
        """Return the cached outputs, or re-raise the cached failure.

        A fresh exception instance is constructed so each caller gets its
        own traceback; exotic constructors fall back to the base class.

        Raises:
            InvalidInputError: The memoized abnormal termination.
        """
        if self.error_type is not None:
            try:
                raise self.error_type(self.error_message)
            except TypeError:
                raise InvalidInputError(self.error_message) from None
        # Shallow copy: callers may mutate the mapping they receive.
        return dict(self.outputs or {})


class InvocationCache:
    """A bounded, thread-safe LRU cache of invocation outcomes.

    Args:
        maxsize: LRU capacity.
        negative_ttl: Seconds a negative entry stays replayable; ``None``
            keeps rejections forever (positive entries never expire).
        clock: The clock negative entries are stamped with, injectable
            for tests.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        negative_ttl: "float | None" = None,
        clock=default_clock,
    ) -> None:
        if maxsize <= 0:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        if negative_ttl is not None and negative_ttl <= 0:
            raise ValueError(f"negative_ttl must be positive, got {negative_ttl}")
        self.maxsize = maxsize
        self.negative_ttl = negative_ttl
        self.generation = 0
        self.stats = CacheStats()
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, str], CachedOutcome]" = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    def _negative_entry_stale(self, outcome: CachedOutcome) -> bool:
        if not outcome.is_failure:
            return False
        if outcome.generation < self.generation:
            return True
        return (
            self.negative_ttl is not None
            and self._clock() - outcome.stored_at >= self.negative_ttl
        )

    def lookup(self, key: tuple[str, str]) -> "CachedOutcome | None":
        """The cached outcome for ``key`` (freshened to most-recent), or
        ``None`` on a miss.  A negative entry past its TTL or from an
        older generation is dropped and reported as a miss — the module
        may have been repaired since the rejection was observed."""
        with self._lock:
            outcome = self._entries.get(key)
            if outcome is None:
                self.stats.misses += 1
                return None
            if self._negative_entry_stale(outcome):
                del self._entries[key]
                self.stats.negative_expired += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            if outcome.is_failure:
                self.stats.negative_hits += 1
            else:
                self.stats.hits += 1
            return outcome

    def store_success(
        self, key: tuple[str, str], outputs: dict[str, TypedValue]
    ) -> None:
        """Memoize a normal termination."""
        self._store(key, CachedOutcome(outputs=dict(outputs)))

    def store_failure(self, key: tuple[str, str], error: InvalidInputError) -> None:
        """Memoize an abnormal termination (negative caching)."""
        self._store(
            key,
            CachedOutcome(
                error_type=type(error),
                error_message=str(error),
                stored_at=self._clock(),
                generation=self.generation,
            ),
        )

    def _store(self, key: tuple[str, str], outcome: CachedOutcome) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = outcome
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    # ------------------------------------------------------------------
    def invalidate(self, module_id: "str | None" = None) -> int:
        """Drop every entry (or only ``module_id``'s); returns the count."""
        with self._lock:
            if module_id is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            doomed = [key for key in self._entries if key[0] == module_id]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def bump_generation(self, module_id: "str | None" = None) -> int:
        """Re-open negative classifications after a repair event.

        With a ``module_id``, that module's negative entries are dropped
        eagerly (its positive entries stay — normal terminations remain
        functions of the inputs).  Without one, the cache's generation
        counter is bumped and *every* outstanding negative entry expires
        lazily on its next lookup.

        Returns:
            The number of entries dropped eagerly (0 for a global bump).
        """
        with self._lock:
            if module_id is None:
                self.generation += 1
                return 0
            doomed = [
                key
                for key, outcome in self._entries.items()
                if key[0] == module_id and outcome.is_failure
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.negative_expired += len(doomed)
            return len(doomed)
