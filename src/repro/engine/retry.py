"""Retry policy for transient invocation failures.

Harvesting over provider endpoints fails in two distinct ways (§3.2 vs.
§6): an *invalid input combination* is a property of the data — retrying
it is useless and would distort the heuristic's abnormal-termination
accounting — while an *unavailable provider* is a property of the moment
and routinely recovers.  The retry layer therefore retries only
:class:`~repro.modules.errors.ModuleUnavailableError`, with exponential
backoff, deterministic seeded jitter and a per-call deadline.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.engine.telemetry import default_clock
from repro.modules.errors import ModuleUnavailableError
from repro.modules.model import Module, ModuleContext
from repro.values import TypedValue


class DeadlineExceededError(ModuleUnavailableError):
    """The per-call deadline elapsed before any attempt succeeded.

    Subclasses :class:`ModuleUnavailableError` so existing callers keep
    treating it as an availability failure.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How transient failures are retried.

    Attributes:
        max_attempts: Total attempts per call (1 = no retry).
        base_delay: Backoff before the first retry, in seconds.
        multiplier: Exponential backoff factor between retries.
        jitter: Fractional jitter applied to each delay (0.1 = ±10%),
            drawn from a seeded RNG so schedules are reproducible.
        deadline: Per-call wall-clock budget in seconds (``None`` = no
            deadline).  A retry is not started when it cannot begin
            before the deadline.
        seed: Seed of the jitter RNG.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.1
    deadline: "float | None" = None
    seed: int = 2014

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")

    def delay_before(self, retry_index: int, rng: random.Random) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        delay = self.base_delay * self.multiplier ** retry_index
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.uniform(-1.0, 1.0)
        return max(delay, 0.0)


class RetryingInvoker:
    """Wraps an invoker with a :class:`RetryPolicy`.

    The clock and sleep functions are injectable so tests exercise
    backoff and deadlines without real waiting.
    """

    def __init__(
        self,
        inner,
        policy: RetryPolicy,
        clock: Callable[[], float] = default_clock,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: "Callable[[Module, int, ModuleUnavailableError], None] | None" = None,
        on_exhausted: "Callable[[Module, ModuleUnavailableError], None] | None" = None,
    ) -> None:
        self.inner = inner
        self.policy = policy
        self._clock = clock
        self._sleep = sleep
        self._on_retry = on_retry
        self._on_exhausted = on_exhausted
        self._rng = random.Random(policy.seed)
        self._rng_lock = threading.Lock()

    def invoke(
        self, module: Module, ctx: ModuleContext, bindings: dict[str, TypedValue]
    ) -> dict[str, TypedValue]:
        """Invoke with retries.

        Raises:
            InvalidInputError: Immediately — permanent failures are
                never retried.
            DeadlineExceededError: The deadline elapsed with the module
                still unavailable.
            ModuleUnavailableError: Every attempt failed transiently.
        """
        policy = self.policy
        start = self._clock()
        attempt = 0
        while True:
            try:
                return self.inner.invoke(module, ctx, bindings)
            except ModuleUnavailableError as error:
                attempt += 1
                if attempt >= policy.max_attempts:
                    if self._on_exhausted is not None:
                        self._on_exhausted(module, error)
                    raise
                with self._rng_lock:
                    delay = policy.delay_before(attempt - 1, self._rng)
                if policy.deadline is not None:
                    elapsed = self._clock() - start
                    if elapsed + delay >= policy.deadline:
                        if self._on_exhausted is not None:
                            self._on_exhausted(module, error)
                        raise DeadlineExceededError(
                            f"{module.module_id}: still unavailable after "
                            f"{attempt} attempt(s) and {elapsed:.3f}s "
                            f"(deadline {policy.deadline:.3f}s)"
                        ) from error
                if self._on_retry is not None:
                    self._on_retry(module, attempt, error)
                if delay:
                    self._sleep(delay)
