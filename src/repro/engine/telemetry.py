"""Invocation telemetry: counters, latency histograms, event log.

Harvesting data examples over real provider endpoints (§4) is an
invocation-bound workload; the telemetry layer is the accounting the
engine keeps so a harvesting run can report *where the time went* —
how many calls were served, how many failed transiently vs. permanently,
how well the cache absorbed repeats, and the shape of the latency
distribution.  Everything here is thread-safe: the scheduler records
from worker threads concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: The engine-wide monotonic clock, in fractional seconds.  Everything
#: that timestamps or measures an invocation (the engine itself, the
#: service bus's ``duration_ms``) goes through this indirection so tests
#: can substitute a fake clock.
default_clock = time.perf_counter


@dataclass(frozen=True)
class EngineEvent:
    """One structured entry of the engine's event log.

    Attributes:
        kind: Event kind (``call`` / ``cache_hit`` / ``retry`` /
            ``fault_injected`` / ...).
        module_id: The module the event concerns.
        detail: Free-form context (error class, attempt number, ...).
        latency_ms: Wall-clock cost of the underlying call, when measured.
    """

    kind: str
    module_id: str
    detail: str = ""
    latency_ms: float | None = None


class LatencyHistogram:
    """A fixed-bucket latency histogram (milliseconds).

    Buckets follow the usual sub-millisecond-to-seconds progression of
    service monitoring systems; quantiles are estimated from bucket
    upper bounds, which is as much resolution as an accounting report
    needs.
    """

    BOUNDS_MS: tuple[float, ...] = (
        0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
        250.0, 500.0, 1000.0,
    )

    def __init__(self) -> None:
        self._counts = [0] * (len(self.BOUNDS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def record(self, latency_ms: float) -> None:
        for index, bound in enumerate(self.BOUNDS_MS):
            if latency_ms <= bound:
                self._counts[index] += 1
                break
        else:
            self._counts[-1] += 1
        self.count += 1
        self.sum_ms += latency_ms
        self.max_ms = max(self.max_ms, latency_ms)

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample
        (the observed maximum for the overflow bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.BOUNDS_MS):
                    return self.BOUNDS_MS[index]
                return self.max_ms
        return self.max_ms

    def buckets(self) -> "dict[str, int]":
        """Non-empty buckets, labelled by their upper bound."""
        labels = [f"<={bound:g}ms" for bound in self.BOUNDS_MS] + ["inf"]
        return {
            label: count
            for label, count in zip(labels, self._counts)
            if count
        }

    def cumulative_buckets(self) -> "list[tuple[str, int]]":
        """Every bucket with its cumulative count, Prometheus-style:
        ``[("0.05", n), ..., ("1000", n), ("+Inf", total)]``.  The
        ``+Inf`` entry always equals :attr:`count`."""
        cumulative: "list[tuple[str, int]]" = []
        seen = 0
        for bound, bucket_count in zip(self.BOUNDS_MS, self._counts):
            seen += bucket_count
            cumulative.append((f"{bound:g}", seen))
        cumulative.append(("+Inf", self.count))
        return cumulative

    @classmethod
    def from_snapshot(cls, latency: dict) -> "LatencyHistogram":
        """Rebuild a histogram from a snapshot's ``latency`` section.

        The per-bucket counts are recovered by differencing the
        cumulative buckets, so a histogram round-trips through
        ``snapshot()`` exactly — the basis for merging per-worker
        telemetry snapshots without shared memory.
        """
        histogram = cls()
        cumulative = latency.get("cumulative_buckets") or []
        previous = 0
        for index, (_bound, seen) in enumerate(cumulative):
            histogram._counts[index] = seen - previous
            previous = seen
        # The +Inf entry equals the total count; the overflow bucket is
        # whatever the bounded buckets did not absorb.
        histogram.count = latency.get("count", previous)
        histogram.sum_ms = latency.get("sum_ms", 0.0)
        histogram.max_ms = latency.get("max_ms", 0.0)
        return histogram

    def absorb(self, other: "LatencyHistogram") -> None:
        """Add another histogram's samples into this one."""
        for index, bucket_count in enumerate(other._counts):
            self._counts[index] += bucket_count
        self.count += other.count
        self.sum_ms += other.sum_ms
        self.max_ms = max(self.max_ms, other.max_ms)


class Telemetry:
    """Counters + latency histogram + a bounded structured event log.

    The event log is a ring buffer: once ``max_events`` entries have
    accumulated, each new event silently displaces the oldest and
    ``dropped_events`` is incremented — a week-long campaign keeps a
    bounded memory footprint, and the counter tells the operator how
    much history the window has already shed.
    """

    def __init__(self, max_events: int = 10_000) -> None:
        if max_events < 1:
            raise ValueError("max_events must be at least 1")
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self.histogram = LatencyHistogram()
        self.max_events = max_events
        self.dropped_events = 0
        self._events: deque[EngineEvent] = deque(maxlen=max_events)

    # ------------------------------------------------------------------
    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def record_latency(self, latency_ms: float) -> None:
        with self._lock:
            self.histogram.record(latency_ms)

    def event(
        self,
        kind: str,
        module_id: str,
        detail: str = "",
        latency_ms: float | None = None,
    ) -> None:
        with self._lock:
            # deque(maxlen=...) evicts silently; count the displacement
            # before appending so the drop is observable.
            if len(self._events) == self.max_events:
                self.dropped_events += 1
            self._events.append(
                EngineEvent(
                    kind=kind, module_id=module_id,
                    detail=detail, latency_ms=latency_ms,
                )
            )

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> "dict[str, int]":
        with self._lock:
            return dict(self._counters)

    def events(self) -> tuple[EngineEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def snapshot(self) -> dict:
        """A JSON-compatible snapshot of every metric."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "latency": {
                    "count": self.histogram.count,
                    "sum_ms": self.histogram.sum_ms,
                    "mean_ms": self.histogram.mean_ms,
                    "p50_ms": self.histogram.quantile(0.5),
                    "p95_ms": self.histogram.quantile(0.95),
                    "max_ms": self.histogram.max_ms,
                    "buckets": self.histogram.buckets(),
                    "cumulative_buckets": [
                        list(pair)
                        for pair in self.histogram.cumulative_buckets()
                    ],
                },
                "n_events": len(self._events),
                "max_events": self.max_events,
                "dropped_events": self.dropped_events,
            }

    # ------------------------------------------------------------------
    def render(self) -> str:
        """The invocation-cost section of the reproduction report."""
        snap = self.snapshot()
        counters = snap["counters"]
        calls = counters.get("calls", 0)
        lines = [
            "Invocation engine — cost accounting",
            f"  module calls:    {calls} "
            f"({counters.get('ok', 0)} ok, "
            f"{counters.get('invalid', 0)} invalid, "
            f"{counters.get('unavailable', 0)} unavailable, "
            f"{counters.get('timeout', 0)} timed out, "
            f"{counters.get('malformed', 0)} malformed)",
            f"  cache:           {counters.get('cache_hits', 0)} hits "
            f"({counters.get('cache_negative_hits', 0)} negative) / "
            f"{counters.get('cache_misses', 0)} misses, "
            f"{counters.get('cache_evictions', 0)} evictions",
            f"  retries:         {counters.get('retries', 0)} "
            f"({counters.get('retries_exhausted', 0)} exhausted, "
            f"{counters.get('deadlines_exceeded', 0)} past deadline)",
            f"  injected faults: {counters.get('faults_injected', 0)}",
        ]
        # The event log line always appears: an operator must see the
        # ring buffer's fill level *and* how much history it has already
        # shed, not only once the window overflowed.
        dropped = snap["dropped_events"]
        line = f"  event log:       {snap['n_events']}/{snap['max_events']} kept"
        if dropped:
            line += f" (ring buffer full, {dropped} dropped)"
        lines.append(line)
        latency = snap["latency"]
        if latency["count"]:
            lines.append(
                f"  latency:         mean {latency['mean_ms']:.3f}ms  "
                f"p50 {latency['p50_ms']:.3g}ms  p95 {latency['p95_ms']:.3g}ms  "
                f"max {latency['max_ms']:.3f}ms"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Per-worker snapshot merging (sharded multi-process campaigns)
# ----------------------------------------------------------------------
#: Circuit-state severity for merging per-worker breaker snapshots: a
#: provider reported open by any worker is open in the merged view.
_BREAKER_SEVERITY = {"closed": 0, "half-open": 1, "open": 2}


def merge_stats_snapshots(snapshots: "list[dict]") -> dict:
    """Merge per-worker ``InvocationEngine.stats()`` snapshots.

    Sharded campaigns keep no shared-memory telemetry: every worker
    process accounts into its own engine and journals the snapshot at
    checkpoint boundaries (heartbeats).  The supervisor — and any
    read-only consumer such as ``repro-cli campaign workers`` — calls
    this to fold the per-worker dicts into one campaign-wide view with
    the exact shape ``stats()`` produces, so the existing renderers
    (``render_prometheus``, the dashboard) work unchanged.

    Counters, histograms and layer tallies are summed; breaker circuits
    take the worst reported state per provider; provider health is
    re-weighted by call volume.  Shards partition the catalog, so
    per-module sums (``n_modules``, ``dead_modules``) are disjoint and
    add exactly.
    """
    merged: dict = {
        "counters": {},
        "n_events": 0,
        "max_events": 0,
        "dropped_events": 0,
    }
    histogram = LatencyHistogram()
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        latency = snapshot.get("latency")
        if latency:
            histogram.absorb(LatencyHistogram.from_snapshot(latency))
        merged["n_events"] += snapshot.get("n_events", 0)
        merged["max_events"] = max(
            merged["max_events"], snapshot.get("max_events", 0)
        )
        merged["dropped_events"] += snapshot.get("dropped_events", 0)
        _merge_cache(merged, snapshot.get("cache"))
        _merge_breaker(merged, snapshot.get("breaker"))
        _merge_watchdog(merged, snapshot.get("watchdog"))
        _merge_conformance(merged, snapshot.get("conformance"))
        _merge_health(merged, snapshot.get("health"))
    merged["latency"] = {
        "count": histogram.count,
        "sum_ms": histogram.sum_ms,
        "mean_ms": histogram.mean_ms,
        "p50_ms": histogram.quantile(0.5),
        "p95_ms": histogram.quantile(0.95),
        "max_ms": histogram.max_ms,
        "buckets": histogram.buckets(),
        "cumulative_buckets": [
            list(pair) for pair in histogram.cumulative_buckets()
        ],
    }
    return merged


def _merge_cache(merged: dict, cache: "dict | None") -> None:
    if cache is None:
        return
    into = merged.setdefault(
        "cache",
        {
            "size": 0, "maxsize": 0, "hits": 0, "negative_hits": 0,
            "misses": 0, "evictions": 0, "negative_expired": 0,
        },
    )
    for key in (
        "size", "maxsize", "hits", "negative_hits", "misses",
        "evictions", "negative_expired",
    ):
        into[key] += cache.get(key, 0)
    lookups = into["hits"] + into["negative_hits"] + into["misses"]
    into["hit_rate"] = (
        (into["hits"] + into["negative_hits"]) / lookups if lookups else 0.0
    )


def _merge_breaker(merged: dict, breaker: "dict | None") -> None:
    if breaker is None:
        return
    into = merged.setdefault("breaker", {})
    for provider, circuit in breaker.items():
        entry = into.setdefault(
            provider,
            {
                "state": "closed", "consecutive_failures": 0,
                "times_opened": 0, "fast_failures": 0,
            },
        )
        if _BREAKER_SEVERITY.get(circuit.get("state", "closed"), 0) > (
            _BREAKER_SEVERITY.get(entry["state"], 0)
        ):
            entry["state"] = circuit["state"]
        entry["consecutive_failures"] = max(
            entry["consecutive_failures"],
            circuit.get("consecutive_failures", 0),
        )
        entry["times_opened"] += circuit.get("times_opened", 0)
        entry["fast_failures"] += circuit.get("fast_failures", 0)


def _merge_watchdog(merged: dict, watchdog: "dict | None") -> None:
    if watchdog is None:
        return
    into = merged.setdefault(
        "watchdog", {"budget_s": 0.0, "timeouts": 0, "abandoned_in_flight": 0}
    )
    into["budget_s"] = max(into["budget_s"], watchdog.get("budget_s", 0.0))
    into["timeouts"] += watchdog.get("timeouts", 0)
    into["abandoned_in_flight"] += watchdog.get("abandoned_in_flight", 0)


def _merge_conformance(merged: dict, conformance: "dict | None") -> None:
    if conformance is None:
        return
    into = merged.setdefault("conformance", {})
    for key, value in conformance.items():
        if isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value


def _merge_health(merged: dict, health: "dict | None") -> None:
    if health is None:
        return
    into = merged.setdefault(
        "health", {"n_modules": 0, "dead_modules": [], "providers": {}}
    )
    into["n_modules"] += health.get("n_modules", 0)
    into["dead_modules"] = sorted(
        set(into["dead_modules"]) | set(health.get("dead_modules", []))
    )
    for provider, entry in health.get("providers", {}).items():
        rollup = into["providers"].setdefault(
            provider,
            {
                "calls": 0, "answered": 0, "timeouts": 0, "malformed": 0,
                "modules": 0, "dead_modules": 0,
            },
        )
        for key in (
            "calls", "answered", "timeouts", "malformed", "modules",
            "dead_modules",
        ):
            rollup[key] += entry.get(key, 0)
        rollup["availability"] = (
            rollup["answered"] / rollup["calls"] if rollup["calls"] else 1.0
        )
