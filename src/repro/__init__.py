"""repro — a full reproduction of "Annotating the Behavior of Scientific
Modules Using Data Examples: A Practical Approach" (Belhajjame, EDBT 2014).

The package builds, end to end, the system the paper describes:

* a myGrid-style annotation ontology (:mod:`repro.ontology`);
* a synthetic, cross-referenced biological data universe
  (:mod:`repro.biodb`) and 252 + 72 executable black-box scientific
  modules over it (:mod:`repro.modules`);
* the data-example generation heuristic, evaluation metrics, behavior
  matcher and workflow repairer (:mod:`repro.core`);
* the invocation engine — cached, retried, fault-injectable, concurrent
  module execution with telemetry (:mod:`repro.engine`);
* workflow enactment with provenance, a myExperiment-style repository
  and the decay model (:mod:`repro.workflow`);
* the simulated two-phase user study (:mod:`repro.study`);
* one experiment runner per table/figure (:mod:`repro.experiments`).

Quickstart::

    from repro import quick_generate
    report, evaluation = quick_generate("ret.get_uniprot_record")
    print(report.examples[0].render())
"""

from repro.core.examples import DataExample
from repro.core.generation import ExampleGenerator
from repro.core.matching import MatchKind, best_match, find_matches
from repro.core.metrics import evaluate_module
from repro.engine import (
    EngineConfig,
    FaultPlan,
    InvocationEngine,
    RetryPolicy,
    Telemetry,
)
from repro.modules.catalog import build_catalog, default_catalog, default_context
from repro.modules.model import Category, InterfaceKind, Module, ModuleContext, Parameter
from repro.ontology import Ontology, build_mygrid_ontology
from repro.pool import InstancePool, RealizationFactory, default_factory
from repro.registry import ModuleRegistry
from repro.values import TypedValue

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DataExample",
    "ExampleGenerator",
    "evaluate_module",
    "MatchKind",
    "find_matches",
    "best_match",
    "Module",
    "ModuleContext",
    "Parameter",
    "Category",
    "InterfaceKind",
    "build_catalog",
    "default_catalog",
    "default_context",
    "Ontology",
    "build_mygrid_ontology",
    "InstancePool",
    "RealizationFactory",
    "default_factory",
    "ModuleRegistry",
    "TypedValue",
    "EngineConfig",
    "FaultPlan",
    "InvocationEngine",
    "RetryPolicy",
    "Telemetry",
    "quick_generate",
]


def quick_generate(module_id: str, seed: int = 2014):
    """Generate and evaluate data examples for one catalog module.

    A convenience one-liner for the README quickstart.

    Returns:
        ``(GenerationReport, ModuleEvaluation)``.

    Raises:
        KeyError: If ``module_id`` is not in the catalog.
    """
    ctx = default_context(seed)
    module = {m.module_id: m for m in default_catalog()}[module_id]
    pool = InstancePool.bootstrap(default_factory(seed), ctx.ontology)
    generator = ExampleGenerator(ctx, pool)
    report = generator.generate(module)
    return report, evaluate_module(ctx, module, report.examples)
